"""Range queries over skewed data: data-oriented trie vs hash-DHT + PHT.

Demonstrates why order-preserving overlays matter (Sec. 6): both systems
index the same skewed keys; the trie answers ranges in-network while the
uniform-hash DHT needs an extra index whose every step is a full DHT
lookup.
"""

from repro.baselines.hashdht import HashDHT, PrefixHashTree
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.network import PGridNetwork
from repro.workloads.distributions import distribution


def main() -> None:
    keys = distribution("P1.0").sample_keys(2000, rng=9)  # skewed Pareto data
    n_nodes = 64

    net = PGridNetwork.ideal(keys, n_nodes, d_max=60, n_min=2, rng=1)
    dht = HashDHT(n_nodes, rng=2)
    pht = PrefixHashTree(dht, leaf_capacity=60)
    build_cost = pht.build(keys)
    print(f"P-Grid: {len(net.partitions())} partitions over {n_nodes} peers")
    print(f"PHT built on the hash DHT with {build_cost} DHT lookups")

    for lo_f, hi_f in [(0.001, 0.01), (0.01, 0.1), (0.1, 0.5)]:
        lo, hi = float_to_key(lo_f), float_to_key(hi_f)
        trie = net.range_query(lo, hi, rng=3)
        pht_res = pht.range_query(lo, hi)
        assert trie.keys == pht_res.keys, "both must return the same answer"
        print(
            f"range [{lo_f}, {hi_f}): {len(trie.keys):4d} keys | "
            f"P-Grid {trie.messages:3d} msgs vs PHT {pht_res.hops:4d} hops "
            f"({pht_res.hops / max(trie.messages, 1):.1f}x)"
        )


if __name__ == "__main__":
    main()

"""Churn resilience: the full simulated deployment, compressed.

Runs the five-phase Sec. 5 experiment (join, replicate, construct,
query, churn) on the discrete-event network and prints the figures'
headline numbers -- including query success under churn, carried by
structural replication and redundant routing references.
"""

from repro.simnet.experiment import ExperimentConfig, run_experiment


def main() -> None:
    config = ExperimentConfig(
        peers=80,
        join_end=10,
        replicate_start=10,
        construct_start=20,
        query_start=60,
        churn_start=90,
        end=110,
        seed=23,
    )
    report = run_experiment(config)
    print("five-phase deployment (compressed timeline, 80 peers)")
    for name, value in report.summary_rows():
        print(f"  {name:35s} {value:8.3f}")
    pop = dict(report.population)
    print(f"  peers online before churn: {pop.get(85.0, '?')}")
    print(f"  peers online during churn (min): "
          f"{min(c for m, c in pop.items() if m > 92)}")
    assert report.success_rate_static > 0.95
    assert report.success_rate_churn > 0.8


if __name__ == "__main__":
    main()

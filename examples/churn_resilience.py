"""Churn resilience: the paper's Sec. 5.1 stress, via the scenario engine.

Runs the ``paper-sec51-churn`` library scenario -- a static measurement
phase followed by every peer independently going offline 1-5 minutes
every 5-10 minutes with periodic repair -- and prints the headline
numbers: query success stays in the paper's 95-100% band while a
quarter of the population is offline at any moment.

The declarative spec lives in :mod:`repro.scenarios.library`; this
script is deliberately a thin client of the scenario engine and can run
the same spec on either backend:

* ``backend="dataplane"`` (default): synchronous data-plane queries --
  the fast engine, seconds even at N=4096;
* ``backend="message"``: the same phases over message-passing nodes
  with wire latency, loss, timeouts and retries -- the report then
  carries query latency percentiles, drop accounting and the
  route-repair counters in ``report.message_level``.

``--repair {on,off,both}`` toggles the liveness & route-repair
subsystem (:class:`repro.pgrid.liveness.RouteRepairPolicy`) on the
message backend; the default ``both`` runs the wire scenario twice and
prints the repaired-vs-unrepaired success gap -- the degradation story
repair exists to close.

For the full message-level five-phase deployment (join/replicate/
construct/query/churn with construction itself on the simulated wire),
see :func:`repro.simnet.experiment.run_experiment`.
"""

import argparse

from repro.scenarios import (
    MessageNetConfig,
    RouteRepairPolicy,
    run_scenario,
    scenario,
)


def run(
    n_peers: int = 128,
    seed: int = 23,
    duration_scale: float = 0.5,
    backend: str = "dataplane",
    repair: bool = True,
):
    """Execute the Sec. 5.1 churn scenario; returns the ScenarioReport."""
    spec = scenario(
        "paper-sec51-churn", n_peers=n_peers, seed=seed, duration_scale=duration_scale
    )
    kwargs = {}
    if backend == "message":
        kwargs["net_config"] = MessageNetConfig(
            repair=RouteRepairPolicy(enabled=repair)
        )
    elif not repair:
        kwargs["repair_policy"] = RouteRepairPolicy(enabled=False)
    return run_scenario(spec, backend=backend, **kwargs)


def _print_wire(report, label: str) -> None:
    latency = report.message_level["latency_s"]
    drops = report.message_level["drops"]
    repair = report.message_level["repair"]
    print(f"\nmessage-level backend, repair {label} ({report.n_peers_start} peers, "
          f"{report.duration_s / 60:.0f} simulated minutes)")
    print(f"  query success rate:                 {report.totals['success_rate']:12.3f}")
    if latency["count"]:  # percentiles exist only when something succeeded
        print(f"  lookup latency p50/p99 (s):         "
              f"{latency['p50']:10.3f} / {latency['p99']:.3f}")
    print(f"  timeouts / retries:                 "
          f"{report.message_level['timeouts']:6d} / {report.message_level['retries']}")
    print(f"  drops (offline/loss):               "
          f"{drops['offline']:6d} / {drops['loss']}")
    if repair["enabled"]:
        print(f"  repair: suspects/probes/evictions:  "
              f"{repair['suspects']:6d} / {repair['probes']} / {repair['evictions']}")
        print(f"  repair: replacements / bytes:       "
              f"{repair['replacements']:6d} / {repair['repair_bytes']}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Sec. 5.1 churn scenario on both scenario backends"
    )
    parser.add_argument(
        "--repair",
        choices=("on", "off", "both"),
        default="both",
        help="route repair on the message backend: 'both' (default) runs "
        "the wire scenario twice and prints the repaired-vs-unrepaired gap",
    )
    # Examples run under the test suite's runpy sweep with pytest's
    # argv; ignore whatever we do not recognize.
    args, _ = parser.parse_known_args(argv)

    report = run()
    print(f"paper-sec51-churn scenario ({report.n_peers_start} peers, "
          f"{report.duration_s / 60:.0f} simulated minutes)")
    for name, value in report.summary_rows():
        print(f"  {name:35s} {value:12.3f}")
    static, churn = report.phases
    print(f"  success rate (static phase):        {static['success_rate']:12.3f}")
    print(f"  success rate (churn phase):         {churn['success_rate']:12.3f}")
    lowest = min(
        (row for row in report.series if row["online"] is not None),
        key=lambda row: row["online"],
    )
    print(f"  population low point: {lowest['online']} peers online "
          f"at minute {lowest['minute']:.0f}")
    assert static["success_rate"] > 0.95
    assert churn["success_rate"] > 0.8
    assert report.totals["final_coverage"] == 1.0

    # The same spec, message-level: every query pays wire latency and
    # loss, and (with repair on) dead references are detected from the
    # traffic itself -- suspected, probed, evicted and replaced.
    wire = {}
    for mode in ("on", "off"):
        if args.repair in (mode, "both"):
            wire[mode] = run(
                n_peers=256, duration_scale=0.25, backend="message",
                repair=(mode == "on"),
            )
            _print_wire(wire[mode], mode)
    if len(wire) == 2:
        gap = (wire["on"].totals["success_rate"]
               - wire["off"].totals["success_rate"])
        print(f"\n  repaired-vs-unrepaired success gap: {gap:+12.3f}")
        assert wire["on"].totals["success_rate"] >= wire["off"].totals["success_rate"]
    if "on" in wire:
        assert wire["on"].totals["success_rate"] > 0.7


if __name__ == "__main__":
    main()

"""Churn resilience: the paper's Sec. 5.1 stress, via the scenario engine.

Runs the ``paper-sec51-churn`` library scenario -- a static measurement
phase followed by every peer independently going offline 1-5 minutes
every 5-10 minutes with periodic repair -- and prints the headline
numbers: query success stays in the paper's 95-100% band while a
quarter of the population is offline at any moment.

The declarative spec lives in :mod:`repro.scenarios.library`; this
script is deliberately a thin client of the scenario engine and can run
the same spec on either backend:

* ``backend="dataplane"`` (default): synchronous data-plane queries --
  the fast engine, seconds even at N=4096;
* ``backend="message"``: the same phases over message-passing nodes
  with wire latency, loss, timeouts and retries -- the report then
  carries query latency percentiles and drop accounting in
  ``report.message_level``.

For the full message-level five-phase deployment (join/replicate/
construct/query/churn with construction itself on the simulated wire),
see :func:`repro.simnet.experiment.run_experiment`.
"""

from repro.scenarios import run_scenario, scenario


def run(
    n_peers: int = 128,
    seed: int = 23,
    duration_scale: float = 0.5,
    backend: str = "dataplane",
):
    """Execute the Sec. 5.1 churn scenario; returns the ScenarioReport."""
    spec = scenario(
        "paper-sec51-churn", n_peers=n_peers, seed=seed, duration_scale=duration_scale
    )
    return run_scenario(spec, backend=backend)


def main() -> None:
    report = run()
    print(f"paper-sec51-churn scenario ({report.n_peers_start} peers, "
          f"{report.duration_s / 60:.0f} simulated minutes)")
    for name, value in report.summary_rows():
        print(f"  {name:35s} {value:12.3f}")
    static, churn = report.phases
    print(f"  success rate (static phase):        {static['success_rate']:12.3f}")
    print(f"  success rate (churn phase):         {churn['success_rate']:12.3f}")
    lowest = min(
        (row for row in report.series if row["online"] is not None),
        key=lambda row: row["online"],
    )
    print(f"  population low point: {lowest['online']} peers online "
          f"at minute {lowest['minute']:.0f}")
    assert static["success_rate"] > 0.95
    assert churn["success_rate"] > 0.8
    assert report.totals["final_coverage"] == 1.0

    # The same spec, message-level: every query pays wire latency and
    # loss, so the report gains latency percentiles and drop counts.
    wire = run(n_peers=64, duration_scale=0.25, backend="message")
    latency = wire.message_level["latency_s"]
    drops = wire.message_level["drops"]
    print(f"\nmessage-level backend ({wire.n_peers_start} peers, "
          f"{wire.duration_s / 60:.0f} simulated minutes)")
    print(f"  query success rate:                 {wire.totals['success_rate']:12.3f}")
    if latency["count"]:  # percentiles exist only when something succeeded
        print(f"  lookup latency p50/p99 (s):         "
              f"{latency['p50']:10.3f} / {latency['p99']:.3f}")
    print(f"  timeouts / retries:                 "
          f"{wire.message_level['timeouts']:6d} / {wire.message_level['retries']}")
    print(f"  drops (offline/loss):               "
          f"{drops['offline']:6d} / {drops['loss']}")
    assert wire.totals["success_rate"] > 0.7


if __name__ == "__main__":
    main()

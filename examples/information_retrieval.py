"""Peer-to-peer information retrieval: a distributed inverted file.

The paper's motivating application (Sec. 1): a set of documents spread
over many peers, indexed by keyword through an order-preserving overlay
so that keyword and *prefix* searches are served in-network.
"""

from repro import ConstructionConfig, build_overlay
from repro.pgrid.keyspace import string_to_key
from repro.workloads.corpus import SyntheticCorpus, extract_keywords


def main() -> None:
    corpus = SyntheticCorpus(vocabulary_size=800, rng=3)
    n_peers = 48
    docs_per_peer = 4

    # Each peer holds a few documents and indexes their keywords.
    peer_terms = []
    postings = {}
    doc_id = 0
    for peer in range(n_peers):
        terms = []
        for _ in range(docs_per_peer):
            doc = corpus.generate_documents(1, terms_per_doc=40, rng=doc_id)[0]
            for kw in extract_keywords(doc, corpus=corpus, max_keywords=8):
                terms.append(kw)
                postings.setdefault(kw, set()).add(doc_id)
            doc_id += 1
        peer_terms.append(terms)

    # Build the distributed inverted file: one overlay over keyword keys.
    net = build_overlay(
        peer_terms, config=ConstructionConfig(n_min=3, d_max=60), rng=11
    )
    print(
        f"inverted file: {len(net)} peers, {len(net.all_keys())} distinct "
        f"term keys, mean path {net.mean_path_length():.2f}"
    )

    # Keyword search: route to the term's partition.
    query_term = next(iter(postings))
    res = net.lookup(query_term, rng=5)
    print(
        f"search({query_term!r}): found={res.found} hops={res.hops} "
        f"indexed={res.value_present} -> docs {sorted(postings[query_term])[:5]}"
    )

    # Prefix search: all indexed terms starting with a two-letter prefix
    # (a range query in the order-preserving key space).
    prefix = query_term[:2]
    lo = string_to_key(prefix)
    hi = string_to_key(prefix + "~zzzz")
    hits = net.range_query(lo, hi, rng=6)
    matched = [t for t in postings if string_to_key(t) in hits.keys]
    print(
        f"prefix '{prefix}*': {len(hits.keys)} term keys in "
        f"{hits.messages} messages; e.g. {sorted(matched)[:5]}"
    )
    assert res.found


if __name__ == "__main__":
    main()

"""Write workloads: feeding the data-oriented index while it serves.

The paper's index is *data-oriented* -- its bandwidth and consistency
story (Sec. 5, the Fig. 8 maintenance split) assumes keys are
continuously inserted, updated and deleted while the overlay routes
around churn.  This demo runs the ``read-write-balanced`` library
scenario -- a read-only warmup, a mixed phase where mutations arrive at
half the query rate under light churn, and a settle phase where
anti-entropy reconverges the replicas -- and prints the write-path
headline numbers next to the familiar read-side ones:

* ``write success rate`` -- mutations that reached an online
  responsible owner (routing works for writes like it does for reads);
* ``update_Bps`` -- the write side of the Fig. 8 bandwidth split (a new
  traffic category next to query/maintenance);
* ``replica divergence`` -- how far the write stream outran replica
  sync + anti-entropy (fraction of partition keys missing from an
  average replica; deletes propagate delete-wins via tombstones).

Like :mod:`examples.churn_resilience`, this is a thin client of the
scenario engine and runs the same spec on either backend:

* ``backend="dataplane"`` (default): mutations route synchronously and
  fan out to online replicas; divergence comes from churned replicas
  missing writes.
* ``backend="message"``: inserts/deletes travel as protocol messages
  (``insert``/``delete``/``replica_sync``), pay latency/loss, retry on
  timeout, and are wire-accounted in the ``updates`` category.
"""

import argparse

from repro.scenarios import run_scenario, scenario


def run(
    n_peers: int = 128,
    seed: int = 23,
    duration_scale: float = 0.5,
    backend: str = "dataplane",
    name: str = "read-write-balanced",
):
    """Execute one write-workload scenario; returns the ScenarioReport."""
    spec = scenario(name, n_peers=n_peers, seed=seed, duration_scale=duration_scale)
    return run_scenario(spec, backend=backend)


def _print_report(report, backend: str) -> None:
    writes = report.writes
    divergence = writes["divergence"]
    print(f"\n{report.scenario} on the {backend} backend "
          f"({report.n_peers_start} peers, "
          f"{report.duration_s / 60:.0f} simulated minutes)")
    print(f"  queries / success rate:        {report.totals['queries']:6d} / "
          f"{report.totals['success_rate']:.3f}")
    print(f"  writes  / success rate:        {writes['writes']:6d} / "
          f"{writes['success_rate']:.3f}")
    print(f"  insert / delete / update:      {writes['inserts']:6d} / "
          f"{writes['deletes']} / {writes['updates']}")
    print(f"  write bytes (update traffic):  {writes['bytes_update']:10d}")
    peak = max((bps for _, bps in report.update_bandwidth_series()), default=0.0)
    print(f"  peak update_Bps:               {peak:10.1f}")
    print(f"  replica divergence mean/max:   {divergence['mean']:10.4f} / "
          f"{divergence['max']:.4f}")
    print(f"  stale replicas / tombstones:   {divergence['stale_replicas']:6d} / "
          f"{divergence['tombstones']}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="read/write mixes on both scenario backends"
    )
    parser.add_argument(
        "--scenario",
        choices=("read-write-balanced", "write-hotspot-adversarial",
                 "asymmetric-partition-writes"),
        default="read-write-balanced",
    )
    # Examples run under the test suite's runpy sweep with pytest's
    # argv; ignore whatever we do not recognize.
    args, _ = parser.parse_known_args(argv)

    fast = run(name=args.scenario)
    _print_report(fast, "dataplane")
    assert fast.writes["writes"] > 0
    assert fast.writes["success_rate"] > 0.9
    # Anti-entropy reconverged the replicas after the write stream ended.
    assert fast.writes["divergence"]["mean"] < 0.05

    # The same spec at the message level: every mutation pays wire
    # latency, retries on timeout, and replica sync is real traffic.
    wire = run(n_peers=96, duration_scale=0.25, backend="message",
               name=args.scenario)
    _print_report(wire, "message")
    assert wire.writes["writes"] > 0
    wp = wire.message_level["write_path"]
    print(f"  write timeouts/retries/moot:   {wp['timeouts']:6d} / "
          f"{wp['retries']} / {wp['moot_writes']}")


if __name__ == "__main__":
    main()

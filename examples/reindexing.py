"""Re-indexing: the scenario that motivates construction from scratch.

A collection is indexed by one extraction function; the indexing method
changes (Sec. 1: "a new text extraction function ... the index keys
change"), so a *new* overlay must be built.  Sequential maintenance
would serialize the rebuild; the paper's parallel construction finishes
in a few rounds -- this script measures both.
"""

from repro.baselines.sequential import compare_constructions
from repro.pgrid.keyspace import string_to_key
from repro.workloads.corpus import SyntheticCorpus, extract_keywords


def main() -> None:
    corpus = SyntheticCorpus(vocabulary_size=600, rng=4)
    docs = corpus.generate_documents(120, terms_per_doc=40, rng=5)
    peers = 40

    def index_keys(max_keywords: int, stop_fraction: float):
        """Per-peer key sets under one extraction function."""
        per_peer = [[] for _ in range(peers)]
        for i, doc in enumerate(docs):
            kws = extract_keywords(
                doc,
                corpus=corpus,
                max_keywords=max_keywords,
                stopword_rank_fraction=stop_fraction,
            )
            per_peer[i % peers].extend(string_to_key(k) for k in kws)
        return per_peer

    old_index = index_keys(max_keywords=8, stop_fraction=0.01)
    new_index = index_keys(max_keywords=12, stop_fraction=0.05)
    changed = len(
        set(k for ks in new_index for k in ks)
        - set(k for ks in old_index for k in ks)
    )
    print(f"new extraction function introduces {changed} new term keys")

    # Rebuild the overlay from scratch under the new keys, both ways.
    cmp = compare_constructions(new_index, n_min=3, d_max=40, rng=6)
    print(
        f"sequential rebuild: {cmp.sequential_messages} messages, "
        f"latency {cmp.sequential_latency:.0f} (serialized)"
    )
    print(
        f"parallel rebuild:   {cmp.parallel_interactions} interactions, "
        f"latency {cmp.parallel_latency_rounds} rounds"
    )
    print(f"latency speedup: {cmp.latency_speedup:.1f}x")
    assert cmp.latency_speedup > 1.0


if __name__ == "__main__":
    main()

"""Re-indexing: the scenario that motivates construction from scratch.

A collection is indexed by one extraction function; the indexing method
changes (Sec. 1: "a new text extraction function ... the index keys
change"), so a *new* overlay must be built.  Sequential maintenance
would serialize the rebuild; the paper's parallel construction finishes
in a few rounds -- this script measures both.
"""

from repro.baselines.sequential import compare_constructions
from repro.pgrid.keyspace import string_to_key
from repro.workloads.corpus import SyntheticCorpus, extract_keywords


def run(
    peers: int = 40,
    n_docs: int = 120,
    vocabulary_size: int = 600,
    terms_per_doc: int = 40,
    n_min: int = 3,
    d_max: float = 40.0,
):
    """Measure a sequential vs. parallel overlay rebuild after the index
    keys change.  Returns ``(new_term_keys, comparison)``."""
    corpus = SyntheticCorpus(vocabulary_size=vocabulary_size, rng=4)
    docs = corpus.generate_documents(n_docs, terms_per_doc=terms_per_doc, rng=5)

    def index_keys(max_keywords: int, stop_fraction: float):
        """Per-peer key sets under one extraction function."""
        per_peer = [[] for _ in range(peers)]
        for i, doc in enumerate(docs):
            kws = extract_keywords(
                doc,
                corpus=corpus,
                max_keywords=max_keywords,
                stopword_rank_fraction=stop_fraction,
            )
            per_peer[i % peers].extend(string_to_key(k) for k in kws)
        return per_peer

    old_index = index_keys(max_keywords=8, stop_fraction=0.01)
    new_index = index_keys(max_keywords=12, stop_fraction=0.05)
    changed = len(
        set(k for ks in new_index for k in ks)
        - set(k for ks in old_index for k in ks)
    )
    # Rebuild the overlay from scratch under the new keys, both ways.
    comparison = compare_constructions(new_index, n_min=n_min, d_max=d_max, rng=6)
    return changed, comparison


def main() -> None:
    changed, cmp = run()
    print(f"new extraction function introduces {changed} new term keys")
    print(
        f"sequential rebuild: {cmp.sequential_messages} messages, "
        f"latency {cmp.sequential_latency:.0f} (serialized)"
    )
    print(
        f"parallel rebuild:   {cmp.parallel_interactions} interactions, "
        f"latency {cmp.parallel_latency_rounds} rounds"
    )
    print(f"latency speedup: {cmp.latency_speedup:.1f}x")
    assert cmp.latency_speedup > 1.0


if __name__ == "__main__":
    main()

"""Quickstart: build a data-oriented overlay from scratch and query it.

Runs the paper's parallel construction over 64 peers holding uniform
keys, then performs exact-match and range queries through the trie.
"""

from repro import ConstructionConfig, build_overlay, uniform_keys


def main() -> None:
    # 64 peers, 10 keys each, drawn uniformly from [0, 1).
    peer_keys = uniform_keys(peers=64, keys_per_peer=10, seed=7)

    # Decentralized, parallel construction (AEP bisections, Sec. 3) with
    # replication factor n_min = 5 and storage bound d_max = 50.
    net = build_overlay(
        peer_keys, config=ConstructionConfig(n_min=5, d_max=50), rng=42
    )
    print(f"overlay: {len(net)} peers, {len(net.partitions())} partitions")
    print(f"mean path length: {net.mean_path_length():.2f}")
    print(f"replication factor: {net.replication_factor():.2f}")

    # Exact-match query for one of the stored keys.
    some_key = next(iter(net.all_keys()))
    res = net.lookup(some_key, rng=1)
    print(
        f"lookup({some_key}): found={res.found} hops={res.hops} "
        f"stored={res.value_present}"
    )

    # Range query over the middle half of the key space -- the
    # operation uniform-hashing DHTs cannot serve in-network.
    rng_res = net.range_query(0.25, 0.75, rng=2)
    print(
        f"range [0.25, 0.75): {len(rng_res.keys)} keys from "
        f"{len(rng_res.partitions)} partitions in {rng_res.messages} messages"
    )
    assert res.found and rng_res.complete


if __name__ == "__main__":
    main()

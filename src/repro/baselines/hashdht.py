"""Uniform-hashing DHT + Prefix Hash Tree index: the Sec. 6 strawman.

Standard overlays remove key skew by uniform hashing, which destroys key
order; to support range queries "an additional index on top of the
overlay network needs to be created" (the paper cites the Prefix Hash
Tree).  This module implements that combination so the cost claims of
Sec. 6 can be measured rather than asserted:

* :class:`HashDHT` -- nodes own hashed-id arcs; every ``get(name)`` costs
  an ``O(log N)``-hop routing walk (Chord-style);
* :class:`PrefixHashTree` -- a trie over the *original* key space whose
  nodes are stored **in** the DHT under hashed labels; a range query
  walks the trie, paying one full DHT lookup per visited trie node.

Compared with P-Grid's in-network trie (one descent + per-partition
forwards), the PHT multiplies every trie step by the DHT's routing cost
-- the "multiple overlay network queries ... to locate all the
semantically close content" the paper criticizes, plus the cost of
constructing and maintaining the second index in the first place.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import KEY_BITS

__all__ = ["HashDHT", "PrefixHashTree", "RangeQueryCost"]

#: Identifier-space bits of the hash DHT ring.
RING_BITS = 64


def _hash(name: str) -> int:
    """Uniform hash of a label onto the ring."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << RING_BITS)


class HashDHT:
    """A Chord-flavored DHT: nodes at hashed positions, keys at hashed
    labels, lookups cost ``ceil(log2 N)`` routing hops in expectation.

    Routing is modeled analytically (hop count) rather than message by
    message: the baseline's *asymptotic* cost is what Sec. 6 argues
    about, and it is deliberately favourable to the baseline (no
    failures, perfect finger tables).
    """

    def __init__(self, n_nodes: int, *, rng: RngLike = None):
        if n_nodes < 1:
            raise DomainError(f"need at least one node, got {n_nodes}")
        rand = make_rng(rng)
        self.node_ids = sorted(rand.randrange(1 << RING_BITS) for _ in range(n_nodes))
        self.storage: Dict[int, Dict[str, object]] = {nid: {} for nid in self.node_ids}
        self.lookups = 0
        self.hops = 0

    def _owner(self, point: int) -> int:
        """Successor node of a ring position."""
        idx = bisect_right(self.node_ids, point)
        return self.node_ids[idx % len(self.node_ids)]

    def lookup_cost(self) -> int:
        """Expected routing hops for one lookup."""
        return max(1, math.ceil(math.log2(len(self.node_ids))))

    def put(self, name: str, value: object) -> int:
        """Store a value under a label; returns hops spent."""
        owner = self._owner(_hash(name))
        self.storage[owner][name] = value
        cost = self.lookup_cost()
        self.lookups += 1
        self.hops += cost
        return cost

    def get(self, name: str) -> Tuple[Optional[object], int]:
        """Fetch a value by label; returns ``(value, hops)``."""
        owner = self._owner(_hash(name))
        cost = self.lookup_cost()
        self.lookups += 1
        self.hops += cost
        return self.storage[owner].get(name), cost

    def storage_load(self) -> List[int]:
        """Items per node (uniform hashing balances this; key *order* is
        what it destroys)."""
        return [len(items) for items in self.storage.values()]


@dataclass
class RangeQueryCost:
    """Result and cost of a PHT range query."""

    keys: Set[int]
    dht_lookups: int
    hops: int
    trie_nodes_visited: int


class PrefixHashTree:
    """A trie over the original (order-preserving) key space stored in a
    hash DHT -- the 'index on top' of Sec. 6.

    Leaves hold at most ``leaf_capacity`` keys; internal nodes are split
    lazily on insert.  Every node -- internal or leaf -- lives in the DHT
    under the hashed label of its prefix, so *every* traversal step of a
    range query is a full DHT lookup.
    """

    def __init__(self, dht: HashDHT, *, leaf_capacity: int = 50):
        if leaf_capacity < 1:
            raise DomainError("leaf_capacity must be >= 1")
        self.dht = dht
        self.leaf_capacity = leaf_capacity
        # The trie structure: prefix label -> ("leaf", keys) or ("node",)
        self.dht.put("pht:", ("leaf", set()))
        self.build_lookups = self.dht.lookups

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _label(bits: str) -> str:
        return f"pht:{bits}"

    def _node(self, bits: str):
        value, _ = self.dht.get(self._label(bits))
        return value

    # -- construction -----------------------------------------------------------

    def insert(self, key: int) -> int:
        """Insert one key; returns DHT lookups spent (descent + splits)."""
        if not 0 <= key < (1 << KEY_BITS):
            raise DomainError(f"key {key} out of range")
        spent = 0
        bits = ""
        while True:
            value, _ = self.dht.get(self._label(bits))
            spent += 1
            if value is None:
                value = ("leaf", set())
                self.dht.put(self._label(bits), value)
                spent += 1
            if value[0] == "leaf":
                keys: Set[int] = value[1]
                keys.add(key)
                if len(keys) > self.leaf_capacity and len(bits) < KEY_BITS - 1:
                    # Split the leaf into two children.
                    self.dht.put(self._label(bits), ("node",))
                    zeros = {
                        k
                        for k in keys
                        if (k >> (KEY_BITS - 1 - len(bits))) & 1 == 0
                    }
                    ones = keys - zeros
                    self.dht.put(self._label(bits + "0"), ("leaf", zeros))
                    self.dht.put(self._label(bits + "1"), ("leaf", ones))
                    spent += 3
                return spent
            bits += "1" if (key >> (KEY_BITS - 1 - len(bits))) & 1 else "0"

    def build(self, keys: Sequence[int]) -> int:
        """Insert many keys; returns total DHT lookups spent."""
        return sum(self.insert(k) for k in keys)

    # -- range queries ------------------------------------------------------------

    def range_query(self, lo: int, hi: int) -> RangeQueryCost:
        """All keys in ``[lo, hi)``; every visited trie node costs one DHT
        lookup of ``lookup_cost()`` hops."""
        if not 0 <= lo <= hi <= (1 << KEY_BITS):
            raise DomainError(f"invalid range [{lo}, {hi})")
        before = self.dht.lookups
        hops_before = self.dht.hops
        found: Set[int] = set()
        visited = 0
        stack = [""]
        while stack:
            bits = stack.pop()
            width = KEY_BITS - len(bits)
            node_lo = int(bits, 2) << width if bits else 0
            node_hi = node_lo + (1 << width)
            if node_lo >= hi or node_hi <= lo:
                continue
            value, _ = self.dht.get(self._label(bits))
            visited += 1
            if value is None:
                continue
            if value[0] == "leaf":
                found.update(k for k in value[1] if lo <= k < hi)
            else:
                stack.append(bits + "0")
                stack.append(bits + "1")
        return RangeQueryCost(
            keys=found,
            dht_lookups=self.dht.lookups - before,
            hops=self.dht.hops - hops_before,
            trie_nodes_visited=visited,
        )

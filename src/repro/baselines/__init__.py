"""Baselines the paper compares against.

``sequential``
    Standard maintenance-model construction: peers join one at a time
    (Secs. 1, 4.3) -- the latency/bandwidth baseline for the parallel
    construction.
``hashdht``
    A uniform-hashing DHT with a Prefix-Hash-Tree-style index layered on
    top (the Sec. 6 strawman): correct range queries, but every index
    node traversal costs a full DHT lookup, so range processing is far
    costlier than the in-network trie.
"""

from . import hashdht, sequential  # noqa: F401

"""Sequential-construction baseline (Secs. 1, 4.3).

Wraps :mod:`repro.pgrid.maintenance` into the same reporting shape as the
parallel construction so benches can print side-by-side rows:

* **messages**: both approaches are ``O(N log N)``-ish in total traffic;
* **latency**: the sequential build serializes every join, so its
  wall-clock latency equals its message count, while the parallel
  construction needs only ``O(log^2 N)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .._util import RngLike, make_rng
from ..core.construction import ConstructionConfig, construct_overlay
from ..pgrid.maintenance import sequential_build

__all__ = ["ConstructionComparison", "compare_constructions"]


@dataclass
class ConstructionComparison:
    """Side-by-side costs of sequential vs parallel construction."""

    n_peers: int
    sequential_messages: int
    sequential_latency: float
    parallel_interactions: int
    parallel_latency_rounds: int

    @property
    def latency_speedup(self) -> float:
        """How much faster the parallel construction finishes.

        Sequential latency is measured in messages on the critical path
        (all serialized); parallel latency in rounds (each round is one
        parallel step of duration ~one interaction RTT).
        """
        if self.parallel_latency_rounds == 0:
            return float("inf")
        return self.sequential_latency / self.parallel_latency_rounds


def compare_constructions(
    peer_keys: Sequence[Sequence[int]],
    *,
    n_min: int = 5,
    d_max: float = 50.0,
    rng: RngLike = None,
) -> ConstructionComparison:
    """Build the same overlay twice -- sequentially and in parallel --
    and report the Sec. 4.3 cost split."""
    rand = make_rng(rng)
    seq = sequential_build(
        peer_keys, d_max=d_max, n_min=n_min, rng=make_rng(rand.randrange(2**31))
    )
    par = construct_overlay(
        peer_keys,
        ConstructionConfig(n_min=n_min, d_max=d_max),
        rng=make_rng(rand.randrange(2**31)),
    )
    return ConstructionComparison(
        n_peers=len(peer_keys),
        sequential_messages=seq.total_messages,
        sequential_latency=float(seq.latency),
        parallel_interactions=par.interactions,
        parallel_latency_rounds=par.rounds,
    )

"""Mean-value analysis of the AEP interaction process (Secs. 3.1, 3.3).

The partitioning of ``N`` peers is modeled as a sequential Markov chain:
in each step one undecided peer contacts a uniformly random peer and the
AEP rules fire.  Taking expectations step-wise gives the *mean-value
model* whose state is ``(x, y, u)`` -- the expected numbers of peers
decided for ``0``, decided for ``1`` and undecided:

```
dx = alpha u / N + beta y / N
dy = alpha u / N + x / N + (1 - beta) y / N
du = -(2 alpha u + x + y) / N
```

Two variants are exposed, matching the paper's simulation models:

* :func:`run_mva` -- the deterministic recursion with the exact ``p``
  (model **MVA**);
* :func:`run_sam` -- the same recursion but each step uses decision
  probabilities derived from a *sampled* estimate of ``p`` (``m``
  Bernoulli samples), reproducing the systematic sampling bias that the
  corrected probabilities (model **COR**) remove (model **SAM**).

Both run until no undecided mass remains, allowing a fractional final
step exactly as the paper's analysis does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from .._util import RngLike, check_probability, make_rng
from ..exceptions import DomainError
from .probabilities import (
    DecisionProbabilities,
    decision_probabilities,
    heuristic_probabilities,
)

__all__ = ["MeanValueTrajectory", "run_mva", "run_sam", "closed_form_undecided"]

#: Hard cap on steps, as a multiple of N, to guarantee termination even for
#: pathological probability choices (alpha ~ 0 with no decided peers).
_MAX_STEPS_FACTOR = 200.0


@dataclass
class MeanValueTrajectory:
    """Result of integrating the mean-value recursion.

    ``x``/``y`` are the final expected peer counts for partitions 0 / 1,
    ``interactions`` the (fractional) termination step ``t*``, and the
    optional per-step histories support plotting and tests.
    """

    n: int
    p: float
    x: float
    y: float
    interactions: float
    history_x: List[float] = field(default_factory=list)
    history_y: List[float] = field(default_factory=list)
    history_u: List[float] = field(default_factory=list)

    @property
    def achieved_fraction(self) -> float:
        """Fraction of peers that decided for partition 0."""
        return self.x / self.n

    @property
    def deviation(self) -> float:
        """Signed deviation of the partition-0 count from the target ``N p``."""
        return self.x - self.n * self.p


def _step(
    x: float,
    y: float,
    u: float,
    n: int,
    probs: DecisionProbabilities,
    fraction: float = 1.0,
    mirrored: bool = False,
) -> tuple[float, float, float]:
    """One (possibly fractional) mean-value step of the AEP chain.

    ``mirrored`` models an initiator whose estimate names side 1 as the
    minority (estimates above 1/2): rules 3/4 swap the roles of the two
    sides while the balanced-split term stays symmetric.
    """
    alpha, beta = probs.alpha, probs.beta
    if not mirrored:
        dx = (alpha * u + beta * y) / n
        dy = (alpha * u + x + (1.0 - beta) * y) / n
    else:
        dx = (alpha * u + (1.0 - beta) * x + y) / n
        dy = (alpha * u + beta * x) / n
    du = -(2.0 * alpha * u + x + y) / n
    return x + fraction * dx, y + fraction * dy, u + fraction * du


def _integrate(
    n: int,
    p: float,
    probs_for_step,
    keep_history: bool,
) -> MeanValueTrajectory:
    x, y, u = 0.0, 0.0, float(n)
    t = 0.0
    hx: List[float] = []
    hy: List[float] = []
    hu: List[float] = []
    max_steps = _MAX_STEPS_FACTOR * n
    while u > 1e-12:
        if t > max_steps:
            raise DomainError(
                f"mean-value model failed to terminate within {max_steps:.0f} steps "
                f"(p={p}, n={n}); decision probabilities too small?"
            )
        probs, mirrored = probs_for_step()
        x1, y1, u1 = _step(x, y, u, n, probs, mirrored=mirrored)
        if u1 < 0.0:
            # Fractional final step: scale so u lands exactly on zero,
            # mirroring the paper's "we allow fractional steps".
            fraction = u / (u - u1)
            x, y, u = _step(x, y, u, n, probs, fraction, mirrored=mirrored)
            t += fraction
            u = 0.0
        else:
            x, y, u = x1, y1, u1
            t += 1.0
        if keep_history:
            hx.append(x)
            hy.append(y)
            hu.append(u)
    return MeanValueTrajectory(
        n=n, p=p, x=x, y=y, interactions=t, history_x=hx, history_y=hy, history_u=hu
    )


def run_mva(
    n: int,
    p: float,
    *,
    heuristic: bool = False,
    keep_history: bool = False,
) -> MeanValueTrajectory:
    """Deterministic mean-value model with exact knowledge of ``p`` (MVA).

    With ``heuristic=True`` the Fig. 6(d) straw-man probabilities are used
    instead of the theoretically derived ones.
    """
    check_probability(p, "p")
    if not 0.0 < p <= 0.5:
        raise DomainError(f"run_mva expects the minority fraction p in (0, 1/2], got {p}")
    probs = heuristic_probabilities(p) if heuristic else decision_probabilities(p)
    return _integrate(n, p, lambda: (probs, False), keep_history)


def run_sam(
    n: int,
    p: float,
    *,
    m: int = 10,
    corrected: bool = False,
    rng: RngLike = None,
    keep_history: bool = False,
) -> MeanValueTrajectory:
    """Mean-value model with per-step sampled estimates of ``p`` (SAM).

    Each step draws ``p_hat ~ Binomial(m, p)/m`` -- the estimate the
    initiating peer would form from ``m`` local data-key samples -- and
    derives the decision probabilities from it.  With ``corrected=True``
    the bias-corrected probabilities of Eqs. (9)/(10) are used (the
    mean-value analogue of the COR model).

    An estimate above 1/2 mirrors the initiator's view of which side is
    the minority (rules 3/4 swap); an estimate of exactly 0 is nudged
    inside the domain, matching what a real peer (which cannot split at
    ratio 0) must do.
    """
    check_probability(p, "p")
    if not 0.0 < p <= 0.5:
        raise DomainError(f"run_sam expects the minority fraction p in (0, 1/2], got {p}")
    if m < 1:
        raise DomainError(f"sample size m must be >= 1, got {m}")
    rand = make_rng(rng)

    def sample_probs() -> tuple[DecisionProbabilities, bool]:
        hits = sum(1 for _ in range(m) if rand.random() < p)
        p_hat = hits / m
        mirrored = p_hat > 0.5
        q = min(p_hat, 1.0 - p_hat)
        q = min(max(q, 1.0 / (4.0 * m)), 0.5)
        return decision_probabilities(q, m=m if corrected else None), mirrored

    return _integrate(n, p, sample_probs, keep_history)


def closed_form_undecided(n: int, step: float) -> float:
    """Closed-form undecided count in the beta-regime, ``U_i = 2N(1-1/N)^i - N``.

    Exposed for cross-validation: the recursion integrated by
    :func:`run_mva` must follow this curve whenever ``alpha = 1``.
    """
    return 2.0 * n * (1.0 - 1.0 / n) ** step - n


def expected_interactions(n: int, p: float) -> float:
    """Expected total interactions ``t*`` for the mean-value model.

    Convenience re-export of :func:`repro.core.probabilities.t_star_interactions`
    (documented here because tests compare it against :func:`run_mva`).
    """
    from .probabilities import t_star_interactions

    return t_star_interactions(p, n)


def interactions_per_peer_limit(p: float) -> float:
    """Asymptotic interactions per peer, ``ln 2`` in the beta-regime (Eq. 1)
    and ``ln(2 alpha)/(2 alpha - 1)`` in the alpha-regime (Eq. 3)."""
    from .probabilities import t_star

    return t_star(p)


def equilibrium_fraction(p: float) -> float:
    """The fraction of peers the model sends to partition 0 -- ``p`` itself.

    Identity function retained for symmetry with the discrete simulators'
    reporting; asserting ``run_mva(n, p).achieved_fraction ≈ p`` is the
    core correctness property of Eqs. (2)/(4).
    """
    check_probability(p, "p")
    return p

"""Decentralized, parallel construction of the overlay from scratch.

This module implements the complete indexing process of Secs. 2.2 and 4:
starting from ``N`` peers that each hold a handful of data keys and know
nothing about each other's data, it produces a trie-structured overlay in
which

* every peer has a *path* (its key-space partition),
* storage load is balanced against the skew of the key distribution,
* every partition is replicated by roughly ``n_min``..``2 n_min`` peers,
* routing tables hold references to the complementary subtree at every
  level of a peer's path.

The process is round-based: in every round each *active* peer initiates
one interaction with a (uniformly sampled) random peer, and the
Fig. 2 interaction rules fire:

``split``
    both peers share a partition that is overloaded -> balanced split
    with probability ``alpha(p_hat)``, exchanging the keys that now fall
    outside each peer's refined path;
``decide``
    the contacted peer has already refined its path below the
    initiator's -> AEP rules 3/4 with probability ``beta(p_hat)``;
``replicate``
    both peers share a partition that is *not* overloaded -> they become
    replicas and reconcile their key sets (anti-entropy);
``refer``
    the peers' partitions diverge -> the initiator gains a routing entry
    and is referred to a peer with a longer matching prefix, which it
    contacts next (prefix routing during construction).

Synchronization and termination follow Sec. 4.2: peers that cannot find a
useful interaction stop initiating after ``max_idle_attempts`` attempts
and only react to incoming contacts; the process ends when every peer is
passive.  Overload decisions use only *local* estimates (Sec. 4.2's
overlap estimators), and split ratios use the corrected decision
probabilities by default (strategy ``"theory"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import RngLike, make_rng
from ..exceptions import ConstructionError, DomainError
from ..pgrid.bits import Path, ROOT
from ..pgrid.keyspace import KEY_BITS
from .constants import DEFAULT_D_MAX_FACTOR, DEFAULT_N_MIN
from .estimators import (
    estimate_partition_keys,
    estimate_replica_count,
    estimate_split_fraction,
)
from .probabilities import (
    DecisionProbabilities,
    decision_probabilities,
    heuristic_probabilities,
)

__all__ = [
    "ConstructionConfig",
    "ConstructionPeer",
    "ConstructionResult",
    "construct_overlay",
]

#: Strategies for choosing the split probabilities (Fig. 6(d) ablation).
STRATEGIES = ("theory", "uncorrected", "heuristic")


def _keys_in_partition(keys, path: Path) -> set:
    """Subset of ``keys`` inside ``path``'s partition.

    The hot loops filter key batches by partition constantly; one
    precomputed shift/compare per key beats a ``contains_key`` call per
    key by an order of magnitude, so every such filter goes through this
    single helper.
    """
    length = path.length
    if not length:
        return set(keys)
    shift = KEY_BITS - length
    bits = path.bits
    return {k for k in keys if k >> shift == bits}


@dataclass
class ConstructionConfig:
    """Tunable parameters of the decentralized construction.

    ``n_min``
        minimal replication factor (Sec. 2.2, criterion 2);
    ``d_max``
        maximal storage load per partition; ``None`` derives the paper's
        default ``d_max_factor * n_min`` (figure captions use factors
        10/20/30);
    ``d_max_factor``
        multiplier used when ``d_max`` is ``None``;
    ``strategy``
        ``"theory"`` = corrected probabilities of Eqs. (9)/(10) (COR),
        ``"uncorrected"`` = plain ``alpha``/``beta`` (AEP),
        ``"heuristic"`` = the Fig. 6(d) straw-man functions;
    ``sample_size``
        number of local keys sampled for the ``p`` estimate (``None`` =
        use every locally stored key);
    ``max_idle_attempts``
        consecutive useless interactions before a peer stops initiating
        (the paper uses 2);
    ``max_rounds``
        hard safety bound on rounds;
    ``refer_hops``
        maximum directed follow-up contacts after a refer interaction
        (prefix-routing during construction).
    """

    n_min: int = DEFAULT_N_MIN
    d_max: Optional[float] = None
    d_max_factor: float = DEFAULT_D_MAX_FACTOR
    strategy: str = "theory"
    sample_size: Optional[int] = None
    max_idle_attempts: int = 2
    max_rounds: int = 400
    refer_hops: int = 8
    seed: Optional[int] = None

    def resolved_d_max(self) -> float:
        """The storage-load bound actually used."""
        if self.d_max is not None:
            return float(self.d_max)
        return self.d_max_factor * self.n_min

    def validate(self) -> None:
        """Raise :class:`DomainError` on out-of-range parameters."""
        if self.n_min < 1:
            raise DomainError(f"n_min must be >= 1, got {self.n_min}")
        if self.resolved_d_max() <= 0:
            raise DomainError("d_max must be positive")
        if self.strategy not in STRATEGIES:
            raise DomainError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if self.sample_size is not None and self.sample_size < 1:
            raise DomainError(f"sample_size must be >= 1, got {self.sample_size}")
        if self.max_idle_attempts < 1:
            raise DomainError("max_idle_attempts must be >= 1")


@dataclass
class ConstructionPeer:
    """State of one peer during and after construction.

    ``keys`` is the set of data keys the peer currently stores (all lie
    inside its ``path`` partition); ``routing`` maps each level of the
    path to peer ids whose paths have the complementary bit at that
    level; ``replicas`` are same-partition peers discovered so far.
    """

    peer_id: int
    path: Path = ROOT
    keys: set = field(default_factory=set)
    outbox: set = field(default_factory=set)
    routing: Dict[int, List[int]] = field(default_factory=dict)
    replicas: set = field(default_factory=set)
    idle_strikes: int = 0
    active: bool = True
    interactions_initiated: int = 0

    def add_route(self, level: int, other: int, limit: int = 4) -> None:
        """Record ``other`` as a routing reference at ``level`` (bounded)."""
        refs = self.routing.setdefault(level, [])
        if other not in refs:
            refs.append(other)
            del refs[:-limit]

    def route_candidates(self, level: int) -> List[int]:
        """Known peers in the complementary subtree at ``level``."""
        return self.routing.get(level, [])


@dataclass
class ConstructionResult:
    """Outcome of a full decentralized construction run.

    Cost counters follow the paper's Fig. 6 metrics: ``interactions``
    counts every initiated contact (including refer hops and wasted
    meetings), ``keys_moved`` every data key shipped between peers
    (replication, splits, reconciliation) -- the bandwidth proxy of
    Fig. 6(f) -- and ``rounds`` is the parallel latency proxy.
    """

    peers: List[ConstructionPeer]
    rounds: int
    interactions: int
    keys_moved: int
    replication_keys_moved: int
    splits: int
    replicate_meetings: int
    refer_meetings: int
    undeliverable_keys: int = 0
    bilateral_interactions: int = 0
    bandwidth_keys: int = 0

    @property
    def n(self) -> int:
        """Number of peers."""
        return len(self.peers)

    @property
    def interactions_per_peer(self) -> float:
        """All initiated contacts per peer, including refer routing hops."""
        return self.interactions / self.n

    @property
    def bilateral_interactions_per_peer(self) -> float:
        """Fig. 6(e) metric: split/replicate/decide meetings per peer
        (routing hops to *locate* partners are accounted separately,
        as in Sec. 4.3's complexity split)."""
        return self.bilateral_interactions / self.n

    @property
    def keys_moved_per_peer(self) -> float:
        """Net data keys shipped per peer (construction traffic only)."""
        return self.keys_moved / self.n

    @property
    def bandwidth_keys_per_peer(self) -> float:
        """Fig. 6(f) metric: total keys transmitted per peer, counting the
        key lists exchanged for comparison in every bilateral meeting as
        well as actual movements and the initial replication copies."""
        return self.bandwidth_keys / self.n

    @property
    def paths(self) -> List[Path]:
        """All peer paths (input to the deviation metric)."""
        return [peer.path for peer in self.peers]

    def distinct_keys(self) -> set:
        """Union of all stored keys."""
        out: set = set()
        for peer in self.peers:
            out |= peer.keys
        return out

    def replication_factor(self) -> float:
        """Mean number of peers per distinct leaf path."""
        by_path: Dict[Path, int] = {}
        for peer in self.peers:
            by_path[peer.path] = by_path.get(peer.path, 0) + 1
        if not by_path:
            return 0.0
        return len(self.peers) / len(by_path)

    def mean_path_length(self) -> float:
        """Average peer path length (trie depth actually reached)."""
        return sum(p.path.length for p in self.peers) / len(self.peers)

    def routing_is_consistent(self) -> bool:
        """Every routing entry must point into the complementary subtree."""
        peers_by_id = {p.peer_id: p for p in self.peers}
        for peer in self.peers:
            for level, refs in peer.routing.items():
                if level >= peer.path.length:
                    return False
                want_prefix = peer.path.prefix(level).extend(1 - peer.path.bit(level))
                for ref in refs:
                    other = peers_by_id[ref]
                    if not want_prefix.is_prefix_of(other.path):
                        return False
        return True

    def storage_is_consistent(self) -> bool:
        """Every stored key must fall inside its peer's partition."""
        return all(
            peer.path.contains_key(key, KEY_BITS)
            for peer in self.peers
            for key in peer.keys
        )


def construct_overlay(
    peer_keys: Sequence[Sequence[int]],
    config: ConstructionConfig | None = None,
    *,
    rng: RngLike = None,
) -> ConstructionResult:
    """Run the full decentralized construction (Secs. 2.2, 4.2, 4.4).

    Parameters
    ----------
    peer_keys:
        One integer-key sequence per peer -- the data each peer initially
        holds (e.g. 10 keys each, as in the paper's experiments).
    config:
        See :class:`ConstructionConfig`; ``None`` uses paper defaults.
    rng:
        Seed or generator; construction is deterministic given a seed.

    Returns
    -------
    ConstructionResult
        Final peer states (paths, keys, routing tables) plus the cost
        counters for Figs. 6(e)/6(f).
    """
    config = config or ConstructionConfig()
    config.validate()
    rand = make_rng(rng if rng is not None else config.seed)
    n = len(peer_keys)
    if n < 2 * config.n_min:
        raise ConstructionError(
            f"population {n} cannot sustain replication n_min={config.n_min}"
        )

    peers = [
        ConstructionPeer(peer_id=i, keys=set(map(int, keys)))
        for i, keys in enumerate(peer_keys)
    ]
    state = _Construction(peers, config, rand)
    state.replication_phase()
    state.run_rounds()
    state.flush_outboxes()
    return state.result()


class _Construction:
    """Mutable engine behind :func:`construct_overlay`."""

    def __init__(self, peers: List[ConstructionPeer], config: ConstructionConfig, rand):
        self.peers = peers
        self.config = config
        self.rand = rand
        self.d_max = config.resolved_d_max()
        self.interactions = 0
        self.keys_moved = 0
        self.replication_keys_moved = 0
        self.splits = 0
        self.replicate_meetings = 0
        self.refer_meetings = 0
        self.rounds = 0
        self.undeliverable_keys = 0
        self.bilateral_interactions = 0
        self.bandwidth_keys = 0

    # -- phase 1: initial replication (Sec. 4.2) -------------------------

    def replication_phase(self) -> None:
        """Copy every peer's keys to ``n_min - 1`` random other peers so
        each key starts with ``n_min`` replicas -- the calibration the
        replica-count estimator relies on."""
        n = len(self.peers)
        copies = self.config.n_min - 1
        if copies <= 0:
            return
        snapshots = [list(peer.keys) for peer in self.peers]
        for i, keys in enumerate(snapshots):
            if not keys:
                continue
            others = self.rand.sample(range(n - 1), min(copies, n - 1))
            for j in others:
                target = j + 1 if j >= i else j
                self.peers[target].keys.update(keys)
                self.replication_keys_moved += len(keys)

    # -- phase 2: rounds of random interactions ---------------------------

    def run_rounds(self) -> None:
        """Round-based concurrent process with Sec. 4.2 termination."""
        n = len(self.peers)
        while self.rounds < self.config.max_rounds:
            active_ids = [p.peer_id for p in self.peers if p.active]
            if not active_ids:
                break
            self.rounds += 1
            self.rand.shuffle(active_ids)
            for pid in active_ids:
                peer = self.peers[pid]
                if not peer.active:
                    continue  # deactivated earlier in this round
                partner_id = self.rand.randrange(n - 1)
                if partner_id >= pid:
                    partner_id += 1
                self._interact(peer, self.peers[partner_id])
        else:
            raise ConstructionError(
                f"construction did not settle within {self.config.max_rounds} rounds"
            )

    # -- interaction dispatch (Fig. 2) -------------------------------------

    def _interact(self, initiator: ConstructionPeer, partner: ConstructionPeer) -> None:
        """One initiated interaction, following referrals up to a bound."""
        hops = 0
        while True:
            initiator.interactions_initiated += 1
            self.interactions += 1
            delivered = self._exchange_outbox(initiator, partner)
            relation = self._relation(initiator, partner)
            if relation != "diverged":
                # Bilateral meeting: the initiator ships its key list so
                # the pair can compare content and estimate the partition
                # population -- the dominant bandwidth term of Fig. 6(f).
                self.bilateral_interactions += 1
                self.bandwidth_keys += len(initiator.keys)
            if relation == "same":
                useful = self._meet_same_partition(initiator, partner)
                self._strike(initiator, useful or delivered)
                return
            if relation == "initiator_undecided":
                useful = self._decide_against(initiator, partner)
                self._strike(initiator, useful or delivered)
                return
            if relation == "partner_undecided":
                # The partner lags behind; from its perspective the
                # initiator has decided, so the partner applies rules 3/4.
                useful = self._decide_against(partner, initiator)
                self._strike(initiator, useful or delivered)
                return
            # Diverging paths: refer.  The initiator learns a routing entry
            # and is handed a better-matching peer to contact next.
            self.refer_meetings += 1
            next_partner = self._refer(initiator, partner)
            hops += 1
            if next_partner is None or hops >= self.config.refer_hops:
                self._strike(initiator, useful=delivered)
                return
            partner = next_partner

    def _exchange_outbox(self, a: ConstructionPeer, b: ConstructionPeer) -> bool:
        """Deliver in-flight keys that fall into the other peer's partition.

        Keys displaced by path refinements travel piggy-backed on ordinary
        interactions until they meet a peer responsible for them -- the
        decentralized analogue of forwarding displaced data along the
        growing routing structure.
        """
        moved = 0
        for src, dst in ((a, b), (b, a)):
            if not src.outbox:
                continue
            deliverable = _keys_in_partition(src.outbox, dst.path)
            if deliverable:
                src.outbox -= deliverable
                dst.keys.update(deliverable)
                moved += len(deliverable)
        self.keys_moved += moved
        return moved > 0

    def _strike(self, peer: ConstructionPeer, useful: bool) -> None:
        """Track useless interactions; passive peers stop initiating."""
        if useful:
            peer.idle_strikes = 0
        else:
            peer.idle_strikes += 1
            if peer.idle_strikes >= self.config.max_idle_attempts:
                peer.active = False

    @staticmethod
    def _relation(a: ConstructionPeer, b: ConstructionPeer) -> str:
        """Classify the pair per Fig. 2."""
        if a.path == b.path:
            return "same"
        if a.path.is_prefix_of(b.path):
            return "initiator_undecided"
        if b.path.is_prefix_of(a.path):
            return "partner_undecided"
        return "diverged"

    # -- same-partition meeting: split or replicate -------------------------

    def _meet_same_partition(
        self, a: ConstructionPeer, b: ConstructionPeer
    ) -> bool:
        """Possibility 1/2 of Fig. 2.  Returns whether the initiator should
        stay active.

        While the shared partition is overloaded the bisection is *in
        progress*: even a failed balanced-split coin flip keeps the peer
        active, because AEP's undecided peers initiate interactions until
        a decision is reached (Sec. 3.1) -- the expected number of
        attempts is exactly what Eq. (3) prices in.
        """
        level = a.path.length
        union = a.keys | b.keys
        if self._overloaded(a, b, union, level):
            self._try_split(a, b, union, level)
            return True
        return self._replicate(a, b, union)

    def _overloaded(
        self, a: ConstructionPeer, b: ConstructionPeer, union, level: int
    ) -> bool:
        """Local overload test: the partition justifies a further split.

        Uses the Sec. 4.2 overlap estimators; disjoint samples estimate
        "unbounded", i.e. definitely overloaded -- correct early in the
        process when each peer has seen only a sliver of the partition.
        """
        if level >= KEY_BITS - 1 or not a.keys or not b.keys:
            return False
        if len(union) <= self.d_max / 2.0:
            # Capture-recapture can report "unbounded" from two disjoint
            # slivers; require direct evidence of real volume before
            # declaring overload, so near-empty deep partitions settle.
            return False
        d_hat = estimate_partition_keys(a.keys, b.keys)
        if d_hat <= self.d_max:
            return False
        return self._replica_evidence(a.keys, b.keys, a, b) >= 2 * self.config.n_min

    def _replica_evidence(self, keys_a, keys_b, a=None, b=None) -> float:
        """Best local estimate of the partition's peer count.

        Combines the key-overlap estimator of Sec. 4.2 with the direct
        evidence of the replica lists accumulated through reconciliation
        (once replicas have fully synchronized, the overlap estimator
        reports exactly ``n_min`` by design, so the discovered replica
        population takes over)."""
        r_hat = estimate_replica_count(keys_a, keys_b, self.config.n_min)
        known = 0.0
        if a is not None and b is not None:
            known = float(len((a.replicas | b.replicas | {a.peer_id, b.peer_id})))
        return max(r_hat, known) if math.isfinite(r_hat) else r_hat

    def _split_policy(
        self, union: set, level: int, r_hat: float
    ) -> Tuple[DecisionProbabilities, int]:
        """Decision probabilities for splitting at ``level``.

        The estimated minority fraction is floored at ``n_min / r_hat``
        (the decentralized analogue of Algorithm 1's lines 6-10: never
        aim fewer than ``n_min`` peers at a side) and the probability
        functions follow the configured strategy.
        """
        sample = union
        if self.config.sample_size is not None and len(union) > self.config.sample_size:
            sample = set(self.rand.sample(list(union), self.config.sample_size))
        p_hat = estimate_split_fraction(sample, level)
        minority = 0 if p_hat <= 0.5 else 1
        q = min(p_hat, 1.0 - p_hat)
        m_eff = max(len(sample), 1)
        if math.isfinite(r_hat) and r_hat >= 2 * self.config.n_min:
            q = max(q, self.config.n_min / r_hat)
        q = min(max(q, 1.0 / (4.0 * m_eff)), 0.5)
        if self.config.strategy == "heuristic":
            probs = heuristic_probabilities(q)
        elif self.config.strategy == "uncorrected":
            probs = decision_probabilities(q)
        else:
            probs = decision_probabilities(q, m=m_eff)
        return probs, minority

    def _try_split(
        self, a: ConstructionPeer, b: ConstructionPeer, union: set, level: int
    ) -> bool:
        """Balanced split of two same-path peers with probability alpha."""
        r_hat = self._replica_evidence(a.keys, b.keys, a, b)
        probs, _minority = self._split_policy(union, level, r_hat)
        if self.rand.random() >= probs.alpha:
            return False
        lower, upper = (a, b) if self.rand.random() < 0.5 else (b, a)
        self._assign_side(lower, 0, counterpart=upper)
        self._assign_side(upper, 1, counterpart=lower)
        self.splits += 1
        return True

    def _assign_side(
        self, peer: ConstructionPeer, side: int, counterpart: ConstructionPeer
    ) -> None:
        """Extend ``peer``'s path by ``side``; ship foreign keys across.

        Keys that fall outside the counterpart's (possibly deeper)
        partition enter the counterpart's outbox and travel on until a
        responsible peer is met.
        """
        level = peer.path.length
        peer.path = peer.path.extend(side)
        peer.add_route(level, counterpart.peer_id)
        # Every stored key shares the parent partition's prefix, so "bit
        # ``level`` == side" reduces to one comparison against the parent
        # midpoint -- no per-key bit extraction.
        shift = KEY_BITS - 1 - level
        boundary = (peer.path.bits | 1) << shift
        if side == 0:
            stay = {k for k in peer.keys if k < boundary}
        else:
            stay = {k for k in peer.keys if k >= boundary}
        leave = peer.keys - stay
        peer.keys = stay
        # Displaced outbox keys that no longer belong anywhere near this
        # peer keep travelling through its outbox regardless of the split.
        if leave:
            direct = _keys_in_partition(leave, counterpart.path)
            counterpart.keys.update(direct)
            counterpart.outbox.update(leave - direct)
            self.keys_moved += len(leave)
        # Replica lists refer to the old, coarser partition; they are
        # re-discovered lazily through replicate meetings.
        peer.replicas.clear()
        peer.active = True
        peer.idle_strikes = 0

    # -- rules 3/4 against an already-decided peer ---------------------------

    def _decide_against(
        self, undecided: ConstructionPeer, decided: ConstructionPeer
    ) -> bool:
        """AEP rules 3/4: ``undecided``'s path is a proper prefix of
        ``decided``'s, so the decided peer's next bit reveals its side.
        Returns whether the interaction made progress."""
        level = undecided.path.length
        union = undecided.keys | decided.keys
        if not self._overloaded(undecided, decided, union, level):
            # Not enough load to justify refining; reconcile instead so the
            # lagging peer catches up with the partition content it missed.
            return self._pull_keys(undecided, decided)
        r_hat = self._replica_evidence(undecided.keys, decided.keys, undecided, decided)
        probs, minority = self._split_policy(union, level, r_hat)
        partner_side = decided.path.bit(level)
        if partner_side == minority:
            side = 1 - minority  # rule 3: join the majority
            reference = decided
        else:
            if self.rand.random() < probs.beta:
                side = minority  # rule 4, first case
                reference = decided
            else:
                side = partner_side  # rule 4, second case: same side,
                reference = None  # reference obtained from partner's table
        if reference is not None:
            self._assign_side(undecided, side, counterpart=reference)
        else:
            shared = self._shared_reference(decided, level)
            if shared is None:
                # The partner cannot hand over an opposite-side contact
                # (can only happen transiently); fall back to joining the
                # opposite side of the partner to keep integrity.
                side = 1 - partner_side
                self._assign_side(undecided, side, counterpart=decided)
            else:
                self._assign_side(undecided, side, counterpart=shared)
                # Keys shipped to `shared` (opposite side) -- correct
                # destination; also learn the partner as a replica-side
                # contact at deeper levels via future meetings.
        return True

    def _shared_reference(
        self, peer: ConstructionPeer, level: int
    ) -> Optional[ConstructionPeer]:
        """A peer from ``peer``'s routing table on the opposite side of
        ``level`` (rule 4's "obtains a reference from the contacted peer")."""
        for ref in peer.route_candidates(level):
            other = self.peers[ref]
            if other.path.length > level and other.path.bit(level) != peer.path.bit(level):
                return other
        return None

    # -- replicate / reconcile (possibility 2) --------------------------------

    def _replicate(self, a: ConstructionPeer, b: ConstructionPeer, union: set) -> bool:
        """Anti-entropy reconciliation of two same-partition replicas.

        Both peers converge on the union in place (two set merges), not
        by materializing two fresh copies of it -- reconciliation runs on
        every replicate meeting, and most of them find the pair already
        nearly synchronized.
        """
        moved = 2 * len(union) - len(a.keys) - len(b.keys)
        self.replicate_meetings += 1
        if moved == 0 and b.peer_id in a.replicas and a.peer_id in b.replicas:
            return False  # fully synchronized copies: a useless interaction
        self.keys_moved += moved
        if len(a.keys) != len(union):
            a.keys |= b.keys
        if len(b.keys) != len(union):
            b.keys |= a.keys
        a.replicas.add(b.peer_id)
        b.replicas.add(a.peer_id)
        a.replicas.update(b.replicas - {a.peer_id})
        b.replicas.update(a.replicas - {b.peer_id})
        b.active = True
        b.idle_strikes = 0
        return True

    def _pull_keys(self, behind: ConstructionPeer, ahead: ConstructionPeer) -> bool:
        """A lagging peer catches up on the partition content it missed
        (without refining its path).  Returns whether keys moved."""
        incoming = _keys_in_partition(ahead.keys, behind.path)
        moved = len(incoming - behind.keys)
        if moved:
            behind.keys.update(incoming)
            self.keys_moved += moved
            behind.active = True
            behind.idle_strikes = 0
        return moved > 0

    # -- refer (possibility 3) -------------------------------------------------

    def _refer(
        self, initiator: ConstructionPeer, partner: ConstructionPeer
    ) -> Optional[ConstructionPeer]:
        """Diverging-path meeting: exchange routing entries, get referred.

        Both peers add each other at the divergence level (if it lies
        inside their paths).  The partner then recommends, from its own
        routing table, a peer whose path shares a longer prefix with the
        initiator -- one step of prefix routing toward the initiator's
        partition.
        """
        cpl = initiator.path.common_prefix_length(partner.path)
        if cpl < initiator.path.length:
            initiator.add_route(cpl, partner.peer_id)
        if cpl < partner.path.length:
            partner.add_route(cpl, initiator.peer_id)
        # Partner recommends its best-matching contact.  The candidate
        # scan is the hottest loop of the refer phase, so the common-
        # prefix computation is inlined against the initiator's path.
        best: Optional[ConstructionPeer] = None
        best_cpl = cpl
        ini_path = initiator.path
        ini_bits = ini_path.bits
        ini_len = ini_path.length
        ini_id = initiator.peer_id
        peers = self.peers
        for refs in partner.routing.values():
            for ref in refs:
                if ref == ini_id:
                    continue
                candidate = peers[ref]
                cand_path = candidate.path
                cand_len = cand_path.length
                n = cand_len if cand_len < ini_len else ini_len
                diff = (ini_bits >> (ini_len - n)) ^ (cand_path.bits >> (cand_len - n)) if n else 0
                c = n if not diff else n - diff.bit_length()
                if c > best_cpl or (
                    best is not None
                    and c == best_cpl
                    and cand_len < best.path.length
                ):
                    best, best_cpl = candidate, c
        return best

    # -- final outbox flush ---------------------------------------------------

    def flush_outboxes(self) -> None:
        """Deliver keys still in flight when the process settles.

        Every sibling subtree created by a split is populated, so a
        responsible peer exists for (almost) every key; the rare
        leftovers are counted as ``undeliverable_keys`` instead of being
        silently dropped.
        """
        pending = []
        for peer in self.peers:
            for key in peer.outbox:
                pending.append(key)
            peer.outbox = set()
        if not pending:
            return
        # Index peers by path for O(path-length) delivery per key.
        by_path: Dict[Path, List[ConstructionPeer]] = {}
        max_len = 0
        for peer in self.peers:
            by_path.setdefault(peer.path, []).append(peer)
            max_len = max(max_len, peer.path.length)
        for key in pending:
            delivered = False
            for length in range(max_len, -1, -1):
                prefix = Path(key >> (KEY_BITS - length) if length else 0, length)
                group = by_path.get(prefix)
                if group:
                    target = min(group, key=lambda p: len(p.keys))
                    if target.path.contains_key(key, KEY_BITS):
                        target.keys.add(key)
                        self.keys_moved += 1
                        delivered = True
                    break
            if not delivered:
                self.undeliverable_keys += 1

    # -- result ------------------------------------------------------------------

    def result(self) -> ConstructionResult:
        return ConstructionResult(
            peers=self.peers,
            rounds=self.rounds,
            interactions=self.interactions,
            keys_moved=self.keys_moved,
            replication_keys_moved=self.replication_keys_moved,
            splits=self.splits,
            replicate_meetings=self.replicate_meetings,
            refer_meetings=self.refer_meetings,
            undeliverable_keys=self.undeliverable_keys,
            bilateral_interactions=self.bilateral_interactions,
            # Total keys on the wire: comparison lists + movements + the
            # initial replication copies.
            bandwidth_keys=self.bandwidth_keys
            + self.keys_moved
            + self.replication_keys_moved,
        )

"""Load-balancing quality metric of Sec. 4.4.

The decentralized construction is scored by how far the resulting
assignment of peers to key-space partitions deviates from the reference
produced by Algorithm 1 (``repro.core.reference``) with global knowledge:

    deviation = RMS_i( n_i - n'_i ) / mean_i( n_i )

where ``n_i`` is the reference peer count of leaf ``i`` and ``n'_i`` the
peer mass the decentralized overlay puts on that leaf.  Normalizing by the
average replication makes the metric comparable across ``n_min`` values,
matching the paper's "we measure deviations relative to the average
replication".

A decentralized peer whose path does not coincide with a reference leaf is
attributed *fractionally*: a peer covering a super-interval of several
leaves spreads its unit mass over them proportionally to interval overlap,
and a peer strictly inside a leaf contributes its whole unit to it.  Total
attributed mass always equals the peer count.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..exceptions import PartitionError
from ..pgrid.bits import Path
from .reference import ReferencePartition

__all__ = ["attribute_peers", "load_balance_deviation"]


def attribute_peers(
    peer_paths: Sequence[Path],
    reference: ReferencePartition,
) -> List[float]:
    """Fractional peer mass per reference leaf.

    For each peer path ``w`` and leaf path ``k``: if ``k`` is a prefix of
    ``w`` (peer inside leaf) the peer contributes 1 to that leaf; if ``w``
    is a proper prefix of ``k`` (peer spans several leaves) it contributes
    ``2^(len(w) - len(k))`` -- the fraction of its own interval the leaf
    occupies; disjoint pairs contribute nothing.  Contributions over all
    leaves sum to 1 per peer because the leaves tile the key space.
    """
    leaves = reference.leaves
    if not leaves:
        raise PartitionError("reference partition has no leaves")
    masses = [0.0] * len(leaves)
    # Leaves are sorted in key-space order; locate each peer by binary
    # search on interval start to keep attribution O(P log K).
    starts = [leaf.path.interval()[0] for leaf in leaves]
    import bisect as _bisect

    for w in peer_paths:
        w_lo, w_hi = w.interval()
        # First leaf whose interval could intersect [w_lo, w_hi).
        i = _bisect.bisect_right(starts, w_lo) - 1
        i = max(i, 0)
        while i < len(leaves):
            k = leaves[i].path
            k_lo, k_hi = k.interval()
            if k_lo >= w_hi:
                break
            overlap = min(w_hi, k_hi) - max(w_lo, k_lo)
            if overlap > 0:
                masses[i] += overlap / (w_hi - w_lo)
            i += 1
    return masses


def load_balance_deviation(
    peer_paths: Sequence[Path],
    reference: ReferencePartition,
) -> float:
    """The paper's deviation metric: RMS leaf error over mean replication.

    Zero iff the decentralized peer mass matches the reference exactly on
    every leaf; dimensionless and invariant under scaling both peer
    populations by a common factor.
    """
    masses = attribute_peers(peer_paths, reference)
    errors = [
        leaf.n_peers - mass for leaf, mass in zip(reference.leaves, masses)
    ]
    k = len(reference.leaves)
    rms = math.sqrt(sum(e * e for e in errors) / k)
    mean_replication = reference.total_peers / k
    if mean_replication == 0:
        raise PartitionError("reference partition assigns zero peers")
    return rms / mean_replication

"""Local estimators used by the decentralized indexing process (Secs. 3.2, 4.2).

Peers have no global knowledge; every quantity entering their decisions is
estimated from locally stored data keys and from the key sets exchanged in
pairwise interactions:

* :func:`estimate_split_fraction` -- the load fraction ``p`` of the lower
  half of the current partition, from a (sample of the) local key set;
* :func:`estimate_replica_count` -- the number of peers replicating the
  current partition, from the *overlap* of two peers' key sets
  (capture--recapture / Lincoln--Petersen maximum likelihood);
* :func:`estimate_partition_keys` -- the number of distinct keys in the
  partition from the same two-sample overlap.

The replica estimator satisfies the paper's calibration anchor: two peers
with identical key sets of size ``d_max`` yield an estimate of exactly
``n_min``, because the initial replication phase copies every key to
``n_min`` peers.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Iterable, Optional, Sequence, Union

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import KEY_BITS
from ..pgrid.keystore import KeyStore

KeySetLike = Union[AbstractSet[int], KeyStore]

__all__ = [
    "estimate_split_fraction",
    "estimate_replica_count",
    "estimate_partition_keys",
    "sample_keys",
]


def sample_keys(keys: Sequence[int], m: Optional[int], rng: RngLike = None) -> Sequence[int]:
    """Draw ``m`` keys without replacement (all keys if ``m`` is ``None`` or
    exceeds the population)."""
    keys = list(keys)
    if m is None or m >= len(keys):
        return keys
    if m < 1:
        raise DomainError(f"sample size must be >= 1, got {m}")
    rand = make_rng(rng)
    return rand.sample(keys, m)


def estimate_split_fraction(keys: Iterable[int], level: int) -> float:
    """Fraction of keys falling into the ``0`` side of the level-``level``
    bisection -- the estimate ``p_hat`` driving the AEP probabilities.

    ``keys`` are integer keys already known to share the first ``level``
    bits (the current partition); the estimator simply counts the next
    bit.  Raises :class:`DomainError` for an empty key set: a peer with
    no data cannot form an estimate and must reconcile first.

    Because the keys share the partition prefix, "bit ``level`` is 0" is
    equivalent to "key below the partition midpoint", so the count is a
    plain comparison sweep (or a single binary search for a sorted
    :class:`KeyStore`) rather than a per-key bit extraction.
    """
    if not 0 <= level < KEY_BITS:
        raise DomainError(f"level {level} out of range [0, {KEY_BITS})")
    if isinstance(keys, KeyStore):
        total = len(keys)
        if total == 0:
            raise DomainError("cannot estimate a split fraction from zero keys")
        shift = KEY_BITS - 1 - level
        boundary = ((keys.min() >> (shift + 1)) * 2 + 1) << shift
        return keys.count_below(boundary) / total
    keys = keys if isinstance(keys, (set, frozenset, list, tuple)) else list(keys)
    total = len(keys)
    if total == 0:
        raise DomainError("cannot estimate a split fraction from zero keys")
    shift = KEY_BITS - 1 - level
    anchor = next(iter(keys))
    boundary = ((anchor >> (shift + 1)) * 2 + 1) << shift
    zeros = sum(1 for key in keys if key < boundary)
    return zeros / total


def _overlap_size(keys_a: KeySetLike, keys_b: KeySetLike) -> int:
    """``|A ∩ B|`` across plain sets and sorted :class:`KeyStore`\\ s."""
    if isinstance(keys_a, KeyStore):
        return keys_a.intersection_size(keys_b)
    if isinstance(keys_b, KeyStore):
        return keys_b.intersection_size(keys_a)
    return len(keys_a & keys_b)


def estimate_replica_count(
    keys_a: KeySetLike,
    keys_b: KeySetLike,
    n_min: int,
) -> float:
    """Estimate the number of peers in the current partition from the
    overlap of two peers' key sets (Sec. 4.2).

    Under the model "each of the partition's distinct keys is replicated
    on exactly ``n_min`` of the partition's ``R`` peers", a key held by
    peer A is held by peer B with probability ``(n_min - 1) / (R - 1)``
    (the other ``n_min - 1`` replica slots fall on the remaining
    ``R - 1`` peers).  Equating that to the observed overlap fraction
    gives the capture--recapture maximum-likelihood estimate

    ``R_hat = 1 + (n_min - 1) * (|A| + |B|) / (2 |A ∩ B|)``

    With identical key sets it returns exactly ``n_min`` -- the paper's
    calibration anchor ("if D1 = D2 ... expect n_min peers, since keys
    were initially replicated n_min times").  With disjoint sets the
    population is unbounded from the two samples and ``inf`` is
    returned, which callers treat as "definitely enough peers to split".
    """
    if n_min < 1:
        raise DomainError(f"n_min must be >= 1, got {n_min}")
    size_a = len(keys_a)
    size_b = len(keys_b)
    if size_a == 0 or size_b == 0:
        return math.inf
    overlap = _overlap_size(keys_a, keys_b)
    if overlap == 0:
        return math.inf
    return 1.0 + (n_min - 1) * (size_a + size_b) / (2.0 * overlap)


def estimate_partition_keys(
    keys_a: KeySetLike,
    keys_b: KeySetLike,
) -> float:
    """Estimate the number of *distinct* keys in the current partition from
    two peers' key sets (Lincoln--Petersen: ``|A| |B| / |A ∩ B|``).

    Returns ``inf`` for disjoint samples -- the two peers have evidence
    of at least ``|A| + |B|`` keys and no upper bound, so an overload
    test against any finite ``d_max`` should pass.
    """
    size_a = len(keys_a)
    size_b = len(keys_b)
    if size_a == 0 or size_b == 0:
        return float(size_a + size_b)
    overlap = _overlap_size(keys_a, keys_b)
    if overlap == 0:
        return math.inf
    return size_a * size_b / overlap

"""The paper's core contribution: decentralized parallel partitioning.

Sub-modules
-----------
``probabilities``
    The AEP decision probabilities ``alpha(p)``/``beta(p)``, their
    sampling-bias corrections and the interaction-count predictions.
``mva``
    Mean-value (expected-dynamics) models MVA and SAM.
``aut``
    The autonomous-partitioning baseline's fluid model.
``bisection``
    Discrete simulations of a single bisection (models AEP, COR, AUT).
``reference``
    Algorithm 1 -- the globally coordinated optimal partitioner.
``estimators``
    Local estimators for the split fraction, replica count and
    partition size.
``deviation``
    The load-balance deviation metric of Sec. 4.4.
``construction``
    The full recursive, round-based construction process (Fig. 2 and
    Sec. 4), producing a complete P-Grid overlay from scratch.
"""

from . import (  # noqa: F401
    aut,
    bisection,
    constants,
    construction,
    deviation,
    estimators,
    mva,
    probabilities,
    reference,
)

"""Autonomous partitioning (AUT) -- the baseline strategy of Sec. 3.

Under AUT every peer decides its partition *in advance* (side ``0`` with
probability ``p``) and then keeps initiating random interactions until it
is *satisfied*, i.e. until it has obtained a reference to a peer of the
opposite partition (the referential-integrity requirement).  An initiator
becomes satisfied when the contacted peer

* belongs to the opposite partition (a direct reference), or
* belongs to the same partition but is already satisfied, in which case
  the contacted peer *shares* its opposite-side reference.

The contacted peer's own state never changes (contrast with AEP, where
decisions propagate through the contacted peer as well) -- this is what
makes some AUT interactions "wasted".

This model reproduces the paper's anchors: ``2 ln 2`` interactions per
peer at ``p = 1/2`` (vs ``ln 2`` for eager partitioning), cost *falling*
as the split becomes more skewed, and the AEP/AUT cost crossover around
``p ≈ 0.15`` visible in Fig. 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import check_probability
from ..exceptions import DomainError

__all__ = ["AutPrediction", "aut_interactions", "aut_cost_per_peer", "AUT_HALF_COST"]

#: Closed-form cost per peer at ``p = 1/2``: the fluid limit gives
#: ``u(tau) = 2 - e^{tau/2}``, hence ``tau* = 2 ln 2``.
AUT_HALF_COST: float = 2.0 * math.log(2.0)


@dataclass(frozen=True)
class AutPrediction:
    """Fluid-limit prediction for an AUT run.

    ``interactions`` is the expected total number of initiated
    interactions until every peer is satisfied; ``per_peer`` the same
    normalized by the population size.
    """

    n: int
    p: float
    interactions: float
    per_peer: float


def aut_interactions(n: int, p: float, *, dt: float = 1e-3) -> AutPrediction:
    """Integrate the AUT fluid model for a population of ``n`` peers.

    State: ``u0``/``u1`` are the unsatisfied fractions on each side
    (initially ``p`` and ``1-p``).  In each (sequential) step one
    unsatisfied peer initiates; an initiator on side ``s`` becomes
    satisfied with probability

    ``P_s = (fraction on the other side) + (satisfied fraction on side s)``

    because both an opposite-side peer and a satisfied same-side peer
    yield a usable reference.  Measuring time in initiated interactions
    per peer (``tau = t / n``) gives the coupled ODEs integrated here
    with explicit Euler steps of size ``dt``.

    The integration is exact in the ``n -> infinity`` limit; for the
    finite-``n`` discrete process see
    :func:`repro.core.bisection.simulate_aut`.
    """
    check_probability(p, "p")
    if not 0.0 < p <= 0.5:
        raise DomainError(f"aut expects the minority load fraction p in (0, 1/2], got {p}")
    if n < 2:
        raise DomainError(f"need at least 2 peers, got {n}")

    u0 = p  # unsatisfied fraction, side 0
    u1 = 1.0 - p  # unsatisfied fraction, side 1
    tau = 0.0
    # Integration cap: even p = 0.01 terminates well below tau = 50.
    while (u0 > 1e-9 or u1 > 1e-9) and tau < 200.0:
        u = u0 + u1
        # Probability the (uniformly chosen unsatisfied) initiator sits on
        # side 0, and the satisfaction probabilities per side.
        w0 = u0 / u
        sat0 = (1.0 - p) + (p - u0)  # opposite side + satisfied same-side
        sat1 = p + ((1.0 - p) - u1)
        du0 = -w0 * sat0
        du1 = -(1.0 - w0) * sat1
        u0 = max(0.0, u0 + dt * du0)
        u1 = max(0.0, u1 + dt * du1)
        tau += dt
    per_peer = tau
    return AutPrediction(n=n, p=p, interactions=per_peer * n, per_peer=per_peer)


def aut_cost_per_peer(p: float) -> float:
    """Asymptotic AUT interactions per peer at load fraction ``p``.

    Convenience wrapper around :func:`aut_interactions` (the population
    size cancels in the fluid limit).
    """
    return aut_interactions(1000, p).per_peer

"""Discrete simulation of one decentralized key-space bisection (Sec. 3.3).

While :mod:`repro.core.mva` integrates the *expected* dynamics, this module
simulates the actual randomized process peer by peer: every step one
undecided (AEP) or unsatisfied (AUT) peer initiates an interaction with a
uniformly random peer and the protocol rules fire with real coin flips.

The paper's five models map onto this package as:

===  ==========================================================
MVA  :func:`repro.core.mva.run_mva` (mean value, exact ``p``)
SAM  :func:`repro.core.mva.run_sam` (mean value, sampled ``p``)
AEP  :func:`simulate_aep` with ``m`` set, ``corrected=False``
COR  :func:`simulate_aep` with ``m`` set, ``corrected=True``
AUT  :func:`simulate_aut`
===  ==========================================================

Every simulated peer derives its own estimate ``p_hat`` from ``m``
Bernoulli samples of the load distribution, so the systematic sampling
bias of Sec. 3.2 -- and its removal by the corrected probabilities -- is
visible in the discrete results exactly as in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .._util import RngLike, check_probability, make_rng
from ..exceptions import ConstructionError, DomainError
from .probabilities import (
    DecisionProbabilities,
    decision_probabilities,
    heuristic_probabilities,
)

__all__ = ["BisectionOutcome", "simulate_aep", "simulate_aut"]

#: Undecided marker for the per-peer side array.
UNDECIDED = -1

#: Safety factor (interactions per peer) before declaring non-termination.
_MAX_COST_PER_PEER = 500.0


@dataclass
class BisectionOutcome:
    """Result of one simulated bisection round.

    ``n0``/``n1`` are the final peer counts per side, ``interactions``
    the total number of initiated interactions (including "wasted" ones),
    and ``referential_integrity`` records whether every decided peer ended
    up holding a reference to a peer of the opposite partition -- the
    invariant the paper highlights as AEP's practical advantage.
    """

    n: int
    p: float
    n0: int
    n1: int
    interactions: int
    referential_integrity: bool

    @property
    def deviation(self) -> float:
        """Signed deviation of the side-0 count from the target ``N p``."""
        return self.n0 - self.n * self.p

    @property
    def achieved_fraction(self) -> float:
        """Fraction of peers that decided for side 0."""
        return self.n0 / self.n

    @property
    def per_peer_cost(self) -> float:
        """Initiated interactions per peer."""
        return self.interactions / self.n


def _sample_estimates(
    n: int, p: float, m: Optional[int], rand
) -> Optional[List[float]]:
    """Per-peer estimates ``p_hat ~ Binomial(m, p)/m`` (or ``None`` if the
    exact ``p`` is globally known)."""
    if m is None:
        return None
    if m < 1:
        raise DomainError(f"sample size m must be >= 1, got {m}")
    estimates = []
    for _ in range(n):
        hits = sum(1 for _ in range(m) if rand.random() < p)
        estimates.append(hits / m)
    return estimates


def _policy_for(
    p_hat: float,
    m: Optional[int],
    corrected: bool,
    heuristic: bool,
) -> tuple[DecisionProbabilities, int]:
    """Decision probabilities plus the peer's *minority-side* orientation.

    A peer whose estimate exceeds ``1/2`` mirrors the roles of the two
    sides -- the symmetric treatment that keeps the process unbiased at
    ``p = 1/2`` (clamping instead would truncate upward noise and drag
    the balance down).  An estimate of exactly 0 is nudged inward
    because a split ratio of 0 is meaningless.
    """
    minority = 0 if p_hat <= 0.5 else 1
    q = min(p_hat, 1.0 - p_hat)
    floor = 1.0 / (4.0 * m) if m is not None else 1e-6
    q = min(max(q, floor), 0.5)
    if heuristic:
        probs = heuristic_probabilities(q)
    else:
        probs = decision_probabilities(q, m=m if corrected else None)
    return probs, minority


def simulate_aep(
    n: int,
    p: float,
    *,
    m: Optional[int] = None,
    corrected: bool = False,
    heuristic: bool = False,
    rng: RngLike = None,
) -> BisectionOutcome:
    """Simulate one AEP bisection of ``n`` peers at load fraction ``p``.

    Parameters
    ----------
    n, p:
        Population size and the true load fraction of side 0
        (``0 < p <= 1/2``; use the mirrored value for heavier-left
        splits).
    m:
        If given, each peer estimates ``p`` from ``m`` Bernoulli samples
        (models AEP/COR); if ``None`` all peers know ``p`` exactly.
    corrected:
        Apply the Eq. (9)/(10) bias corrections (model COR).
    heuristic:
        Use the Fig. 6(d) straw-man probability functions.
    rng:
        Seed or ``random.Random`` for reproducibility.
    """
    check_probability(p, "p")
    if not 0.0 < p <= 0.5:
        raise DomainError(f"simulate_aep expects p in (0, 1/2], got {p}")
    if n < 2:
        raise DomainError(f"need at least 2 peers, got {n}")
    rand = make_rng(rng)
    estimates = _sample_estimates(n, p, m, rand)

    side = [UNDECIDED] * n
    ref = [-1] * n  # a known peer on the opposite side, -1 if none yet
    undecided = list(range(n))
    pos = list(range(n))  # peer -> index in `undecided` for O(1) removal

    def decide(peer: int, s: int, reference: int) -> None:
        side[peer] = s
        ref[peer] = reference
        i = pos[peer]
        last = undecided[-1]
        undecided[i] = last
        pos[last] = i
        undecided.pop()

    interactions = 0
    max_interactions = int(_MAX_COST_PER_PEER * n)
    while undecided:
        if interactions > max_interactions:
            raise ConstructionError(
                f"AEP bisection failed to terminate after {interactions} interactions"
            )
        initiator = undecided[rand.randrange(len(undecided))]
        contacted = rand.randrange(n - 1)
        if contacted >= initiator:
            contacted += 1
        interactions += 1

        p_hat = p if estimates is None else estimates[initiator]
        probs, minority = _policy_for(p_hat, m, corrected, heuristic)
        majority = 1 - minority

        if side[contacted] == UNDECIDED:
            if rand.random() < probs.alpha:
                # Balanced split: one peer per side, assigned uniformly.
                if rand.random() < 0.5:
                    first, second = initiator, contacted
                else:
                    first, second = contacted, initiator
                decide(first, 0, second)
                decide(second, 1, first)
            # else: wasted interaction, both stay undecided
        elif side[contacted] == minority:
            # Rule 3: join the majority, reference the contacted minority peer.
            decide(initiator, majority, contacted)
        else:
            # Rule 4: contacted sits on the majority side.
            if rand.random() < probs.beta:
                decide(initiator, minority, contacted)
            else:
                # Join the majority; obtain an opposite-side reference from
                # the contacted peer (guaranteed to exist -- the invariant).
                shared = ref[contacted]
                if shared < 0:
                    raise ConstructionError(
                        "invariant violation: decided peer without opposite reference"
                    )
                decide(initiator, majority, shared)

    integrity = all(
        ref[i] >= 0 and side[ref[i]] == 1 - side[i] for i in range(n)
    )
    n0 = sum(1 for s in side if s == 0)
    return BisectionOutcome(
        n=n,
        p=p,
        n0=n0,
        n1=n - n0,
        interactions=interactions,
        referential_integrity=integrity,
    )


def simulate_aut(
    n: int,
    p: float,
    *,
    m: Optional[int] = None,
    rng: RngLike = None,
) -> BisectionOutcome:
    """Simulate one AUT (autonomous partitioning) bisection.

    Every peer pre-decides (side 0 with probability given by its own
    estimate of ``p``) and then initiates interactions until it holds a
    reference to an opposite-side peer -- obtained either directly from
    an opposite-side contact or shared by an already-satisfied same-side
    contact.  The contacted peer's state never changes.
    """
    check_probability(p, "p")
    if not 0.0 < p <= 0.5:
        raise DomainError(f"simulate_aut expects p in (0, 1/2], got {p}")
    if n < 2:
        raise DomainError(f"need at least 2 peers, got {n}")
    rand = make_rng(rng)
    estimates = _sample_estimates(n, p, m, rand)

    side = [0] * n
    for i in range(n):
        p_i = p if estimates is None else estimates[i]
        side[i] = 0 if rand.random() < p_i else 1
    # Degenerate draws (all peers on one side) cannot satisfy referential
    # integrity; re-balance by flipping one random peer, which is what a
    # real deployment's timeout-and-retry would effectively do.
    if all(s == side[0] for s in side):
        side[rand.randrange(n)] ^= 1

    ref = [-1] * n
    unsatisfied = list(range(n))
    pos = list(range(n))

    def satisfy(peer: int, reference: int) -> None:
        ref[peer] = reference
        i = pos[peer]
        last = unsatisfied[-1]
        unsatisfied[i] = last
        pos[last] = i
        unsatisfied.pop()

    interactions = 0
    max_interactions = int(_MAX_COST_PER_PEER * n)
    while unsatisfied:
        if interactions > max_interactions:
            raise ConstructionError(
                f"AUT bisection failed to terminate after {interactions} interactions"
            )
        initiator = unsatisfied[rand.randrange(len(unsatisfied))]
        contacted = rand.randrange(n - 1)
        if contacted >= initiator:
            contacted += 1
        interactions += 1
        if side[contacted] != side[initiator]:
            satisfy(initiator, contacted)
        elif ref[contacted] >= 0:
            satisfy(initiator, ref[contacted])
        # else: wasted interaction

    integrity = all(
        ref[i] >= 0 and side[ref[i]] == 1 - side[i] for i in range(n)
    )
    n0 = sum(1 for s in side if s == 0)
    return BisectionOutcome(
        n=n,
        p=p,
        n0=n0,
        n1=n - n0,
        interactions=interactions,
        referential_integrity=integrity,
    )

"""Decision probabilities for Adaptive Eager Partitioning (Sec. 3.1/3.2).

The AEP algorithm is parameterized by two probabilities derived from the
target load split ``p`` (the fraction of the partition's data load that
falls into sub-partition ``0``, w.l.o.g. ``0 < p <= 1/2``):

``alpha(p)``
    probability that two *undecided* peers perform a balanced split;
``beta(p)``
    probability that an undecided peer joins the *minority* side upon
    contacting a peer already decided for the *majority* side.

Mean-value analysis of the interaction Markov chain (see DESIGN.md for the
full derivation, cross-checked against every legible equation of the
paper) yields two regimes joined continuously at ``p* = 1 - ln 2``:

* **beta-regime** (``p >= p*``): ``alpha = 1`` and ``beta`` solves
  Eq. (2), ``p = 1 - (1 - 2^-beta) / beta``;
* **alpha-regime** (``p < p*``): ``beta = 0`` and ``alpha`` solves
  Eq. (4), ``p = alpha (2 alpha - 1 - ln 2 alpha) / (2 alpha - 1)^2``.

The expected number of interactions to completion is Eq. (1)/(3):
``t* = N ln 2`` in the beta-regime (independent of ``p``!) and
``t*(alpha) = N ln(2 alpha) / (2 alpha - 1)`` in the alpha-regime.

Peers estimate ``p`` from ``m`` local samples; the induced second-order
sampling bias is removed by the corrected probabilities of Eqs. (9)/(10),
implemented by :func:`alpha_corrected` / :func:`beta_corrected`.

Performance
-----------
Every construction interaction inverts Eq. (2) or (4); a profile of
``build_overlay`` shows >85% of construction time inside the generic
bisection when each inversion restarts from the full ``[0, 1]`` bracket.
The operational inverters (:func:`alpha_of_p` / :func:`beta_of_p`)
therefore seed a damped regula-falsi refinement from a precomputed
forward-map table (bracket width ~1e-3, converging in 3-6 forward
evaluations to a ``1e-13`` residual) and memoize results -- the estimate
lattice ``k/m`` repeats heavily across interactions.  The untouched
full-bracket bisections remain available as :func:`alpha_of_p_exact` /
:func:`beta_of_p_exact`; a tolerance test ties the two within ``1e-9``
(``tests/test_probabilities.py``).
"""

from __future__ import annotations

import math
from bisect import bisect_left as _bisect_left
from dataclasses import dataclass
from functools import lru_cache

from .._util import check_probability
from ..analysis.numerics import bisect, clamp, second_derivative
from ..exceptions import DomainError
from .constants import P_STAR

__all__ = [
    "P_STAR",
    "p_of_beta",
    "p_of_alpha",
    "beta_of_p",
    "alpha_of_p",
    "beta_of_p_exact",
    "alpha_of_p_exact",
    "alpha_second_derivative",
    "beta_second_derivative",
    "alpha_corrected",
    "beta_corrected",
    "decision_probabilities",
    "heuristic_probabilities",
    "t_star",
    "t_star_interactions",
    "DecisionProbabilities",
]

#: Guard band below which ``alpha_of_p`` refuses to invert: ``alpha''(p)``
#: diverges as ``p -> 0`` (Fig. 3) and the partition is better served by
#: the ``n_min`` floor of Algorithm 1 than by an extreme split.
_P_FLOOR = 1e-9

# -- forward maps -----------------------------------------------------------


def p_of_beta(beta: float) -> float:
    """Load fraction achieved by AEP with ``alpha = 1`` and given ``beta``.

    Implements Eq. (2): ``p = 1 - (1 - 2^-beta) / beta`` with the
    continuous limit ``p -> 1 - ln 2`` as ``beta -> 0``.  Monotonically
    increasing from ``1 - ln 2`` at ``beta = 0`` to ``1/2`` at ``beta = 1``.
    """
    check_probability(beta, "beta")
    if beta < 1e-9:
        # Second-order Taylor expansion around beta = 0:
        # (1 - 2^-b)/b = ln2 - b ln^2(2)/2 + b^2 ln^3(2)/6 - ...
        ln2 = math.log(2.0)
        return 1.0 - (ln2 - beta * ln2 * ln2 / 2.0 + beta * beta * ln2**3 / 6.0)
    return 1.0 - (1.0 - 2.0 ** (-beta)) / beta


def p_of_alpha(alpha: float) -> float:
    """Load fraction achieved by AEP with ``beta = 0`` and given ``alpha``.

    Implements Eq. (4): ``p = alpha (2a - 1 - ln 2a) / (2a - 1)^2``.
    Monotonically increasing from ``0`` as ``alpha -> 0`` to ``1 - ln 2``
    at ``alpha = 1``; the removable singularity at ``alpha = 1/2`` is
    handled by its Taylor expansion (value ``1/4``).
    """
    if not 0.0 < alpha <= 1.0:
        raise DomainError(f"alpha must lie in (0, 1], got {alpha!r}")
    h = alpha - 0.5
    if abs(h) < 1e-5:
        # p(1/2 + h) = 1/4 + h/6 - h^2/6 + O(h^3)  (expansion of Eq. 4)
        return 0.25 + h / 6.0 - h * h / 6.0
    two_a = 2.0 * alpha
    return alpha * (two_a - 1.0 - math.log(two_a)) / (two_a - 1.0) ** 2


# -- inverse maps ------------------------------------------------------------

#: Residual tolerance of the table-seeded inversions (in ``p`` units);
#: far below the 1e-9 round-trip tolerance the reference tests demand.
_INVERT_TOL = 1e-13

#: Lower end of the alpha search bracket (matches the exact bisection).
_ALPHA_MIN = 1e-12


def beta_of_p_exact(p: float) -> float:
    """Reference inversion of Eq. (2) by full-bracket bisection.

    Semantics identical to :func:`beta_of_p`; kept as the ground truth
    the table-driven fast path is tested against.
    """
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(f"beta_of_p expects p <= 1/2 (mirror the sides first), got {p}")
    if p < P_STAR - 1e-12:
        raise DomainError(
            f"no positive beta exists for p={p} < 1 - ln2; use alpha_of_p instead"
        )
    if p >= 0.5:
        return 1.0
    p = max(p, P_STAR)
    return bisect(lambda b: p_of_beta(b) - p, 0.0, 1.0)


def alpha_of_p_exact(p: float) -> float:
    """Reference inversion of Eq. (4) by full-bracket bisection.

    Semantics identical to :func:`alpha_of_p`; kept as the ground truth
    the table-driven fast path is tested against.
    """
    check_probability(p, "p")
    if p > P_STAR + 1e-12:
        raise DomainError(f"alpha_of_p expects p <= 1 - ln2, got {p}; use beta_of_p")
    if p <= _P_FLOOR:
        raise DomainError(f"p={p} too close to 0 for a meaningful split")
    if p >= P_STAR:
        return 1.0
    return bisect(lambda a: p_of_alpha(a) - p, _ALPHA_MIN, 1.0)


@lru_cache(maxsize=1)
def _beta_table() -> tuple:
    """Forward-map samples ``(betas, ps)`` of Eq. (2) on a uniform grid."""
    n = 1024
    betas = [i / (n - 1) for i in range(n)]
    return betas, [p_of_beta(b) for b in betas]


@lru_cache(maxsize=1)
def _alpha_table() -> tuple:
    """Forward-map samples ``(alphas, ps)`` of Eq. (4).

    Geometric spacing in ``alpha``: ``p(alpha) ~ alpha ln(1/alpha)`` as
    ``alpha -> 0``, so a uniform grid could not bracket the heavy-skew
    tail down to ``p = 1e-9`` that the guard band admits.
    """
    n = 2048
    step = math.log(1.0 / _ALPHA_MIN) / (n - 1)
    alphas = [_ALPHA_MIN * math.exp(i * step) for i in range(n)]
    alphas[-1] = 1.0
    return alphas, [p_of_alpha(a) for a in alphas]


def _invert_monotone(p: float, xs: list, ps: list, forward) -> float:
    """Solve ``forward(x) = p`` for a strictly increasing ``forward``.

    Looks up the bracketing table cell, then refines by regula falsi with
    Illinois damping -- guaranteed convergence on the bracket, typically
    3-6 ``forward`` evaluations to a ``1e-13`` residual versus ~40 for
    bisection from the full domain.
    """
    i = _bisect_left(ps, p)
    if i <= 0:
        return xs[0]
    if i >= len(ps):
        return xs[-1]
    lo, hi = xs[i - 1], xs[i]
    f_lo, f_hi = ps[i - 1] - p, ps[i] - p
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    for _ in range(100):
        x = hi - f_hi * (hi - lo) / (f_hi - f_lo)
        if not lo < x < hi:  # numerical corner: fall back to the midpoint
            x = 0.5 * (lo + hi)
        fx = forward(x) - p
        if abs(fx) < _INVERT_TOL or hi - lo < 1e-15:
            return x
        if (fx < 0.0) == (f_lo < 0.0):
            lo, f_lo = x, fx
            f_hi *= 0.5
        else:
            hi, f_hi = x, fx
            f_lo *= 0.5
    return 0.5 * (lo + hi)


@lru_cache(maxsize=65536)
def _beta_of_p_fast(p: float) -> float:
    betas, ps = _beta_table()
    return _invert_monotone(p, betas, ps, p_of_beta)


@lru_cache(maxsize=65536)
def _alpha_of_p_fast(p: float) -> float:
    alphas, ps = _alpha_table()
    return _invert_monotone(p, alphas, ps, p_of_alpha)


def beta_of_p(p: float) -> float:
    """Invert Eq. (2): the ``beta`` achieving load fraction ``p``.

    Valid for ``p`` in ``[1 - ln 2, 1/2]``; raises :class:`DomainError`
    outside (use :func:`decision_probabilities` for the full range).
    Memoized table-seeded inversion; :func:`beta_of_p_exact` is the
    bisection reference it is tested against.
    """
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(f"beta_of_p expects p <= 1/2 (mirror the sides first), got {p}")
    if p < P_STAR - 1e-12:
        raise DomainError(
            f"no positive beta exists for p={p} < 1 - ln2; use alpha_of_p instead"
        )
    if p >= 0.5:
        return 1.0
    return _beta_of_p_fast(max(p, P_STAR))


def alpha_of_p(p: float) -> float:
    """Invert Eq. (4): the ``alpha`` achieving load fraction ``p``.

    Valid for ``p`` in ``(0, 1 - ln 2]``; raises :class:`DomainError`
    outside.  Memoized table-seeded inversion; :func:`alpha_of_p_exact`
    is the bisection reference it is tested against.
    """
    check_probability(p, "p")
    if p > P_STAR + 1e-12:
        raise DomainError(f"alpha_of_p expects p <= 1 - ln2, got {p}; use beta_of_p")
    if p <= _P_FLOOR:
        raise DomainError(f"p={p} too close to 0 for a meaningful split")
    if p >= P_STAR:
        return 1.0
    return _alpha_of_p_fast(p)


# -- derivatives and sampling-error corrections ------------------------------


def alpha_second_derivative(p: float, *, h: float = 1e-4) -> float:
    """Numerical ``alpha''(p)`` on the alpha-regime branch (Fig. 3).

    The curvature grows rapidly as ``p -> 0``, which is exactly the
    observation of Fig. 3 motivating larger corrections (and larger
    residual error) for highly skewed splits.
    """
    if not _P_FLOOR < p <= P_STAR:
        raise DomainError(f"alpha''(p) is defined on (0, 1 - ln2], got {p}")
    step = min(h, max(p / 4.0, 1e-7), (P_STAR - _P_FLOOR) / 4.0)
    return second_derivative(alpha_of_p, p, h=step, lo=_P_FLOOR * 2, hi=P_STAR)


def beta_second_derivative(p: float, *, h: float = 1e-4) -> float:
    """Numerical ``beta''(p)`` on the beta-regime branch."""
    if not P_STAR <= p <= 0.5:
        raise DomainError(f"beta''(p) is defined on [1 - ln2, 1/2], got {p}")
    return second_derivative(beta_of_p, p, h=h, lo=P_STAR, hi=0.5)


def _bias_term(curvature: float, p: float, m: int) -> float:
    """Second-order Taylor bias ``1/2 f''(p) Var[p_hat]`` (Eqs. 9/10)."""
    if m <= 0:
        raise DomainError(f"sample size m must be positive, got {m}")
    return 0.5 * curvature * p * (1.0 - p) / m


def alpha_corrected(p: float, m: int) -> float:
    """Bias-corrected ``alpha`` of Eq. (9), clamped to ``[0, 1]``.

    ``m`` is the number of Bernoulli samples each peer uses to estimate
    ``p``; the correction removes the systematic shift that plain
    plug-in estimation introduces (Sec. 3.2, verified by the COR model).
    """
    if p >= P_STAR:
        return 1.0
    return clamp(alpha_of_p(p) - _bias_term(alpha_second_derivative(p), p, m), 0.0, 1.0)


def beta_corrected(p: float, m: int) -> float:
    """Bias-corrected ``beta`` of Eq. (10), clamped to ``[0, 1]``."""
    if p < P_STAR:
        return 0.0
    return clamp(beta_of_p(p) - _bias_term(beta_second_derivative(p), p, m), 0.0, 1.0)


# -- packaged policies --------------------------------------------------------


@dataclass(frozen=True)
class DecisionProbabilities:
    """The ``(alpha, beta)`` pair driving one AEP bisection.

    ``alpha`` is the balanced-split probability for two undecided peers;
    ``beta`` the probability of joining the minority side upon meeting a
    majority-decided peer.  ``p`` records the (estimated) minority load
    fraction the pair was derived from, for diagnostics.
    """

    alpha: float
    beta: float
    p: float


@lru_cache(maxsize=65536)
def _raw_pair(p: float) -> tuple[float, float]:
    """Uncorrected ``(alpha, beta)`` for a minority fraction in ``(0, 1/2]``.

    Memoized: the binomial expectation of
    :func:`corrected_probabilities_exact` evaluates the pair on the
    estimate lattice ``k/m``, which repeats across every interaction of a
    construction run.
    """
    p = min(max(p, _P_FLOOR * 10), 0.5)
    if p >= P_STAR:
        return 1.0, beta_of_p(p)
    return alpha_of_p(p), 0.0


def _binomial_pmf(m: int, k: int, q: float) -> float:
    """Numerically stable ``P[Binomial(m, q) = k]`` (log-gamma form)."""
    if q <= 0.0:
        return 1.0 if k == 0 else 0.0
    if q >= 1.0:
        return 1.0 if k == m else 0.0
    log_p = (
        math.lgamma(m + 1)
        - math.lgamma(k + 1)
        - math.lgamma(m - k + 1)
        + k * math.log(q)
        + (m - k) * math.log(1.0 - q)
    )
    return math.exp(log_p)


@lru_cache(maxsize=4096)
def _expected_raw_pair(q: float, m: int) -> tuple[float, float]:
    """Expected plug-in ``(alpha, beta)`` over ``p_hat ~ Binomial(m, q)/m``.

    Follows the estimate-processing pipeline of the simulators: the
    estimate is mapped to its minority side and floored at ``1/(4m)``.
    Only the ~±8 sigma window of the binomial contributes, and the pmf is
    advanced across the window by the multiplicative recurrence
    ``P[k+1] = P[k] (m-k)/(k+1) q/(1-q)`` from a single log-gamma anchor
    -- one transcendental call per expectation instead of five per term.
    """
    e_alpha = 0.0
    e_beta = 0.0
    sigma = math.sqrt(max(m * q * (1.0 - q), 1.0))
    k_lo = max(0, int(m * q - 8 * sigma))
    k_hi = min(m, int(m * q + 8 * sigma) + 1)
    total = 0.0
    weight = _binomial_pmf(m, k_lo, q)
    ratio = q / (1.0 - q)
    quarter = 1.0 / (4.0 * m)
    for k in range(k_lo, k_hi + 1):
        side = k / m
        if side < quarter:
            side = quarter
        elif side > 0.5:
            side = 0.5
        alpha, beta = _raw_pair(side)
        e_alpha += weight * alpha
        e_beta += weight * beta
        total += weight
        weight *= (m - k) / (k + 1.0) * ratio
    if total > 0.0:
        e_alpha /= total
        e_beta /= total
    return e_alpha, e_beta


def corrected_probabilities_exact(p: float, m: int) -> DecisionProbabilities:
    """Lattice-exact sampling-bias correction (the operational COR policy).

    Eqs. (9)/(10) remove the *second-order Taylor* bias, which is the
    right object for large ``m``; at the paper's operating point
    (``m = 10``, estimates on a lattice of width 0.1, and ``alpha''``
    spanning an order of magnitude) the Taylor term overshoots.  This
    variant cancels the bias exactly: it subtracts the full binomial
    expectation gap ``E[f(p_hat)] - f(p)`` evaluated at the peer's own
    estimate, which is what the Taylor term approximates.
    """
    if m < 1:
        raise DomainError(f"sample size m must be >= 1, got {m}")
    alpha_t, beta_t = _raw_pair(p)
    if m > 400:
        # The sampling bias scales as 1/m; beyond a few hundred samples
        # the correction is far below the process noise.
        return DecisionProbabilities(alpha=alpha_t, beta=beta_t, p=p)
    e_alpha, e_beta = _expected_raw_pair(round(p, 6), m)
    alpha = clamp(alpha_t - (e_alpha - alpha_t), 0.0, 1.0)
    beta = clamp(beta_t - (e_beta - beta_t), 0.0, 1.0)
    return DecisionProbabilities(alpha=alpha, beta=beta, p=p)


def decision_probabilities(p: float, *, m: int | None = None) -> DecisionProbabilities:
    """AEP probabilities for a minority load fraction ``p`` in ``(0, 1/2]``.

    With ``m`` given, applies the lattice-exact sampling-bias correction
    (see :func:`corrected_probabilities_exact`; Eqs. (9)/(10) are its
    large-``m`` Taylor approximation, exposed as
    :func:`alpha_corrected`/:func:`beta_corrected`); with ``m = None``
    returns the exact theoretical values.
    """
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(
            f"decision_probabilities expects the minority fraction (p <= 1/2), got {p}"
        )
    p = max(p, _P_FLOOR * 10)
    if m is not None:
        return corrected_probabilities_exact(p, m)
    alpha, beta = _raw_pair(p)
    return DecisionProbabilities(alpha=alpha, beta=beta, p=p)


def heuristic_probabilities(p: float) -> DecisionProbabilities:
    """The "no-theory" straw-man functions used in the Fig. 6(d) ablation.

    Linear ramps that qualitatively mimic the exact curves (``alpha``
    rising to 1, ``beta`` rising to 1 at ``p = 1/2``; both vanish as
    ``p -> 0``) but are quantitatively wrong away from ``p = 1/2``.  The
    paper shows -- and our reproduction confirms -- that even such a
    minor deviation from the theoretically derived functions degrades
    load balancing substantially.
    """
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(f"heuristic_probabilities expects p <= 1/2, got {p}")
    return DecisionProbabilities(alpha=min(1.0, 2.0 * p), beta=min(1.0, 2.0 * p), p=p)


# -- interaction-count predictions -------------------------------------------


def t_star(p: float) -> float:
    """Asymptotic interactions *per peer* for AEP at load fraction ``p``.

    Eq. (1) gives ``t*/N = ln 2`` throughout the beta-regime; Eq. (3)
    gives ``t*(alpha)/N = ln(2 alpha) / (2 alpha - 1)`` in the
    alpha-regime, diverging as ``p -> 0``.
    """
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(f"t_star expects the minority fraction p <= 1/2, got {p}")
    if p >= P_STAR:
        return math.log(2.0)
    alpha = alpha_of_p(p)
    two_a = 2.0 * alpha
    if abs(two_a - 1.0) < 1e-9:
        return 1.0  # removable singularity: lim ln(2a)/(2a-1) = 1 at alpha = 1/2
    return math.log(two_a) / (two_a - 1.0)


def t_star_interactions(p: float, n: int) -> float:
    """Expected total interactions for a population of ``n`` peers.

    Uses the exact discrete termination step for the beta-regime,
    ``t* = ln 2 / ln(n/(n-1))`` (Eq. 1), which converges to ``n ln 2``
    for large ``n``, and the analogous discrete form in the
    alpha-regime.
    """
    if n < 2:
        raise DomainError(f"need at least 2 peers, got {n}")
    check_probability(p, "p")
    if p > 0.5:
        raise DomainError(f"t_star_interactions expects p <= 1/2, got {p}")
    if p >= P_STAR:
        return math.log(2.0) / math.log(n / (n - 1.0))
    alpha = alpha_of_p(p)
    r = (1.0 - 2.0 * alpha) / n
    if abs(r) < 1e-15:
        # alpha = 1/2 exactly: U_i = n - i, so termination takes n steps
        # (the limit of ln(2a)/(2a-1) is 1).
        return float(n)
    # U_i = (n - n/(1-2a))(1+r)^i + n/(1-2a) = 0  =>  (1+r)^t = 1/(2a)
    return -math.log(2.0 * alpha) / math.log1p(r)

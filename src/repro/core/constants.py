"""Model constants shared across the partitioning algorithms."""

from __future__ import annotations

import math

#: Regime boundary ``p* = 1 - ln 2``: for load fractions ``p >= P_STAR``
#: adaptive eager partitioning runs with ``alpha = 1`` and adapts ``beta``;
#: below it, ``beta = 0`` and ``alpha`` is reduced (Sec. 3.1).
P_STAR: float = 1.0 - math.log(2.0)

#: Asymptotic interactions per peer for eager partitioning at ``p = 1/2``
#: (``t* / N -> ln 2``, Sec. 3).
EAGER_COST_PER_PEER: float = math.log(2.0)

#: Asymptotic interactions per peer for autonomous partitioning at
#: ``p = 1/2`` (``2 ln 2``, Sec. 3).
AUT_COST_PER_PEER: float = 2.0 * math.log(2.0)

#: Default replication factor used throughout the paper's evaluation.
DEFAULT_N_MIN: int = 5

#: Default number of data keys initially held by each peer (Secs. 4.4, 5.1).
DEFAULT_KEYS_PER_PEER: int = 10

#: Default storage-load bound as a multiple of ``n_min`` (figure captions:
#: ``d_max = 10 * n_min``).
DEFAULT_D_MAX_FACTOR: float = 10.0

"""Global reference partitioner -- Algorithm 1, ``Partition(p, n, d)``.

The paper defines the *optimal* partitioning as the output of a recursive,
globally-coordinated bisection: split a partition while it is overloaded
(``d > d_max``) and there are enough peers to populate both halves
(``n >= 2 n_min``); assign peers to the halves proportionally to their
data loads, but never fewer than ``n_min`` to either half (lines 6-10).

The decentralized construction (``repro.core.construction``) is evaluated
by its deviation from this reference (Sec. 4.4); see
``repro.core.deviation``.
"""

from __future__ import annotations

import bisect as _bisect
from dataclasses import dataclass, field
from typing import List, Sequence

from ..exceptions import PartitionError
from ..pgrid.bits import Path, ROOT
from ..pgrid.keyspace import KEY_BITS

__all__ = ["ReferenceLeaf", "ReferencePartition", "reference_partition"]


@dataclass(frozen=True)
class ReferenceLeaf:
    """One leaf of the reference partitioning.

    ``path``
        the trie path / key-space partition;
    ``n_peers``
        peers assigned by Algorithm 1 (fractional in the idealized real-
        valued recursion, integral if ``integer_peers`` was requested);
    ``n_keys``
        distinct data keys falling inside the partition.
    """

    path: Path
    n_peers: float
    n_keys: int


@dataclass
class ReferencePartition:
    """The complete output of Algorithm 1 over a key population."""

    leaves: List[ReferenceLeaf] = field(default_factory=list)
    d_max: float = 0.0
    n_min: int = 0

    @property
    def paths(self) -> List[Path]:
        """All leaf paths in key-space order."""
        return [leaf.path for leaf in self.leaves]

    @property
    def total_peers(self) -> float:
        """Sum of assigned peers (conserved by the recursion)."""
        return sum(leaf.n_peers for leaf in self.leaves)

    @property
    def total_keys(self) -> int:
        """Sum of keys over the leaves (equals the distinct key count)."""
        return sum(leaf.n_keys for leaf in self.leaves)

    @property
    def depth(self) -> int:
        """Maximum leaf depth (trie height)."""
        return max((leaf.path.length for leaf in self.leaves), default=0)

    def mean_replication(self) -> float:
        """Average number of peers per leaf -- the replication the overlay
        offers for a uniformly chosen partition."""
        if not self.leaves:
            return 0.0
        return self.total_peers / len(self.leaves)

    def leaf_for_key(self, key: int) -> ReferenceLeaf:
        """The leaf whose partition contains the integer ``key``."""
        for leaf in self.leaves:
            if leaf.path.contains_key(key, KEY_BITS):
                return leaf
        raise PartitionError(f"no leaf covers key {key}")


def reference_partition(
    keys: Sequence[int],
    n_peers: int,
    *,
    d_max: float,
    n_min: int,
    integer_peers: bool = False,
    max_depth: int = KEY_BITS,
) -> ReferencePartition:
    """Run Algorithm 1 on a population of integer keys.

    Parameters
    ----------
    keys:
        The distinct data keys (integers in ``[0, 2^KEY_BITS)``).
        Duplicates are tolerated and counted once, matching the paper's
        storage-load measure "number of keys present in the partition".
    n_peers:
        Total number of peers to distribute.
    d_max:
        Maximal storage load per partition (split while ``d > d_max``).
    n_min:
        Minimal replication factor (never assign fewer than ``n_min``
        peers to a partition created by a split).
    integer_peers:
        If true, peer counts are kept integral by largest-remainder
        rounding at every split; otherwise the idealized real-valued
        recursion of the paper's analysis is used.
    max_depth:
        Safety bound on recursion depth (defaults to the key precision).

    Returns
    -------
    ReferencePartition
        Leaves in key-space order; peer counts sum to ``n_peers``.
    """
    if n_peers < 1:
        raise PartitionError(f"need at least one peer, got {n_peers}")
    if n_min < 1:
        raise PartitionError(f"n_min must be >= 1, got {n_min}")
    if d_max <= 0:
        raise PartitionError(f"d_max must be positive, got {d_max}")

    sorted_keys = sorted(set(keys))
    result = ReferencePartition(leaves=[], d_max=d_max, n_min=n_min)

    def count_keys(lo: int, hi: int) -> int:
        """Distinct keys in the half-open integer range [lo, hi)."""
        return _bisect.bisect_left(sorted_keys, hi) - _bisect.bisect_left(sorted_keys, lo)

    def split_peers(n: float, d0: int, d1: int) -> tuple[float, float]:
        """Lines 2-11 of Algorithm 1: proportional assignment with an
        ``n_min`` floor for the lighter side."""
        d = d0 + d1
        n0 = n * d0 / d
        n1 = n - n0
        if n0 < n_min or n1 < n_min:
            if d0 <= d1:
                n0 = float(n_min)
                n1 = n - n0
            else:
                n1 = float(n_min)
                n0 = n - n1
        if integer_peers:
            n0_int = int(round(n0))
            n0_int = max(n_min, min(int(n) - n_min, n0_int))
            n0, n1 = float(n0_int), n - n0_int
        return n0, n1

    def recurse(path: Path, n: float, d: int) -> None:
        lo, hi = path.key_range(KEY_BITS)
        overloaded = d > d_max
        enough_peers = n >= 2 * n_min
        splittable = path.length < max_depth and hi - lo > 1
        if overloaded and enough_peers and splittable:
            mid = (lo + hi) // 2
            d0 = count_keys(lo, mid)
            d1 = d - d0
            if d0 > 0 and d1 > 0:
                n0, n1 = split_peers(n, d0, d1)
                recurse(path.extend(0), n0, d0)
                recurse(path.extend(1), n1, d1)
                return
            # All keys fall on one side: descend without splitting peers
            # (Algorithm 1 never assigns peers to zero-key partitions).
            # The empty side still becomes a (peer-less, key-less) leaf so
            # the leaves always tile the key space -- the deviation
            # metric's fractional attribution relies on that.
            if d0 > 0:
                result.leaves.append(
                    ReferenceLeaf(path=path.extend(1), n_peers=0.0, n_keys=0)
                )
                recurse(path.extend(0), n, d0)
            else:
                result.leaves.append(
                    ReferenceLeaf(path=path.extend(0), n_peers=0.0, n_keys=0)
                )
                recurse(path.extend(1), n, d1)
            return
        result.leaves.append(ReferenceLeaf(path=path, n_peers=n, n_keys=d))

    total = len(sorted_keys)
    recurse(ROOT, float(n_peers), total)
    result.leaves.sort(key=lambda leaf: leaf.path)
    return result

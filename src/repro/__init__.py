"""repro -- reproduction of *Indexing Data-oriented Overlay Networks*
(Aberer, Datta, Hauswirth, Schmidt; VLDB 2005).

The package implements, from scratch:

* the paper's contribution -- decentralized, parallel, load-balanced
  construction of trie-structured (P-Grid) overlay networks
  (:mod:`repro.core`);
* the P-Grid overlay substrate with prefix routing, exact and range
  queries, replication and sequential maintenance (:mod:`repro.pgrid`);
* a discrete-event message-level network simulator standing in for the
  paper's PlanetLab deployment (:mod:`repro.simnet`);
* the evaluation workloads, baselines and per-figure experiment
  harnesses (:mod:`repro.workloads`, :mod:`repro.baselines`,
  :mod:`repro.experiments`);
* a declarative scenario engine for churn/skew stress experiments
  (:mod:`repro.scenarios`).

Quickstart::

    from repro import build_overlay, uniform_keys
    net = build_overlay(uniform_keys(peers=64, keys_per_peer=10, seed=7))
    hits = net.range_query(0.25, 0.5)

Stress scenarios::

    from repro import ScenarioRunner, scenario
    report = ScenarioRunner(scenario("paper-sec51-churn", n_peers=256)).run()
"""

from __future__ import annotations

from .core.aut import aut_cost_per_peer, aut_interactions
from .core.bisection import BisectionOutcome, simulate_aep, simulate_aut
from .core.construction import (
    ConstructionConfig,
    ConstructionResult,
    construct_overlay,
)
from .core.deviation import load_balance_deviation
from .core.mva import run_mva, run_sam
from .core.probabilities import (
    P_STAR,
    alpha_corrected,
    alpha_of_p,
    beta_corrected,
    beta_of_p,
    decision_probabilities,
    t_star,
    t_star_interactions,
)
from .core.reference import ReferencePartition, reference_partition
from .pgrid.bits import Path
from .pgrid.network import PGridNetwork, build_overlay
from .scenarios import ScenarioRunner, ScenarioSpec, scenario
from .workloads.datasets import uniform_keys, workload_keys

__version__ = "1.0.0"

__all__ = [
    "P_STAR",
    "alpha_of_p",
    "beta_of_p",
    "alpha_corrected",
    "beta_corrected",
    "decision_probabilities",
    "t_star",
    "t_star_interactions",
    "run_mva",
    "run_sam",
    "simulate_aep",
    "simulate_aut",
    "BisectionOutcome",
    "aut_interactions",
    "aut_cost_per_peer",
    "reference_partition",
    "ReferencePartition",
    "load_balance_deviation",
    "ConstructionConfig",
    "ConstructionResult",
    "construct_overlay",
    "Path",
    "PGridNetwork",
    "build_overlay",
    "ScenarioSpec",
    "ScenarioRunner",
    "scenario",
    "uniform_keys",
    "workload_keys",
    "__version__",
]

"""Key distributions over the unit interval (Sec. 4.4).

Each distribution produces floats in ``[0, 1)`` that are mapped onto the
integer key space by :func:`repro.pgrid.keyspace.float_to_key`.  The
registry :data:`DISTRIBUTIONS` uses the paper's figure labels::

    U      uniform
    P0.5   truncated Pareto, shape 0.5   (extreme skew)
    P1.0   truncated Pareto, shape 1.0
    P1.5   truncated Pareto, shape 1.5
    N      truncated Normal(1/2, 0.05)   (sharp central spike)
    A      synthetic Alvis-like text keys (Zipf vocabulary)

The Pareto scale parameter is not legible in the available copy of the
paper; we use ``x_m = 1e-3``, which concentrates ~``1 - x_m^k`` of the
mass in the lowest decades of the key space -- the "very skewed" regime
the paper discusses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import float_to_key

__all__ = [
    "KeyDistribution",
    "UniformDistribution",
    "ParetoDistribution",
    "NormalDistribution",
    "TextKeyDistribution",
    "SlicedDistribution",
    "DISTRIBUTIONS",
    "distribution",
]


class KeyDistribution:
    """Base class: a named sampler of floats in ``[0, 1)``."""

    name: str = "base"

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        """Draw ``n`` values in ``[0, 1)``."""
        raise NotImplementedError

    def sample_keys(self, n: int, rng: RngLike = None) -> List[int]:
        """Draw ``n`` integer keys."""
        return [float_to_key(x) for x in self.sample_floats(n, rng)]

    def sample_points(
        self, n: int, d: int, rng: RngLike = None
    ) -> List[tuple]:
        """Draw ``n`` points of ``d`` attributes each, every attribute
        i.i.d. from this distribution.

        The scalar fast path (``d == 1``) consumes exactly the draws of
        :meth:`sample_floats`, so one-dimensional workloads replay the
        same RNG sequence whether they sample floats or points.  Sliced
        distributions compose: every attribute of every point is mapped
        into the slice.
        """
        if d < 1:
            raise DomainError(f"need at least one dimension, got {d}")
        if d == 1:
            return [(x,) for x in self.sample_floats(n, rng)]
        flat = self.sample_floats(n * d, rng)
        return [tuple(flat[i * d : (i + 1) * d]) for i in range(n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class UniformDistribution(KeyDistribution):
    """The unskewed baseline ``U``."""

    name: str = "U"

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        rand = make_rng(rng)
        return [rand.random() for _ in range(n)]


@dataclass
class ParetoDistribution(KeyDistribution):
    """Pareto(shape ``k``, scale ``x_m``) truncated to ``[x_m, 1)``.

    Sampled by inverse-CDF of the truncated law, so all mass genuinely
    lies in the unit interval (no clipping spike at 1.0).  Smaller shapes
    are *more* skewed toward the lower end of the key space.
    """

    shape: float = 1.0
    scale: float = 1e-3
    name: str = "P"

    def __post_init__(self):
        if self.shape <= 0:
            raise DomainError(f"Pareto shape must be positive, got {self.shape}")
        if not 0 < self.scale < 1:
            raise DomainError(f"Pareto scale must lie in (0, 1), got {self.scale}")
        self.name = f"P{self.shape:g}"

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        rand = make_rng(rng)
        k, xm = self.shape, self.scale
        # Truncated-at-1 Pareto: F(x) = (1 - (xm/x)^k) / (1 - xm^k)
        z = 1.0 - xm**k
        out = []
        for _ in range(n):
            u = rand.random() * z
            x = xm / (1.0 - u) ** (1.0 / k)
            out.append(min(x, math.nextafter(1.0, 0.0)))
        return out


@dataclass
class NormalDistribution(KeyDistribution):
    """Normal(``mu``, ``sigma``) truncated to ``[0, 1)`` by resampling.

    The paper's ``N`` uses mean 1/2 with a small standard deviation,
    concentrating nearly all keys in a narrow central band -- an extreme
    storage-balancing stress for order-preserving overlays.
    """

    mu: float = 0.5
    sigma: float = 0.05
    name: str = "N"

    def __post_init__(self):
        if self.sigma <= 0:
            raise DomainError(f"sigma must be positive, got {self.sigma}")

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        rand = make_rng(rng)
        out = []
        while len(out) < n:
            x = rand.gauss(self.mu, self.sigma)
            if 0.0 <= x < 1.0:
                out.append(x)
        return out


@dataclass
class TextKeyDistribution(KeyDistribution):
    """Keys from the synthetic Alvis-like corpus (label ``A``).

    Terms are drawn with Zipf frequencies from a generated vocabulary and
    mapped through the order-preserving string encoder, yielding the
    clustered, multi-modal skew characteristic of inverted-file term
    keys.
    """

    vocabulary_size: int = 2000
    zipf_exponent: float = 1.0
    name: str = "A"

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        from ..pgrid.keyspace import MAX_KEY

        return [k / MAX_KEY for k in self.sample_keys(n, rng)]

    def sample_keys(self, n: int, rng: RngLike = None) -> List[int]:
        from .corpus import SyntheticCorpus

        rand = make_rng(rng)
        corpus = SyntheticCorpus(
            vocabulary_size=self.vocabulary_size,
            zipf_exponent=self.zipf_exponent,
            rng=rand,
        )
        return [corpus.sample_term_key(rand) for _ in range(n)]


@dataclass
class SlicedDistribution(KeyDistribution):
    """A base distribution affinely mapped into one keyspace slice.

    Label form ``"<base>@<index>/<count>"`` (e.g. ``"P1.0@2/8"``): every
    sample of the base law is compressed into
    ``[index/count, (index+1)/count)``, preserving its shape within the
    slice.  This is how worker-mode sharding
    (:func:`repro.scenarios.message_runner.slice_spec`) confines one
    worker's key workload to its shard's keyspace region without
    changing the :class:`~repro.scenarios.spec.ScenarioSpec` schema.
    """

    base: KeyDistribution = None
    index: int = 0
    count: int = 1
    name: str = "sliced"

    def __post_init__(self):
        if self.count < 1 or not 0 <= self.index < self.count:
            raise DomainError(
                f"slice {self.index}/{self.count} is not a valid keyspace slice"
            )
        self.name = f"{self.base.name}@{self.index}/{self.count}"

    def sample_floats(self, n: int, rng: RngLike = None) -> List[float]:
        lo = self.index / self.count
        width = 1.0 / self.count
        return [lo + x * width for x in self.base.sample_floats(n, rng)]


#: Registry keyed by the paper's figure labels.
DISTRIBUTIONS: Dict[str, KeyDistribution] = {
    "U": UniformDistribution(),
    "P0.5": ParetoDistribution(shape=0.5),
    "P1.0": ParetoDistribution(shape=1.0),
    "P1.5": ParetoDistribution(shape=1.5),
    "N": NormalDistribution(),
    "A": TextKeyDistribution(),
}


def distribution(label: str) -> KeyDistribution:
    """Look up a distribution by its figure label (e.g. ``"P1.0"``).

    A ``"<base>@<index>/<count>"`` suffix wraps the base distribution in
    a :class:`SlicedDistribution` confined to that keyspace slice.
    """
    base_label, _, slice_part = label.partition("@")
    try:
        base = DISTRIBUTIONS[base_label]
    except KeyError:
        raise DomainError(
            f"unknown distribution {label!r}; known: {sorted(DISTRIBUTIONS)}"
        ) from None
    if not slice_part:
        return base
    try:
        index_s, count_s = slice_part.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise DomainError(
            f"malformed slice suffix in {label!r}; expected "
            f"'<base>@<index>/<count>'"
        ) from None
    return SlicedDistribution(base=base, index=index, count=count)

"""Per-peer key assignments for the experiments (Secs. 4.4, 5.1).

The paper's setup assigns each peer a small number of keys (10 by
default) drawn from one of the evaluation distributions.  These helpers
produce exactly those assignments as lists-of-lists of integer keys.
"""

from __future__ import annotations

from typing import List, Optional

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import KeyCodec
from .distributions import distribution

__all__ = ["workload_keys", "uniform_keys", "flatten"]


def workload_keys(
    label: str,
    peers: int,
    keys_per_peer: int = 10,
    *,
    seed: RngLike = None,
    codec: Optional[KeyCodec] = None,
) -> List[List[int]]:
    """Per-peer integer keys from the distribution with figure label
    ``label`` (``"U"``, ``"P0.5"``, ``"P1.0"``, ``"P1.5"``, ``"N"``,
    ``"A"``).

    With a multi-dimensional ``codec``, each key encodes a point of
    ``codec.dims`` attributes drawn i.i.d. from the distribution;
    without one (or with a scalar codec) the classic one-dimensional
    sampling is used, draw for draw.
    """
    if peers < 1:
        raise DomainError(f"need at least one peer, got {peers}")
    if keys_per_peer < 1:
        raise DomainError(f"need at least one key per peer, got {keys_per_peer}")
    rand = make_rng(seed)
    dist = distribution(label)
    n = peers * keys_per_peer
    if codec is not None and codec.dims > 1:
        flat = [codec.encode(p) for p in dist.sample_points(n, codec.dims, rand)]
    else:
        flat = dist.sample_keys(n, rand)
    return [
        flat[i * keys_per_peer : (i + 1) * keys_per_peer] for i in range(peers)
    ]


def uniform_keys(
    peers: int, keys_per_peer: int = 10, *, seed: RngLike = None
) -> List[List[int]]:
    """Shorthand for the uniform workload."""
    return workload_keys("U", peers, keys_per_peer, seed=seed)


def flatten(peer_keys: List[List[int]]) -> List[int]:
    """All keys of an assignment as one list (with duplicates)."""
    return [key for keys in peer_keys for key in keys]

"""Query workload generation: point/range mixes and flash-crowd hotspots.

The paper's evaluation issues exact-match queries for the peers' own
keys (Sec. 5.1) and argues range queries as the workload that motivates
order-preserving overlays (Secs. 2.3, 6).  :class:`QuerySampler`
generalizes both into a declarative *query mix*: a weighted blend of
point lookups and fixed-span range scans, optionally concentrated on a
*hotspot* sub-interval of the key space (the flash-crowd pattern where a
small key region suddenly receives most of the traffic).

The sampler is deliberately independent of the scenario layer that
configures it (:mod:`repro.scenarios.spec`): it takes primitive weights
and returns integer keys, so it can drive any query front-end --
:class:`~repro.pgrid.network.PGridNetwork` lookups, the simnet protocol
nodes, or a future service API.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import MAX_KEY, KeyCodec, float_to_key

__all__ = ["QuerySampler", "POINT", "RANGE"]

#: Query-kind tags returned by :meth:`QuerySampler.draw_kind`.
POINT = "point"
RANGE = "range"


class QuerySampler:
    """Draws query targets for a weighted point/range mix.

    Parameters
    ----------
    point_weight / range_weight:
        Relative frequencies of exact-match lookups and range scans
        (need not sum to one; both zero is invalid).
    range_span:
        Width of every range scan as a fraction of the key space.
    hotspot:
        Optional ``(lo, hi, weight)`` with ``0 <= lo < hi <= 1``:
        with probability ``weight`` a query targets the hot interval
        instead of the whole key space.
    universe / zipf_keys / zipf_exponent:
        When ``zipf_keys > 0`` and a (sorted) ``universe`` of workload
        keys is supplied, point draws switch from fresh uniform keys to
        a Zipf-ranked *popular set*: ``zipf_keys`` evenly spaced keys
        from the universe (restricted to the hotspot interval when one
        is configured), rank *i* drawn with weight ``1/(i+1)**s``.
        This is the repeat-heavy access pattern the serving-layer
        result caches exist for; fresh 53-bit uniform draws essentially
        never repeat, so without it a result cache can never hit.
        With a hotspot, its ``weight`` still splits traffic between the
        (Zipf) head and the uniform background tail.
    codec / box_spans:
        A multi-dimensional :class:`~repro.pgrid.keyspace.KeyCodec`
        switches point draws to d-attribute points (one hotspot coin
        per query, then every attribute confined to the hot interval --
        the *correlated-attribute* hotspot) and range draws to
        d-dimensional boxes (:meth:`draw_box`).  ``box_spans`` gives
        each dimension its own side length (skewed per-dimension
        selectivity); without it every side is ``range_span``.  A
        scalar codec (or none) leaves every draw byte-identical to the
        classic one-dimensional sampler.
    """

    __slots__ = (
        "point_weight",
        "range_weight",
        "range_span",
        "hotspot",
        "codec",
        "box_spans",
        "_popular",
        "_zipf_cum",
    )

    def __init__(
        self,
        *,
        point_weight: float = 1.0,
        range_weight: float = 0.0,
        range_span: float = 0.02,
        hotspot: Optional[Tuple[float, float, float]] = None,
        universe: Optional[Sequence[int]] = None,
        zipf_keys: int = 0,
        zipf_exponent: float = 0.9,
        codec: Optional[KeyCodec] = None,
        box_spans: Optional[Tuple[float, ...]] = None,
    ):
        if point_weight < 0 or range_weight < 0:
            raise DomainError("query-mix weights must be non-negative")
        if point_weight + range_weight <= 0:
            raise DomainError("query mix needs a positive total weight")
        if not 0 < range_span <= 1:
            raise DomainError(f"range span must lie in (0, 1], got {range_span}")
        if hotspot is not None:
            lo, hi, weight = hotspot
            if not 0.0 <= lo < hi <= 1.0:
                raise DomainError(f"hotspot interval [{lo}, {hi}) is invalid")
            if not 0.0 <= weight <= 1.0:
                raise DomainError(f"hotspot weight must lie in [0, 1], got {weight}")
        if zipf_keys < 0:
            raise DomainError(f"zipf_keys must be >= 0, got {zipf_keys}")
        if zipf_exponent <= 0:
            raise DomainError(
                f"zipf exponent must be positive, got {zipf_exponent}"
            )
        self.codec = codec if codec is not None and codec.dims > 1 else None
        if box_spans is not None:
            if self.codec is None:
                raise DomainError("box_spans requires a multi-dimensional codec")
            if len(box_spans) != self.codec.dims:
                raise DomainError(
                    f"box_spans needs {self.codec.dims} entries, "
                    f"got {len(box_spans)}"
                )
            for s in box_spans:
                if not 0 < s <= 1:
                    raise DomainError(f"box span must lie in (0, 1], got {s}")
        self.box_spans = tuple(box_spans) if box_spans is not None else None
        self.point_weight = float(point_weight)
        self.range_weight = float(range_weight)
        self.range_span = float(range_span)
        self.hotspot = hotspot
        self._popular = self._popular_set(universe, zipf_keys)
        self._zipf_cum = self._cum_weights(len(self._popular), zipf_exponent)

    # -- Zipf popular set --------------------------------------------------

    def _popular_set(
        self, universe: Optional[Sequence[int]], zipf_keys: int
    ) -> List[int]:
        if zipf_keys <= 0 or not universe:
            return []
        candidates: Sequence[int] = universe
        if self.hotspot is not None:
            lo, hi, _ = self.hotspot
            lo_k = float_to_key(lo)
            hi_k = float_to_key(min(hi, _BELOW_ONE))
            start = bisect_left(universe, lo_k)
            stop = bisect_left(universe, hi_k)
            if stop > start:
                candidates = universe[start:stop]
        n = len(candidates)
        if n <= zipf_keys:
            return list(candidates)
        # Evenly spaced picks keep the popular set spread over the
        # candidate interval (many owners) instead of one trie leaf.
        step = n / zipf_keys
        return [candidates[int(i * step)] for i in range(zipf_keys)]

    @staticmethod
    def _cum_weights(n: int, exponent: float) -> List[float]:
        cum: List[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / (rank + 1.0) ** exponent
            cum.append(total)
        return [c / total for c in cum] if total > 0 else []

    def _draw_popular(self, rand) -> int:
        u = rand.random()
        lo, hi = 0, len(self._zipf_cum) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._zipf_cum[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self._popular[lo]

    # -- drawing -----------------------------------------------------------

    def draw_kind(self, rng: RngLike = None) -> str:
        """``POINT`` or ``RANGE``, per the configured weights."""
        rand = make_rng(rng)
        total = self.point_weight + self.range_weight
        return POINT if rand.random() * total < self.point_weight else RANGE

    def _target_float(self, rand) -> float:
        if self.hotspot is not None:
            lo, hi, weight = self.hotspot
            if rand.random() < weight:
                return lo + rand.random() * (hi - lo)
        return rand.random()

    def _target_point(self, rand) -> Tuple[float, ...]:
        """A d-attribute point; one hotspot coin confines *all*
        attributes to the hot interval (correlated-attribute hotspot)."""
        d = self.codec.dims
        if self.hotspot is not None:
            lo, hi, weight = self.hotspot
            if rand.random() < weight:
                return tuple(
                    min(lo + rand.random() * (hi - lo), _BELOW_ONE)
                    for _ in range(d)
                )
        return tuple(rand.random() for _ in range(d))

    def draw_point_key(self, rng: RngLike = None) -> int:
        """An integer key for one exact-match lookup."""
        rand = make_rng(rng)
        if self._popular:
            if self.hotspot is not None:
                _, _, weight = self.hotspot
                if rand.random() < weight:
                    return self._draw_popular(rand)
                if self.codec is not None:
                    return self.codec.encode(
                        tuple(rand.random() for _ in range(self.codec.dims))
                    )
                return float_to_key(min(rand.random(), _BELOW_ONE))
            return self._draw_popular(rand)
        if self.codec is not None:
            return self.codec.encode(self._target_point(rand))
        return float_to_key(min(self._target_float(rand), _BELOW_ONE))

    def draw_range(self, rng: RngLike = None) -> Tuple[int, int]:
        """A half-open integer key range of width ``range_span``."""
        rand = make_rng(rng)
        lo_f = min(self._target_float(rand), 1.0 - self.range_span)
        lo = float_to_key(max(lo_f, 0.0))
        hi = min(lo + max(int(self.range_span * MAX_KEY), 1), MAX_KEY)
        return lo, hi

    def draw_box(
        self, rng: RngLike = None
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Inclusive per-dimension cell bounds of one box query.

        The box is anchored at a point draw (hotspot-aware, so hot
        boxes are correlated across attributes) with per-dimension side
        lengths from ``box_spans`` (default: ``range_span`` on every
        side).  Requires a multi-dimensional codec.
        """
        if self.codec is None:
            raise DomainError("draw_box requires a multi-dimensional codec")
        rand = make_rng(rng)
        spans = self.box_spans or (self.range_span,) * self.codec.dims
        anchor = self._target_point(rand)
        lows, highs = [], []
        for x, span in zip(anchor, spans):
            lo = max(min(x, 1.0 - span), 0.0)
            lows.append(lo)
            highs.append(min(lo + span, 1.0))
        return self.codec.box_cells(lows, highs)


#: Largest float strictly below 1.0 accepted by :func:`float_to_key`.
_BELOW_ONE = 1.0 - 2.0**-53

"""Evaluation workloads: key distributions and the synthetic text corpus.

The paper evaluates on six key distributions (Sec. 4.4): Uniform ``U``,
Pareto with shapes 0.5/1.0/1.5 (``P0.5``/``P1.0``/``P1.5``), a sharply
concentrated Normal ``N``, and keys extracted from the Alvis text
collection ``A``.  Alvis is proprietary; :mod:`repro.workloads.corpus`
substitutes a synthetic Zipf-vocabulary corpus whose induced key skew
exercises the same code paths (see DESIGN.md).
"""

from . import corpus, datasets, distributions, queries  # noqa: F401
from .datasets import uniform_keys, workload_keys  # noqa: F401
from .distributions import DISTRIBUTIONS, KeyDistribution  # noqa: F401
from .queries import QuerySampler  # noqa: F401

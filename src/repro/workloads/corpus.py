"""Synthetic text corpus standing in for the Alvis collection (Sec. 5.1).

The paper indexes keyword keys extracted from a proprietary information-
retrieval corpus (project Alvis).  We reproduce its statistically relevant
properties instead of its content:

* a vocabulary whose term frequencies follow Zipf's law,
* word shapes with realistic length distribution and letter bias, so the
  order-preserving key encoding produces the clustered key-space skew an
  inverted file over natural language exhibits,
* documents as bags of words, with a keyword-extraction step (stopword
  and frequency filtering) mirroring the paper's "text extraction
  function" whose replacement forces re-indexing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from ..pgrid.keyspace import string_to_key

__all__ = ["SyntheticCorpus", "Document", "extract_keywords"]

#: Letter frequencies loosely following English, so generated words cluster
#: in the key space like natural terms do (e.g. many words starting with
#: 's', 't', 'c' -- visible skew under order-preserving encoding).
_LETTERS = "etaoinshrdlcumwfgypbvkjxqz"
_LETTER_WEIGHTS = [
    12.7, 9.1, 8.2, 7.5, 7.0, 6.7, 6.3, 6.1, 6.0, 4.3, 4.0, 2.8, 2.8, 2.4,
    2.4, 2.2, 2.0, 2.0, 1.9, 1.5, 1.0, 0.8, 0.2, 0.2, 0.1, 0.1,
]


@dataclass
class Document:
    """A document: an id and its term sequence."""

    doc_id: int
    terms: List[str]

    def term_set(self) -> Set[str]:
        """Distinct terms."""
        return set(self.terms)


@dataclass
class SyntheticCorpus:
    """Generator for an Alvis-like document collection.

    The vocabulary is fixed at construction (deterministically from the
    RNG), term draws follow ``rank^-zipf_exponent``, and helper methods
    expose exactly what the experiments need: per-peer key sets for
    overlay construction and keyword postings for the IR example.
    """

    vocabulary_size: int = 2000
    zipf_exponent: float = 1.0
    min_word_length: int = 3
    max_word_length: int = 10
    rng: RngLike = None
    vocabulary: List[str] = field(init=False)

    def __post_init__(self):
        if self.vocabulary_size < 10:
            raise DomainError("vocabulary_size must be at least 10")
        if not self.min_word_length <= self.max_word_length:
            raise DomainError("min_word_length must not exceed max_word_length")
        rand = make_rng(self.rng)
        words: Set[str] = set()
        while len(words) < self.vocabulary_size:
            length = rand.randint(self.min_word_length, self.max_word_length)
            word = "".join(
                rand.choices(_LETTERS, weights=_LETTER_WEIGHTS, k=length)
            )
            words.add(word)
        self.vocabulary = sorted(words)
        rand.shuffle(self.vocabulary)  # rank != alphabetical order
        self._weights = [
            1.0 / (rank + 1) ** self.zipf_exponent
            for rank in range(self.vocabulary_size)
        ]

    # -- sampling ---------------------------------------------------------

    def sample_term(self, rng: RngLike = None) -> str:
        """Draw one term with Zipf probability."""
        rand = make_rng(rng)
        return rand.choices(self.vocabulary, weights=self._weights, k=1)[0]

    def sample_term_key(self, rng: RngLike = None) -> int:
        """Draw one term and return its order-preserving integer key."""
        return string_to_key(self.sample_term(rng))

    def generate_documents(
        self, n_docs: int, terms_per_doc: int = 50, rng: RngLike = None
    ) -> List[Document]:
        """Generate ``n_docs`` bag-of-words documents."""
        rand = make_rng(rng)
        docs = []
        for doc_id in range(n_docs):
            terms = rand.choices(self.vocabulary, weights=self._weights, k=terms_per_doc)
            docs.append(Document(doc_id=doc_id, terms=terms))
        return docs

    def postings(self, documents: Sequence[Document]) -> Dict[str, Set[int]]:
        """Inverted file: term -> set of doc ids containing it."""
        index: Dict[str, Set[int]] = {}
        for doc in documents:
            for term in doc.term_set():
                index.setdefault(term, set()).add(doc.doc_id)
        return index


def extract_keywords(
    document: Document,
    *,
    max_keywords: int = 10,
    stopword_rank_fraction: float = 0.01,
    corpus: SyntheticCorpus | None = None,
) -> List[str]:
    """A simple "text extraction function" (Sec. 1's re-indexing trigger).

    Filters the document's most frequent terms, dropping corpus-global
    stopwords (the top ``stopword_rank_fraction`` of the vocabulary by
    Zipf rank when a corpus is supplied).  Swapping this function for a
    different one changes the key set and therefore forces overlay
    re-construction -- the scenario motivating the paper.
    """
    if max_keywords < 1:
        raise DomainError("max_keywords must be >= 1")
    stop: Set[str] = set()
    if corpus is not None:
        n_stop = max(1, int(len(corpus.vocabulary) * stopword_rank_fraction))
        stop = set(corpus.vocabulary[:n_stop])
    counts: Dict[str, int] = {}
    for term in document.terms:
        if term not in stop:
            counts[term] = counts.get(term, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [term for term, _ in ranked[:max_keywords]]

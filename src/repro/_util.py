"""Internal helpers shared across the package.

Seeded random-number handling and environment-variable based scaling of
experiment sizes live here so that every experiment is reproducible and
cheap by default, yet can be scaled back up to paper-size runs.
"""

from __future__ import annotations

import os
import random
from typing import Optional, Union

RngLike = Union[random.Random, int, None]


def make_rng(rng: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG or ``None``.

    Passing an existing ``random.Random`` returns it unchanged, so nested
    components can share one stream.  An ``int`` seeds a fresh generator and
    ``None`` draws the seed from :func:`env_seed` (default 20050830, the
    VLDB'05 conference date) for deterministic-by-default experiments.
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random(env_seed())
    return random.Random(rng)


def env_seed() -> int:
    """Global experiment seed, overridable through ``REPRO_SEED``."""
    return int(os.environ.get("REPRO_SEED", "20050830"))


def env_reps(default: int) -> int:
    """Number of experiment repetitions, overridable through ``REPRO_REPS``."""
    value = os.environ.get("REPRO_REPS")
    if value is None:
        return default
    return max(1, int(value))


def env_scale(default: float = 1.0) -> float:
    """Population-size multiplier, overridable through ``REPRO_SCALE``."""
    value = os.environ.get("REPRO_SCALE")
    if value is None:
        return default
    return float(value)


def scaled(n: int, minimum: int = 1) -> int:
    """Scale an experiment size ``n`` by the ``REPRO_SCALE`` multiplier."""
    return max(minimum, int(round(n * env_scale())))


def sample_online(items, is_online, rand, probes: int = 8):
    """A uniformly random member of ``items`` satisfying ``is_online``.

    Rejection-samples an indexable sequence (uniform among online
    members by construction) instead of materializing the online list
    per call; falls back to the full filtered scan when the random
    probes keep missing (heavy churn).  Returns ``None`` when nothing
    is online.  Shared by :meth:`PGridNetwork.random_online_peer` and
    the message scenario backend's origin selection -- the draw
    sequence (``probes`` uniforms, then one ``randrange`` on the
    fallback) is part of the golden-trace determinism contract.
    """
    if not items:
        return None
    n = len(items)
    for _ in range(probes):
        # min() guards the half-ulp case where random()*n rounds up to
        # exactly n (possible for n not a power of two).
        item = items[min(int(rand.random() * n), n - 1)]
        if is_online(item):
            return item
    online = [item for item in items if is_online(item)]
    if not online:
        return None
    return online[rand.randrange(len(online))]


def ensure_monotonic(times, what: str = "phases") -> None:
    """Validate that ``times`` is non-decreasing (a sane phase timeline).

    Shared by :class:`repro.simnet.experiment.ExperimentConfig` and
    :class:`repro.scenarios.spec.ScenarioSpec`; raises
    :class:`~repro.exceptions.SimulationError` on the first inversion.
    """
    from .exceptions import SimulationError

    times = list(times)
    if any(b < a for a, b in zip(times, times[1:])):
        raise SimulationError(f"{what} out of order: {times}")


def check_probability(value: float, name: str = "p") -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    from .exceptions import DomainError

    if not 0.0 <= value <= 1.0:
        raise DomainError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    from .exceptions import DomainError

    if value <= 0:
        raise DomainError(f"{name} must be positive, got {value!r}")
    return value


def weighted_mean(values, weights) -> float:
    """Weighted arithmetic mean of ``values`` (plain Python, no numpy)."""
    total_weight = float(sum(weights))
    if total_weight == 0.0:
        raise ZeroDivisionError("weights sum to zero")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def mean(values) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    return sum(values) / len(values)


def std(values) -> float:
    """Population standard deviation of a sequence (0.0 for len < 2)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5

"""Numerical analysis support: root finding, derivatives, error models.

``repro.analysis.error`` (the Sec. 3.2 error propagation) is imported on
demand rather than here: it depends on ``repro.core.probabilities``,
which itself uses ``repro.analysis.numerics``, and an eager import would
close that cycle.
"""

from . import numerics  # noqa: F401

"""Small numerical toolbox: root bracketing, bisection and derivatives.

The paper determines the decision probabilities ``alpha(p)`` and
``beta(p)`` by inverting transcendental relations (Eqs. 2 and 4) and
computes their derivatives "using numerical differentiation".  This module
provides exactly those primitives, self-contained so the core library does
not depend on scipy (scipy remains available for tests to cross-check).
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import ConvergenceError

#: Default absolute tolerance for root finding.
ROOT_TOL = 1e-12

#: Default maximum number of bisection iterations (2^-200 << ROOT_TOL).
MAX_ITER = 200


def bisect(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = ROOT_TOL,
    max_iter: int = MAX_ITER,
) -> float:
    """Find a root of ``func`` on ``[lo, hi]`` by bisection.

    ``func(lo)`` and ``func(hi)`` must have opposite (or zero) signs.  The
    method is guaranteed to converge for continuous functions, which is all
    we need: both ``p(alpha)`` and ``p(beta)`` are continuous and strictly
    monotone on their domains.

    Raises
    ------
    ConvergenceError
        If the root is not bracketed or ``max_iter`` is exhausted before
        the bracket shrinks below ``tol``.
    """
    f_lo = func(lo)
    f_hi = func(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if f_lo * f_hi > 0.0:
        raise ConvergenceError(
            f"root not bracketed on [{lo}, {hi}]: f(lo)={f_lo:.3g}, f(hi)={f_hi:.3g}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = func(mid)
        if f_mid == 0.0 or (hi - lo) < tol:
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    raise ConvergenceError(f"bisection did not converge within {max_iter} iterations")


def derivative(
    func: Callable[[float], float],
    x: float,
    *,
    h: float = 1e-5,
    lo: float = float("-inf"),
    hi: float = float("inf"),
) -> float:
    """First derivative by central differences, clamped to ``[lo, hi]``.

    When ``x`` is within ``h`` of a domain boundary the stencil degrades
    gracefully to a one-sided difference, which keeps the piecewise
    definitions of ``alpha``/``beta`` differentiable-by-branch near the
    regime boundary ``p* = 1 - ln 2``.
    """
    x_plus = min(x + h, hi)
    x_minus = max(x - h, lo)
    if x_plus == x_minus:
        raise ValueError("degenerate stencil: domain narrower than step size")
    return (func(x_plus) - func(x_minus)) / (x_plus - x_minus)


def second_derivative(
    func: Callable[[float], float],
    x: float,
    *,
    h: float = 1e-4,
    lo: float = float("-inf"),
    hi: float = float("inf"),
) -> float:
    """Second derivative by central differences, domain-clamped.

    Near a boundary the three evaluation points are shifted inside the
    domain (keeping equal spacing), which turns the central stencil into a
    one-sided second-difference stencil of the same order of magnitude of
    accuracy -- sufficient for the bias-correction terms of Eqs. (9)/(10),
    which are themselves first-order corrections.
    """
    left = x - h
    right = x + h
    if left < lo:
        shift = lo - left
        left += shift
        right += shift
        x = x + shift
    if right > hi:
        shift = right - hi
        left -= shift
        right -= shift
        x = x - shift
    if left < lo:
        raise ValueError("domain narrower than the 2h stencil")
    return (func(right) - 2.0 * func(x) + func(left)) / (h * h)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``."""
    return lo if value < lo else hi if value > hi else value


def expm1_ratio(x: float) -> float:
    """Numerically stable ``(e^x - 1) / x`` with the ``x -> 0`` limit of 1."""
    import math

    if abs(x) < 1e-8:
        return 1.0 + x / 2.0 + x * x / 6.0
    return math.expm1(x) / x

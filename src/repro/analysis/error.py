"""Sampling-error propagation through the AEP Markov chain (Sec. 3.2).

The paper derives, for the beta-regime, a closed-form expression for the
error ``e^1_t`` that per-step sampling noise injects into the final
partition counts (Eq. 5), then its expectation (Eq. 7) and standard
deviation (Eq. 8):

* ``E[e^1_t] = 1/2 beta''(p) * p(1-p)/m * Phi(beta, N, t)`` with a
  bounded shape factor ``Phi`` -- a *systematic* shift that motivates the
  corrected probabilities of Eqs. (9)/(10);
* ``SD[e^1_t] = beta'(p) sqrt(t/m p(1-p)) * Psi(beta, N, t)`` with a
  bounded shape factor ``Psi``.

We compute the propagation factors exactly by iterating the linearized
error recursion (the model behind Eq. 5), avoiding the paper's algebraic
shortcuts while matching its structure: first-order terms drive the
variance, the second-order Taylor term drives the bias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import check_probability
from ..core.probabilities import (
    P_STAR,
    beta_of_p,
    beta_second_derivative,
)
from ..analysis.numerics import derivative
from ..exceptions import DomainError

__all__ = [
    "BiasPrediction",
    "predict_bias",
    "predict_error_std",
    "phi_factor",
    "psi_factor",
]


@dataclass(frozen=True)
class BiasPrediction:
    """Predicted systematic error of the side-1 count after termination."""

    n: int
    p: float
    m: int
    bias: float
    std: float


def _beta_regime_guard(p: float) -> None:
    if not P_STAR <= p <= 0.5:
        raise DomainError(
            f"the closed-form error analysis covers the beta-regime "
            f"[1 - ln2, 1/2]; got p={p}"
        )


def phi_factor(p: float, n: int) -> float:
    """The bounded propagation factor multiplying the bias term.

    Computed by iterating the mean-value recursion with a unit
    second-order perturbation of ``beta`` at every step: with
    ``y`` the side-1 count, each step's perturbation ``d_beta``
    contributes ``-y_i / n * d_beta`` to the final count, attenuated by
    the remaining ``(1 - beta/n)`` factors of the linear recursion.
    """
    _beta_regime_guard(p)
    beta = beta_of_p(p)
    t_star = int(round(n * math.log(2.0)))
    y = 0.0
    accum = 0.0
    decay = 1.0 - beta / n
    # Contribution of a perturbation at step i is -(y_i/n) * decay^(t-i).
    # Accumulate exactly by iterating forward.
    contributions = []
    for _ in range(t_star):
        contributions.append(-y / n)
        y = y * decay + 1.0
    total = 0.0
    for i, c in enumerate(contributions):
        total += c * decay ** (t_star - 1 - i)
    return total / t_star if t_star else 0.0


def predict_bias(p: float, n: int, m: int) -> float:
    """Expected systematic error ``E[e^1_t]`` of the side-1 count (Eq. 7).

    Positive sampling curvature (``beta'' > 0``) biases plug-in
    estimates of ``beta`` upward, which *oversteers* peers toward the
    minority, shifting the side-1 count down (and side-0 up) -- the drift
    visible in the SAM/AEP curves of Fig. 4.
    """
    _beta_regime_guard(p)
    if m < 1:
        raise DomainError(f"sample size m must be >= 1, got {m}")
    curvature = beta_second_derivative(p)
    unit_bias = 0.5 * curvature * p * (1.0 - p) / m
    t_star = n * math.log(2.0)
    return unit_bias * phi_factor(p, n) * t_star


def psi_factor(p: float, n: int) -> float:
    """Root-mean-square propagation factor for per-step noise (Eq. 8)."""
    _beta_regime_guard(p)
    beta = beta_of_p(p)
    t_star = int(round(n * math.log(2.0)))
    y = 0.0
    decay = 1.0 - beta / n
    weights = []
    for _ in range(t_star):
        weights.append(y / n)
        y = y * decay + 1.0
    total = 0.0
    for i, w in enumerate(weights):
        total += (w * decay ** (t_star - 1 - i)) ** 2
    return math.sqrt(total / t_star) if t_star else 0.0


def predict_error_std(p: float, n: int, m: int) -> float:
    """Standard deviation of the final side-1 count error (Eq. 8)."""
    _beta_regime_guard(p)
    if m < 1:
        raise DomainError(f"sample size m must be >= 1, got {m}")
    slope = derivative(beta_of_p, p, h=1e-5, lo=P_STAR, hi=0.5)
    per_step_sd = abs(slope) * math.sqrt(p * (1.0 - p) / m)
    t_star = n * math.log(2.0)
    return per_step_sd * psi_factor(p, n) * math.sqrt(t_star)


def predict(p: float, n: int, m: int) -> BiasPrediction:
    """Bundle of Eq. (7)/(8) predictions."""
    return BiasPrediction(
        n=n, p=p, m=m, bias=predict_bias(p, n, m), std=predict_error_std(p, n, m)
    )

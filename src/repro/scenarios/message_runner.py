"""The message-level scenario backend: every query pays wire latency.

:class:`MessageScenarioRunner` executes the *same*
:class:`~repro.scenarios.spec.ScenarioSpec` phases as the data-plane
:class:`~repro.scenarios.runner.ScenarioRunner` (shared compiler in
:mod:`repro.scenarios.base`), but over
:class:`~repro.simnet.node.PGridNode` protocol nodes communicating
through :class:`~repro.simnet.transport.Network` -- with configurable
(per-link) latency distributions, message loss, timeouts and retries.
This is the backend for the paper's Sec. 5 questions: hop counts alone
hide the latency/loss behavior that dominates real overlay performance.

How phases compile here
-----------------------
* **Queries** become :meth:`~repro.simnet.node.PGridNode.issue_query` /
  :meth:`~repro.simnet.node.PGridNode.issue_range_query` calls from a
  random online origin; outcomes arrive asynchronously via the node
  observer callbacks and are tallied at their *issue* time (same
  binning semantics as the data-plane backend).
* **Churn** toggles :meth:`~repro.simnet.node.PGridNode.set_online`
  through the shared :func:`~repro.simnet.churn.start_churn`
  orchestration -- offline nodes drop every message.
* **Joins** are sponsored: the newcomer clones a random online
  sponsor's partition position (path/routing/replica beliefs) and ships
  its sampled keys over the wire in a ``store`` message; keys outside
  its partition travel via the protocol's outbox piggy-backing.  Other
  replicas learn about the newcomer through ordinary anti-entropy
  exchanges, never by fiat.
* **Maintenance** ticks make a configurable fraction of online nodes
  initiate one protocol exchange (anti-entropy with a replica, or a
  random peer when a node knows none), so repair traffic is real
  messages, unlike the data-plane backend's nominal byte model.  With
  route repair enabled (:class:`~repro.pgrid.liveness.RouteRepairPolicy`
  via ``MessageNetConfig.repair``) the tick also runs each node's
  stale-reference refresh probes and lets route-deficient nodes (an
  emptied level) initiate an extra exchange -- gossip on exchanges and
  pongs is how evicted references get replaced.

The overlay starts from the same Algorithm-1 blueprint as the
data-plane backend (scenarios stress *operation*, not construction;
for construction-over-the-wire see
:mod:`repro.simnet.experiment`).

Determinism: the backend derives two extra RNG streams (transport,
per-node seeds) *after* the six shared ones, and all bookkeeping uses
sorted iteration -- same spec + seed reproduces a byte-identical
report, golden-trace tested like the data-plane backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from .._util import make_rng, mean, sample_online
from ..exceptions import SimulationError
from ..pgrid.bits import Path
from ..pgrid.liveness import RouteRepairPolicy
from ..pgrid.network import PGridNetwork
from ..pgrid.peer import PGridPeer
from ..pgrid.state import DurabilityPolicy
from ..pgrid.replication import divergence_stats
from ..pgrid.routing import RoutingTable
from ..simnet import protocol as P
from ..simnet.engine import Simulator
from ..simnet.node import NodeConfig, PGridNode, QueryOutcome
from ..simnet.shard import (
    DEFAULT_MIN_LOOKAHEAD_S,
    ShardCodec,
    ShardPlan,
    ShardedSimulator,
    derive_shard_streams,
)
from ..simnet.stats import StatsCollector
from ..simnet.transport import LatencyModel, LogNormalLatency, Network
from ..workloads.queries import POINT, RANGE, QuerySampler
from .base import ScenarioRunnerBase, _Tally
from .report import ScenarioReport, merge_reports
from .spec import Hotspot, Phase, ScenarioSpec

__all__ = [
    "MessageNetConfig",
    "MessageScenarioRunner",
    "run_message_scenario",
    "run_sharded_scenario",
    "slice_spec",
]


@dataclass
class MessageNetConfig:
    """Wire-level knobs of the message backend (times in seconds).

    The defaults mirror the Sec. 5 experiment driver: heavy-tailed
    PlanetLab-ish latency (log-normal, 120ms median) and 1% uniform
    loss.  Swap ``latency`` for a
    :class:`~repro.simnet.transport.PerLinkLatency` to give every link
    its own characteristic delay, or a
    :class:`~repro.simnet.transport.ConstantLatency` for analytically
    predictable tests.
    """

    latency: LatencyModel = field(
        default_factory=lambda: LogNormalLatency(median=0.12)
    )
    loss_rate: float = 0.01
    #: Origin-side query timeout before a retry (retries come from
    #: ``ScenarioSpec.query_retries``, shared with the data plane).
    query_timeout_s: float = 30.0
    #: Fraction of online nodes initiating one anti-entropy exchange
    #: per maintenance tick.
    maintenance_fraction: float = 0.05
    #: Extra simulated seconds after the last phase for in-flight
    #: queries to resolve; ``None`` = one full timeout*attempts window.
    drain_s: Optional[float] = None
    #: Evidence-driven liveness & route repair
    #: (:class:`~repro.pgrid.liveness.RouteRepairPolicy`):
    #: timeouts/partition refusals mark the used reference suspect,
    #: suspects are ping-probed and routed around, silent suspects are
    #: evicted, and anti-entropy exchanges gossip replacement candidates.
    #: ``RouteRepairPolicy(enabled=False)`` reproduces the repair-less
    #: blind-routing degradation baseline.
    repair: RouteRepairPolicy = field(default_factory=RouteRepairPolicy)
    #: Seconds a delete tombstone keeps riding anti-entropy exchanges
    #: before expiring (wired into every node's ``NodeConfig``).  The
    #: TTL clock starts when a node *first* installs the tombstone and
    #: is never refreshed by re-gossip.
    tombstone_ttl_s: float = 600.0
    #: Persistence & crash model
    #: (:class:`~repro.pgrid.state.DurabilityPolicy`): with durability
    #: enabled, restart phases checkpoint node state periodically and
    #: restarted nodes warm-rejoin from their last snapshot;
    #: ``DurabilityPolicy(enabled=False)`` is the cold-rejoin baseline
    #: (every restarted node re-enters via a sponsored join).
    durability: DurabilityPolicy = field(default_factory=DurabilityPolicy)
    #: Event-loop shard count.  ``1`` (default) runs the legacy
    #: single-heap :class:`~repro.simnet.engine.Simulator`; ``>= 2``
    #: swaps in the barrier-synchronized sharded kernel
    #: (:class:`~repro.simnet.shard.ShardedSimulator`), partitioning
    #: the trie regions across shards via
    #: :class:`~repro.simnet.shard.ShardPlan`.  The kernel executes in
    #: globally merged event order, so the report -- and its digest --
    #: is byte-identical at every shard count.
    shards: int = 1
    #: Barrier window of the sharded kernel; ``None`` derives it from
    #: the latency model's floor (conservative lookahead), clamped to
    #: :data:`~repro.simnet.shard.DEFAULT_MIN_LOOKAHEAD_S` for
    #: zero-floor models.
    lookahead_s: Optional[float] = None


@dataclass
class _PendingBox:
    """One in-flight box query: ``n_ranges`` concurrent range queries
    from the same origin, folded into a single RANGE tally record when
    the last sub-range resolves (see ``_box_sub_done``)."""

    idx: int
    issued_at: float
    remaining: int
    #: Brute-force ground truth for the recall audit
    #: (``ScenarioRunnerBase._mdim_box_plan``).
    oracle: Set[int]
    success: bool = True
    moot: bool = False
    messages: int = 0
    latency: float = 0.0
    found: Set[int] = field(default_factory=set)


class MessageScenarioRunner(ScenarioRunnerBase):
    """Executes one :class:`ScenarioSpec` over message-passing nodes.

    After :meth:`run`, ``self.nodes`` (id -> :class:`PGridNode`),
    ``self.transport`` and ``self.stats`` stay available for
    inspection; :meth:`as_network` converts the final node states into
    a :class:`~repro.pgrid.network.PGridNetwork` so the structural
    invariant checks of :mod:`repro.scenarios.invariants` apply to this
    backend too.
    """

    backend = "message"

    def __init__(self, spec: ScenarioSpec, *, net_config: Optional[MessageNetConfig] = None):
        cfg = net_config or MessageNetConfig()
        super().__init__(spec, durability=cfg.durability)
        self.net_config = cfg
        self.nodes: Dict[int, PGridNode] = {}
        self.transport: Optional[Network] = None
        self.stats: Optional[StatsCollector] = None
        #: Trie-region shard assignment (sharded kernel runs only).
        self.shard_plan: Optional[ShardPlan] = None
        self._node_tuple: Optional[Tuple[PGridNode, ...]] = None
        #: Query-origin gateway tier (``CachePolicy.front_ends``);
        #: ``None`` = unrestricted random origins.
        self._gateways: Optional[Tuple[PGridNode, ...]] = None
        # qid -> (phase index, query kind, issue time)
        self._meta: Dict[int, Tuple[int, str, float]] = {}
        # Box queries (multi-dimensional specs): box id -> fold state,
        # and sub-range qid -> box id (sub-ranges bypass self._meta so
        # each box tallies exactly once).
        self._boxes: Dict[int, _PendingBox] = {}
        self._box_of: Dict[int, int] = {}
        self._next_box = 0
        # wid -> (phase index, write op, key, issue time); the key rides
        # along so write acks can feed the durability audit.
        self._wmeta: Dict[int, Tuple[int, str, int, float]] = {}
        self._tally: Optional[_Tally] = None
        self._point_latencies: List[float] = []
        self._range_latencies: List[float] = []
        self._timeouts = 0
        self._retries = 0
        self._moot = 0
        self._write_timeouts = 0
        self._write_retries = 0
        self._moot_writes = 0

    # -- lifecycle hooks ---------------------------------------------------

    def _derive_extra_streams(self, master) -> None:
        # Appended after the six shared streams (determinism contract).
        self._transport_rng = make_rng(master.randrange(2**31))
        self._node_seed_rng = make_rng(master.randrange(2**31))

    def _make_simulator(self):
        cfg = self.net_config
        if cfg.shards <= 1:
            return Simulator()
        lookahead = cfg.lookahead_s
        if lookahead is None:
            # Conservative lookahead = the per-link latency floor; a
            # zero floor (log-normal) falls back to the minimum window.
            # Either way execution order is provably unchanged -- the
            # window only sizes how much cross-shard traffic stages.
            lookahead = max(cfg.latency.floor(), DEFAULT_MIN_LOOKAHEAD_S)
        return ShardedSimulator(cfg.shards, lookahead=lookahead)

    def _setup(self, peer_keys, build_rng) -> None:
        spec, cfg, sim = self.spec, self.net_config, self.simulator
        blueprint = self._build_blueprint(peer_keys, build_rng)
        self.stats = StatsCollector(bin_seconds=spec.report_bin_s)
        self.transport = Network(
            sim,
            latency=cfg.latency,
            loss_rate=cfg.loss_rate,
            rng=self._transport_rng,
            stats=self.stats,
        )
        self._node_config = NodeConfig(
            n_min=spec.n_min,
            d_max=spec.d_max,
            query_timeout=cfg.query_timeout_s,
            query_retries=spec.query_retries,
            max_refs_per_level=spec.max_refs,
            repair=cfg.repair,
            # Spec-provisioned TTL wins (restart scenarios stretch it to
            # cover their reconciliation horizon); else the wire default.
            tombstone_ttl_s=(
                spec.tombstone_ttl_s
                if spec.tombstone_ttl_s is not None
                else cfg.tombstone_ttl_s
            ),
            # The serving front end rides the spec (like the repair and
            # durability policies ride the net config); enabled=False
            # keeps node behaviour identical to no policy at all.
            serving=spec.cache,
        )
        for pid in sorted(blueprint.peers):
            peer = blueprint.peers[pid]
            node = self._spawn_node(pid)
            node.path = peer.path
            node.keys = set(peer.keys)
            node.original_keys = set(peer.keys)
            node.routing = {
                level: list(refs)
                for level, refs in sorted(peer.routing.levels.items())
                if refs
            }
            node.replicas = set(peer.replicas)
        if isinstance(sim, ShardedSimulator):
            # Partition the trie regions across shards and route every
            # delivery onto its destination's shard; node-local timers
            # inherit the executing shard, runner control events stay on
            # shard 0.  Installed after the initial spawn (which sends
            # nothing); later joiners fall back to the plan's stable
            # id-hash assignment.
            self.shard_plan = ShardPlan.from_paths(
                {pid: node.path for pid, node in self.nodes.items()},
                cfg.shards,
            )
            self.transport.shard_of = self.shard_plan.shard_of
        cache = spec.cache
        if cache is not None and cache.front_ends > 0:
            # Gateway tier: queries enter through a fixed, evenly spaced
            # subset of the initial population (the deployment shape the
            # serving layer models).  Installed for enabled=False runs
            # too, so the cache on/off A/B differs only in the cache
            # machinery, never in where queries originate.
            pids = sorted(self.nodes)
            count = min(cache.front_ends, len(pids))
            step = len(pids) / count
            self._gateways = tuple(
                self.nodes[pids[int(i * step)]] for i in range(count)
            )
        if cache is not None and cache.enabled and cache.adaptive_replication:
            # The decay-window heartbeat of adaptive replication: every
            # node examines its served-query counter and grants/revokes
            # helper replicas.  Runner-driven (sorted ids) so the event
            # order is deterministic; only scheduled with the cache on,
            # so cache-off event streams stay bit-identical.
            interval = cache.decay_interval_s

            def serving_tick() -> None:
                for pid in sorted(self.nodes):
                    self.nodes[pid].serving_tick()
                if sim.now + interval <= spec.duration_s:
                    sim.schedule(interval, serving_tick)

            sim.schedule(interval, serving_tick)

    def _spawn_node(self, pid: int) -> PGridNode:
        node = PGridNode(
            pid,
            self.simulator,
            self.transport,
            config=self._node_config,
            rng=make_rng(self._node_seed_rng.randrange(2**31)),
        )
        node.joined = True
        node.on_query_done = self._query_done
        node.on_range_done = self._range_done
        node.on_write_done = self._write_done
        node.on_cache_hit = self._audit_cache_hit
        self.nodes[pid] = node
        self._node_tuple = None
        return node

    def _first_free_id(self) -> int:
        return max(self.nodes) + 1 if self.nodes else 0

    def _online_ids(self, departed: Set[int]) -> List[int]:
        return sorted(
            pid
            for pid, node in self.nodes.items()
            if node.online and pid not in departed
        )

    def _depart(self, pid: int) -> None:
        self.nodes[pid].set_online(False)

    def _churn_toggle(self, pid: int, tally: _Tally) -> Callable[[bool], None]:
        node = self.nodes[pid]

        def toggle(online: bool) -> None:
            node.set_online(online)
            tally.churn_transitions += 1

        return toggle

    def _join(self, pid: int, keys: List[int], rng, tally: _Tally) -> bool:
        """Sponsored join: clone a random online sponsor's position and
        ship the newcomer's keys over the wire."""
        sponsor = self._random_online_node(rng)
        if sponsor is None:
            return False
        node = self._spawn_node(pid)
        node.path = sponsor.path
        node.routing = {
            level: list(refs) for level, refs in sorted(sponsor.routing.items())
        }
        node.replicas = set(sponsor.replicas) | {sponsor.node_id}
        node.original_keys = set(keys)
        node.keys = {k for k in keys if node.responsible_for(k)}
        node.outbox = set(keys) - node.keys
        # The one wire interaction of the join: hand the sponsor our key
        # sample; its store handler keeps what belongs to the partition
        # and outboxes the rest toward the responsible owners.
        node.send(
            sponsor.node_id,
            P.STORE,
            {"keys": sorted(keys)},
            n_keys=len(keys),
        )
        return True

    # -- persistence & recovery (pgrid.state) --------------------------------

    def _checkpoint_all(self, tally: _Tally) -> None:
        store = self._state_store
        for pid in sorted(self.nodes):
            node = self.nodes[pid]
            if node.online:
                store.put(pid, node.snapshot_state())

    def _restart_shutdown(self, pid: int, crash: bool, tally: _Tally) -> bool:
        node = self.nodes.get(pid)
        if node is None or not node.online:
            return False
        if not crash and self._durability.enabled:
            # Clean shutdown flushes state at the shutdown instant; a
            # crash keeps only the last *periodic* checkpoint, losing
            # up to snapshot_interval_s of acknowledged progress.
            self._state_store.put(pid, node.snapshot_state())
        node.abort_inflight()
        node.set_online(False)
        return True

    def _restart_return(self, pid: int, tally: _Tally) -> str:
        node = self.nodes[pid]
        if self._durability.enabled:
            snapshot = self._state_store.get(pid)
            if snapshot is not None:
                node.restore_state(snapshot)
                node.set_online(True, warm=True)
                return "warm"
        # Cold rejoin: durable state is gone, so the node re-enters
        # exactly like a sponsored join (see _join), keeping only its
        # identity and original workload keys.
        keys = sorted(node.original_keys)
        sponsor = self._random_online_node(self._restart_rng)
        node.set_online(True)
        node.tombstones = set()
        node._tombstone_born = {}
        node.liveness.strikes.clear()
        node.liveness.probe_nonce.clear()
        node.liveness.last_confirmed.clear()
        node.liveness.evicted_at.clear()
        # Wiping the confirmation stamps makes every kept ref stale at
        # once; the refresh-sweep skip cache must not outlive them.
        node._route_sweep_min_last = None
        if sponsor is None:
            # Nobody online to sponsor: come back in place and let
            # anti-entropy reconcile whatever state survived in RAM.
            return "cold"
        node.path = sponsor.path
        node.routing = {
            level: list(refs) for level, refs in sorted(sponsor.routing.items())
        }
        node.replicas = set(sponsor.replicas) | {sponsor.node_id}
        node.original_keys = set(keys)
        node.keys = {k for k in keys if node.responsible_for(k)}
        node.outbox = set(keys) - node.keys
        node.send(
            sponsor.node_id,
            P.STORE,
            {"keys": keys},
            n_keys=len(keys),
        )
        return "cold"

    def _durable_key_view(self) -> Tuple[Set[int], Set[int]]:
        present: Set[int] = set()
        live_tombstones: Set[int] = set()
        now = self.simulator.now
        for pid in sorted(self.nodes):
            node = self.nodes[pid]
            # The node's own (possibly spec-provisioned) TTL decides
            # liveness -- the audit must agree with _prune_tombstones.
            ttl = node.config.tombstone_ttl_s
            present |= node.keys
            present |= node.outbox
            for key in node.tombstones:
                born = node._tombstone_born.get(key)
                if born is None or now - born < ttl:
                    live_tombstones.add(key)
        return present, live_tombstones

    def _run_maintenance(self, tally: _Tally, rng) -> None:
        online = [pid for pid, node in sorted(self.nodes.items()) if node.online]
        if len(online) < 2:
            return
        count = max(
            1, int(round(self.net_config.maintenance_fraction * len(online)))
        )
        initiators = set(rng.sample(online, min(count, len(online))))
        exchanges = 0
        for pid in sorted(initiators):
            node = self.nodes[pid]
            partner = self._pick_partner(node, rng)
            if partner is not None:
                node.initiate_exchange(partner)
                exchanges += 1
        if self.net_config.repair.enabled:
            nodes = self.nodes
            for pid in online:
                node = nodes[pid]
                # The periodic half of the route-repair policy: probe
                # the stalest references (bounded per tick), so dead
                # references are discovered by maintenance instead of
                # each costing a query its timeout.
                node.refresh_routes()
                # Route-deficient nodes (an empty level means some keys
                # are unreachable -- e.g. after an outage evicted a
                # whole region) ask for anti-entropy *now*: exchange
                # gossip is how replacements travel, and waiting for the
                # sampled cadence would leave them dark for ticks.
                if pid in initiators:
                    continue
                routing_get = node.routing.get
                for level in range(node.path.length):
                    if not routing_get(level):
                        break
                else:
                    continue  # every level populated: not deficient
                partner = self._pick_partner(node, rng)
                if partner is not None:
                    node.initiate_exchange(partner)
                    exchanges += 1
        # For this backend "repairs" counts initiated anti-entropy
        # exchanges; bytes are accounted by the transport, not here.
        tally.repairs += exchanges

    def _pick_partner(self, node: PGridNode, rng) -> Optional[int]:
        known = sorted(r for r in node.replicas if r in self.nodes)
        if known:
            return known[rng.randrange(len(known))]
        others = [pid for pid in sorted(self.nodes) if pid != node.node_id]
        if not others:
            return None
        return others[rng.randrange(len(others))]

    def _all_ids(self) -> List[int]:
        return sorted(self.nodes)

    def _set_partitions(self, groups: List[List[int]]) -> None:
        # A real cut: the transport refuses messages crossing region
        # boundaries at send time, which the nodes' liveness tracking
        # observes as failure evidence (see PGridNode.send).
        self.transport.set_partitions(groups)

    def _heal_partitions(self) -> None:
        self.transport.heal_partitions()

    def _groups(self) -> Dict[Path, List[int]]:
        """Structural replica groups: nodes sharing a path, sorted ids."""
        groups: Dict[Path, List[int]] = {}
        # Sorting items() keeps the per-pid dict lookup off this sweep;
        # pids are unique so the node half of the pair is never compared.
        for pid, node in sorted(self.nodes.items()):
            groups.setdefault(node.path, []).append(pid)
        return groups

    def _sample_state(self):
        # One unsorted sweep instead of _group_health over _groups():
        # every aggregate is order-independent (integer sums are exact,
        # and the mean of per-group live counts is online / n_groups),
        # so the sorted member-list build and the per-member liveness
        # callback of the generic path are skipped.  Runs per sample
        # tick over every node; groups are keyed by C-hashed
        # (length, bits) int pairs, not Path objects.
        live_by_path: Dict[Tuple[int, int], int] = {}
        get = live_by_path.get
        online = 0
        for node in self.nodes.values():
            path = node.path
            key = (path.length, path.bits)
            if node.online:
                online += 1
                live_by_path[key] = get(key, 0) + 1
            elif key not in live_by_path:
                live_by_path[key] = 0
        n_groups = len(live_by_path)
        if not n_groups:
            return 0, 0.0, 0.0
        groups_alive = sum(1 for v in live_by_path.values() if v)
        return online, groups_alive / n_groups, online / n_groups

    # -- query issuance (asynchronous) -------------------------------------

    def _random_online_node(self, rng) -> Optional[PGridNode]:
        nodes = self._node_tuple
        if nodes is None or len(nodes) != len(self.nodes):
            nodes = tuple(self.nodes[pid] for pid in sorted(self.nodes))
            self._node_tuple = nodes
        return sample_online(nodes, lambda node: node.online, rng)

    def _query_origin(self, rng) -> Optional[PGridNode]:
        """Where the next query enters: a random online gateway when a
        front-end tier is configured, else any random online node."""
        if self._gateways is not None:
            return sample_online(self._gateways, lambda node: node.online, rng)
        return self._random_online_node(rng)

    def _run_one_query(
        self, tally: _Tally, phase: Phase, idx: int, sampler: QuerySampler, rng
    ) -> None:
        kind = sampler.draw_kind(rng)
        if kind == POINT:
            key = sampler.draw_point_key(rng)
            origin = self._query_origin(rng)
            if origin is None:
                tally.record_query(
                    self.simulator.now, idx, kind=POINT, success=False,
                    hops=0, messages=0, size=0,
                )
                return
            qid = origin.issue_query(key)
        elif sampler.codec is not None:
            # Box query: decompose into z-order key ranges (see
            # repro.pgrid.mdim) and put every range on the wire at once
            # from one origin; _box_sub_done folds the sub-outcomes into
            # a single RANGE record when the last one resolves.
            lo_cells, hi_cells = sampler.draw_box(rng)
            ranges, oracle = self._mdim_box_plan(lo_cells, hi_cells)
            origin = self._query_origin(rng)
            if origin is None:
                self._mdim_box_done(oracle, frozenset(), False)
                tally.range_incomplete += 1
                tally.record_query(
                    self.simulator.now, idx, kind=RANGE, success=False,
                    hops=0, messages=0, size=0,
                )
                return
            box_id = self._next_box
            self._next_box += 1
            self._boxes[box_id] = _PendingBox(
                idx=idx,
                issued_at=self.simulator.now,
                remaining=len(ranges),
                oracle=oracle,
            )
            for lo, hi in ranges:
                self._box_of[origin.issue_range_query(lo, hi)] = box_id
            return
        else:
            lo, hi = sampler.draw_range(rng)
            origin = self._query_origin(rng)
            if origin is None:
                tally.range_incomplete += 1
                tally.record_query(
                    self.simulator.now, idx, kind=RANGE, success=False,
                    hops=0, messages=0, size=0,
                )
                return
            qid = origin.issue_range_query(lo, hi)
        self._meta[qid] = (idx, kind, self.simulator.now)

    def _query_done(self, node_id: int, qid: int, outcome: QueryOutcome) -> None:
        meta = self._meta.pop(qid, None)
        if meta is None:
            return
        idx = meta[0]
        self._observe(outcome)
        if outcome.moot:
            # The *origin* churned offline: the overlay never failed the
            # query and it could never be answered, so it stays out of
            # the success statistics (mirroring the node-level stats);
            # visible in message_level["moot_queries"].
            return
        if outcome.success:
            self._point_latencies.append(outcome.latency)
        self._tally.record_query(
            outcome.issued_at,
            idx,
            kind=POINT,
            success=outcome.success,
            hops=outcome.hops,
            messages=outcome.messages,
            size=0,  # wire bytes are accounted by the transport
        )

    def _range_done(self, node_id: int, qid: int, outcome: QueryOutcome) -> None:
        box_id = self._box_of.pop(qid, None)
        if box_id is not None:
            self._box_sub_done(box_id, outcome)
            return
        meta = self._meta.pop(qid, None)
        if meta is None:
            return
        idx = meta[0]
        self._observe(outcome)
        if outcome.moot:
            return  # see _query_done: not an overlay failure
        if outcome.success:
            self._range_latencies.append(outcome.latency)
        else:
            self._tally.range_incomplete += 1
        self._tally.record_query(
            outcome.issued_at,
            idx,
            kind=RANGE,
            success=outcome.success,
            hops=outcome.messages,
            messages=outcome.messages,
            size=0,
        )

    def _box_sub_done(self, box_id: int, outcome: QueryOutcome) -> None:
        """Fold one sub-range outcome into its box; tally the box as a
        single RANGE query when the last sub-range resolves.

        A box succeeds iff *every* sub-range completed; its latency is
        the slowest sub-range's (all were issued at the same instant)
        and its message count the sum.  A moot sub-outcome (the shared
        origin churned offline) voids the whole box, mirroring the
        scalar path -- the overlay never failed it.
        """
        box = self._boxes[box_id]
        self._observe(outcome)
        box.remaining -= 1
        box.messages += outcome.messages
        box.latency = max(box.latency, outcome.latency)
        box.found.update(outcome.found_keys)
        box.moot = box.moot or outcome.moot
        box.success = box.success and outcome.success
        if box.remaining:
            return
        del self._boxes[box_id]
        if box.moot:
            return
        if box.success:
            self._range_latencies.append(box.latency)
        else:
            self._tally.range_incomplete += 1
        self._mdim_box_done(box.oracle, box.found, box.success)
        self._tally.record_query(
            box.issued_at,
            box.idx,
            kind=RANGE,
            success=box.success,
            hops=box.messages,
            messages=box.messages,
            size=0,
        )

    def _observe(self, outcome: QueryOutcome) -> None:
        self._retries += max(outcome.attempts - 1, 0)
        self._timeouts += outcome.timeouts
        if outcome.moot:
            self._moot += 1

    # -- write issuance (asynchronous) --------------------------------------

    def _run_one_write(
        self, tally: _Tally, phase: Phase, idx: int, op: str, key: int, rng
    ) -> None:
        """Put one mutation on the wire from a random online origin.

        An ``update`` travels as an insert of the existing key (the
        index stores bare keys, so an update is an idempotent
        overwrite); the op label is kept for the report's counters.
        """
        origin = self._random_online_node(rng)
        if origin is None:
            tally.record_write(
                self.simulator.now, idx, op=op, success=False, messages=0, size=0
            )
            return
        if op == "delete":
            wid = origin.issue_delete(key)
        else:
            wid = origin.issue_insert(key)
        self._wmeta[wid] = (idx, op, key, self.simulator.now)

    def _write_done(self, node_id: int, wid: int, outcome: QueryOutcome) -> None:
        meta = self._wmeta.pop(wid, None)
        if meta is None:
            return
        idx, op, key, _issued = meta
        self._write_retries += max(outcome.attempts - 1, 0)
        self._write_timeouts += outcome.timeouts
        if outcome.moot:
            # The origin churned offline mid-write: not an overlay
            # failure (see _query_done); visible in the writes section.
            self._moot_writes += 1
            return
        if outcome.success:
            self._note_acked_write(op, key)
        self._tally.record_write(
            outcome.issued_at,
            idx,
            op=op,
            success=outcome.success,
            messages=outcome.messages,
            size=0,  # wire bytes are accounted by the transport
        )

    def _divergence_state(self) -> Dict[str, float]:
        groups = self._groups()
        stats = divergence_stats(
            [sorted(self.nodes[pid].keys) for pid in groups[path]]
            for path in sorted(groups)
        )
        stats["tombstones"] = sum(
            len(self.nodes[pid].tombstones) for pid in sorted(self.nodes)
        )
        return stats

    # -- run wiring --------------------------------------------------------

    def _make_phase_start(self, sim, tally, *args, **kwargs):
        self._tally = tally  # observer callbacks tally into the live run
        return super()._make_phase_start(sim, tally, *args, **kwargs)

    def _finish(self, tally: _Tally) -> None:
        # Let in-flight queries resolve: every pending query is bounded
        # by (retries + 1) timeout windows.  All phase generators have
        # stopped (they check phase end), so only completions run.
        cfg = self.net_config
        drain = cfg.drain_s
        if drain is None:
            drain = cfg.query_timeout_s * (self.spec.query_retries + 1) + 1.0
        self.simulator.run_until(
            self.spec.duration_s + drain, max_events=self.MAX_EVENTS
        )
        # Anything still unresolved (possible only when drain_s is set
        # shorter than the timeout window) counts as a failure of its
        # real kind, binned at its real issue time.
        for qid, (idx, kind, issued_at) in sorted(self._meta.items()):
            if kind == RANGE:
                tally.range_incomplete += 1
            tally.record_query(
                issued_at, idx, kind=kind, success=False,
                hops=0, messages=0, size=0,
            )
        self._meta.clear()
        # Boxes with unresolved sub-ranges fail as a whole, with
        # whatever partial results arrived feeding the recall audit.
        for box_id, box in sorted(self._boxes.items()):
            tally.range_incomplete += 1
            self._mdim_box_done(box.oracle, box.found, False)
            tally.record_query(
                box.issued_at, box.idx, kind=RANGE, success=False,
                hops=box.messages, messages=box.messages, size=0,
            )
        self._boxes.clear()
        self._box_of.clear()
        for wid, (idx, op, _key, issued_at) in sorted(self._wmeta.items()):
            tally.record_write(
                issued_at, idx, op=op, success=False, messages=0, size=0
            )
        self._wmeta.clear()

    # -- assembly hooks ----------------------------------------------------

    def _extra_bins(self) -> Set[int]:
        bins: Set[int] = set()
        for per_bin in self.stats.bytes_by_category.values():
            bins.update(per_bin)
        return bins

    def _bin_bandwidth(self, tally: _Tally, b: int) -> Tuple[float, float]:
        query = self.stats.bytes_by_category.get(P.QUERY_TRAFFIC, {}).get(b, 0)
        maint = self.stats.bytes_by_category.get(P.MAINTENANCE, {}).get(b, 0)
        return query / tally.bin_s, maint / tally.bin_s

    def _bin_update_bps(self, tally: _Tally, b: int) -> float:
        update = self.stats.bytes_by_category.get(P.UPDATE_TRAFFIC, {}).get(b, 0)
        return update / tally.bin_s

    def _phase_bytes(self, counters, start: float, end: float) -> int:
        # Wire bytes per phase: sum the query-category bins inside the
        # phase window.  Bin-granular -- a bin straddling a phase
        # boundary counts toward the later phase (the library's phases
        # are exact bin multiples, so this only matters for custom
        # specs).  The final phase also absorbs the drain tail (replies
        # still in flight at duration end), keeping the per-phase sum
        # consistent with ``totals.bytes_query``.
        return self._phase_category_bytes(P.QUERY_TRAFFIC, start, end)

    def _phase_update_bytes(self, counters, start: float, end: float) -> int:
        return self._phase_category_bytes(P.UPDATE_TRAFFIC, start, end)

    def _phase_category_bytes(self, category: str, start: float, end: float) -> int:
        per_bin = self.stats.bytes_by_category.get(category, {})
        bin_s = self.spec.report_bin_s
        lo = int(start // bin_s)
        if end >= self.spec.duration_s:
            return int(sum(size for b, size in per_bin.items() if lo <= b))
        hi = int(end // bin_s)
        return int(
            sum(size for b, size in per_bin.items() if lo <= b < hi)
        )

    def _traffic_totals(self, tally: _Tally) -> Tuple[int, int, int, int]:
        query = sum(
            self.stats.bytes_by_category.get(P.QUERY_TRAFFIC, {}).values()
        )
        maint = sum(
            self.stats.bytes_by_category.get(P.MAINTENANCE, {}).values()
        )
        update = sum(
            self.stats.bytes_by_category.get(P.UPDATE_TRAFFIC, {}).values()
        )
        return self.transport.messages_sent, int(query), int(maint), int(update)

    def _load_by_peer(self, tally: _Tally) -> List[int]:
        delivered = self.transport.delivered
        return [delivered.get(pid, 0) for pid in sorted(self.nodes)]

    def _final_state(self) -> Dict[str, float]:
        groups = self._groups()
        covered = total = 0
        alive_groups = 0
        for members in groups.values():
            online = [pid for pid in members if self.nodes[pid].online]
            if not online:
                continue
            alive_groups += 1
            union: Set[int] = set()
            for pid in members:
                union |= self.nodes[pid].keys
            live: Set[int] = set()
            for pid in online:
                live |= self.nodes[pid].keys
            total += len(union)
            covered += len(union & live)
        return {
            "final_online": sum(1 for n in self.nodes.values() if n.online),
            "final_partition_availability": (
                alive_groups / len(groups) if groups else 0.0
            ),
            "final_coverage": (covered / total) if total else 1.0,
            "n_peers_end": len(self.nodes),
        }

    def _message_section(self) -> dict:
        transport = self.transport
        cfg = self.net_config
        links = transport.link_bytes
        link_sizes = sorted(links.values())
        top = sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        trackers = [self.nodes[pid].liveness for pid in sorted(self.nodes)]
        repair = {
            "enabled": cfg.repair.enabled,
            "suspects": sum(t.suspects for t in trackers),
            "probes": sum(t.probes for t in trackers),
            "evictions": sum(t.evictions for t in trackers),
            "replacements": sum(t.replacements for t in trackers),
            # Ping/pong and gossip bytes; already folded into the
            # maintenance side of the Fig. 8 bandwidth split.
            "repair_bytes": sum(t.repair_bytes for t in trackers),
        }
        section = {
            "repair": repair,
            "latency_s": _latency_stats(self._point_latencies),
            "range_latency_s": _latency_stats(self._range_latencies),
            "timeouts": self._timeouts,
            "retries": self._retries,
            "moot_queries": self._moot,
            "messages_sent": transport.messages_sent,
            "messages_dropped": transport.messages_dropped,
            "drops": {
                "offline": transport.drops_offline,
                "loss": transport.drops_loss,
                "partition": transport.drops_partition,
            },
            "inflight_peak": transport.inflight_peak,
            "links": {
                "used": len(links),
                "max_bytes": link_sizes[-1] if link_sizes else 0,
                "mean_bytes": mean(link_sizes) if link_sizes else 0.0,
                "top": [[src, dst, size] for (src, dst), size in top],
            },
            "config": {
                "latency_model": type(cfg.latency).__name__,
                "loss_rate": cfg.loss_rate,
                "query_timeout_s": cfg.query_timeout_s,
                "maintenance_fraction": cfg.maintenance_fraction,
                "repair_enabled": cfg.repair.enabled,
            },
        }
        if self._writes_active:
            # Only write-carrying scenarios grow the extra key: read-only
            # message-level goldens stay byte-identical.
            section["write_path"] = {
                "timeouts": self._write_timeouts,
                "retries": self._write_retries,
                "moot_writes": self._moot_writes,
            }
        return section

    def _serving_counters(self) -> Dict[str, int]:
        """Node-aggregated serving-layer counters (zeros when the cache
        is off -- the section still reports them for the A/B)."""
        totals: Dict[str, int] = {}
        for pid in sorted(self.nodes):
            for key, value in self.nodes[pid].serving_stats.items():
                totals[key] = totals.get(key, 0) + value
        totals["helpers_final"] = sum(
            len(self.nodes[pid]._helpers) for pid in sorted(self.nodes)
        )
        return totals

    def _serving_latency(self) -> dict:
        return _latency_stats(self._point_latencies)

    # -- inspection --------------------------------------------------------

    def as_network(self) -> PGridNetwork:
        """The final node states as a :class:`PGridNetwork`.

        Lets the structural invariant checks
        (:mod:`repro.scenarios.invariants`) audit the message-level end
        state exactly like the data-plane one.
        """
        net = PGridNetwork()
        for pid in sorted(self.nodes):
            node = self.nodes[pid]
            peer = PGridPeer(
                peer_id=pid,
                path=node.path,
                keys=sorted(node.keys),
                replicas=set(node.replicas),
                routing=RoutingTable(max_refs_per_level=self.spec.max_refs),
                online=node.online,
            )
            for level, refs in sorted(node.routing.items()):
                for ref in refs:
                    peer.routing.add(level, ref)
            net.peers[pid] = peer
        net._prune_dangling_routes()
        return net


def _latency_stats(samples: List[float]) -> dict:
    """Deterministic percentile summary of successful-query latencies.

    Nearest-rank percentiles: the q-quantile of n samples is the
    ``ceil(q * n)``-th order statistic.  (The previous
    ``int(q * n)`` index was biased one rank high -- p50 of two
    samples returned the larger, p50 of three the second-largest.)
    """
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[max(0, math.ceil(q * n) - 1)]

    return {
        "count": n,
        # A single-sample bin IS its own mean; skip the float summation
        # so the degenerate case cannot pick up rounding noise.
        "mean": ordered[0] if n == 1 else mean(ordered),
        "p50": pct(0.50),
        "p90": pct(0.90),
        "p99": pct(0.99),
        "p999": pct(0.999),
        "max": ordered[-1],
    }


def run_message_scenario(
    spec: ScenarioSpec, *, net_config: Optional[MessageNetConfig] = None
) -> ScenarioReport:
    """One-shot convenience: ``MessageScenarioRunner(spec).run()``."""
    return MessageScenarioRunner(spec, net_config=net_config).run()


# -- worker-mode sharding ----------------------------------------------------
#
# The second half of the scale story (SNIPPETS #3 shape: independent
# shards + a thin merge layer).  Where ``MessageNetConfig.shards`` runs
# ONE spec on a barrier-synchronized kernel inside one process --
# byte-identical reports at any shard count -- worker mode carves the
# *population itself* into independent keyspace slices, runs each slice
# as its own scenario in its own process, and merges the per-shard
# reports into one with the identical schema.  Each worker's report
# depends only on its own sub-spec and seed, so the merged result is
# deterministic regardless of process scheduling; this is what makes
# N=65,536 reachable in one bench run.


def slice_spec(
    spec: ScenarioSpec, index: int, shards: int, *, seed: int
) -> ScenarioSpec:
    """One worker's sub-scenario: the spec confined to keyspace slice
    ``[index/shards, (index+1)/shards)``.

    The population, arrival/departure waves and traffic rates are
    divided evenly (remainders spread over the low-index shards, so the
    totals are preserved exactly); the key workload is confined via a
    sliced distribution label (``"U@2/8"`` -- the base distribution
    affinely mapped into the slice, see
    :mod:`repro.workloads.distributions`) and the query/write mixes via
    a weight-1.0 hotspot over the slice.  Together these keep every
    generated key, query target and mutation inside the slice, so the
    slice's P-Grid is a complete, self-contained overlay over its
    region -- the per-collection independent index of the exemplar.
    """
    if not 0 <= index < shards:
        raise SimulationError(f"slice index {index} out of range for {shards}")
    if spec.codec is not None and spec.codec.dims > 1:
        # Slice confinement works by restricting the scalar keyspace
        # interval; a z-order codec interleaves per-dimension bits, so a
        # per-dimension hotspot would NOT confine the interleaved keys
        # to the slice and the sub-overlays would no longer be
        # self-contained.  Refuse loudly rather than merge garbage.
        raise SimulationError(
            "worker-mode sharding does not support multi-dimensional codecs"
        )
    if spec.n_peers < 2 * shards:
        raise SimulationError(
            f"{spec.n_peers} peers cannot split into {shards} shards of >= 2"
        )

    def share(total: int) -> int:
        return total // shards + (1 if index < total % shards else 0)

    lo, hi = index / shards, (index + 1) / shards
    confined = Hotspot(lo=lo, hi=hi, weight=1.0)
    phases = tuple(
        replace(
            phase,
            query_rate=phase.query_rate / shards,
            join_peers=share(phase.join_peers),
            leave_peers=share(phase.leave_peers),
            mix=replace(phase.mix, hotspot=confined),
            writes=(
                None
                if phase.writes is None
                else replace(
                    phase.writes,
                    write_rate=phase.writes.write_rate / shards,
                    hotspot=confined,
                )
            ),
        )
        for phase in spec.phases
    )
    return replace(
        spec,
        name=f"{spec.name}@{index}/{shards}",
        n_peers=share(spec.n_peers),
        seed=seed,
        distribution=f"{spec.distribution}@{index}/{shards}",
        phases=phases,
    )


def _run_shard_worker(args: Tuple[ScenarioSpec, Optional[MessageNetConfig]]) -> bytes:
    """Worker entry point: run one slice, return its encoded result.

    Results cross the process boundary through :class:`ShardCodec`
    (versioned, pinned pickle protocol) so a parent/worker codec
    mismatch fails loudly instead of silently merging garbage.  The
    payload pairs the report with the worker's kernel counters
    (events processed, pending-heap peak, compactions, wall time) so
    the scale bench can audit heap health without touching the report
    schema.
    """
    import time

    sub_spec, net_config = args
    runner = MessageScenarioRunner(sub_spec, net_config=net_config)
    start = time.perf_counter()
    report = runner.run()
    wall_s = time.perf_counter() - start
    sim = runner.simulator
    kernel = {
        "events_processed": sim.events_processed,
        "pending_peak": sim.pending_peak,
        "pending_cancelled": sim.pending_cancelled,
        "compactions": sim.compactions,
        "wall_s": wall_s,
    }
    return ShardCodec.encode({"report": report, "kernel": kernel})


def run_sharded_scenario(
    spec: ScenarioSpec,
    *,
    shards: int,
    net_config: Optional[MessageNetConfig] = None,
    processes: Optional[bool] = None,
    kernel_stats: Optional[List[dict]] = None,
) -> ScenarioReport:
    """Run ``spec`` as ``shards`` independent keyspace slices and merge.

    Per-shard seeds come off the spec's shard stream root (the master
    chain's final draw -- see
    :meth:`~repro.scenarios.base.ScenarioRunnerBase.shard_stream_root`),
    so worker randomness extends the existing stream tree without
    shifting any stream a golden trace depends on.  ``processes=None``
    forks one worker per shard when the platform supports it and falls
    back to sequential in-process execution otherwise; either way the
    result is identical, because each worker's report is a pure function
    of its sub-spec.

    Pass a list as ``kernel_stats`` to receive one dict per worker
    (events processed, pending-heap peak, compactions, per-worker wall
    time) -- the scale bench's heap-health audit channel, kept off the
    report so the merged schema stays identical to a single run's.
    """
    if shards < 1:
        raise SimulationError(f"need at least one shard, got {shards}")
    if shards == 1:
        return run_message_scenario(spec, net_config=net_config)
    root = MessageScenarioRunner(spec, net_config=net_config).shard_stream_root()
    seeds = derive_shard_streams(root, shards)
    sub_specs = [
        slice_spec(spec, index, shards, seed=seeds[index])
        for index in range(shards)
    ]
    jobs = [(sub, net_config) for sub in sub_specs]
    encoded: List[bytes]
    use_processes = processes
    if use_processes is None:
        import multiprocessing

        use_processes = "fork" in multiprocessing.get_all_start_methods()
    if use_processes:
        import multiprocessing

        # fork (not spawn): workers inherit the loaded code and the job
        # objects only cross once, encoded results cross back once.
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(shards, context.cpu_count())) as pool:
            encoded = pool.map(_run_shard_worker, jobs)
    else:
        encoded = [_run_shard_worker(job) for job in jobs]
    payloads = [ShardCodec.decode(blob) for blob in encoded]
    if kernel_stats is not None:
        kernel_stats.extend(payload["kernel"] for payload in payloads)
    reports = [payload["report"] for payload in payloads]
    return merge_reports(reports, scenario=spec.name, seed=spec.seed)

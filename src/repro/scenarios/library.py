"""Named, ready-to-run stress scenarios (the ISSUE-2 library).

Eighteen scenarios cover the stress axes of the paper's evaluation and
the ROADMAP's "as many scenarios as you can imagine" ambition:

==================  ====================================================
``uniform-baseline``  steady uniform workload, light maintenance -- the
                      control every other scenario is compared against
``pareto-hotspot``    Pareto-0.5 data skew *and* a query hotspot on the
                      mass-carrying low key region (Sec. 4.4's extreme
                      skew, queried where the data is)
``flash-crowd``       a calm phase, then 95% of (4x more frequent)
                      queries collapse onto a 2% key window, then
                      cooldown -- cache-busting read skew
``mass-join``         a +25% arrival wave through sequential joins mid-
                      run (the Sec. 4.3 maintenance model under load)
``mass-leave``        25% of the population departs at once; repair and
                      anti-entropy carry queries through the hole
``paper-sec51-churn`` the paper's Sec. 5.1 schedule: every peer offline
                      1-5 minutes every 5-10 minutes, with periodic
                      repair -- the query-success-under-churn headline
``regional-outage``   a 20% region is cut off for five minutes, then
                      heals -- on the message backend a true transport
                      partition driving the route-repair machinery
``correlated-churn``  three waves, each severing a different random 15%
                      region with recovery gaps -- correlated failures,
                      not the independent-churn idealization
``read-write-balanced``  queries and mutations (insert/delete/update)
                      interleave at comparable rates under light churn
                      -- the data-oriented index actually being *fed*
``write-hotspot-adversarial``  a write flash-crowd: most mutations
                      collapse onto a 2% key window while queries hit
                      the same region and part of the population churns
``asymmetric-partition-writes``  an asymmetric three-way regional cut
                      with writes continuing throughout -- replicas
                      diverge measurably, then anti-entropy reconverges
                      them after the heal
``restart-storm``     half the population clean-restarts within a
                      minute while writes continue -- warm rejoins from
                      snapshots (``repro.pgrid.state``) vs the cold
                      sponsored-join baseline
``rolling-deploy``    every peer restarts exactly once, staggered
                      across the phase (a rolling upgrade); the overlay
                      must never lose quorum or acked writes
``datacenter-power-cycle``  35% of peers *crash* near-simultaneously
                      and return minutes later -- restores come from
                      the last periodic checkpoint, quantifying the
                      crash model's bounded write loss
``zipf-serving``      Zipf-ranked repeat-heavy reads entering through a
                      gateway tier with result/route caches, batched
                      issue and adaptive replication on, plus a light
                      hotspot write mix so the stale-read audit has
                      something to catch -- the serving layer's
                      headline scenario (A/B against
                      ``CachePolicy(enabled=False)`` in the bench)
``cache-coherence-storm``  delete-heavy hotspot writes hammer exactly
                      the keys the caches hold while part of the
                      population churns -- the adversarial coherence
                      test: invalidation traffic racing cached results,
                      measured as ``serving.stale_read_rate``
``geo-box-serving``   two-attribute points under a z-order codec,
                      queried with 2D boxes on a quiet overlay -- the
                      clean-room recall scenario: every box must come
                      back complete (``mdim.box_recall == 1.0``)
``correlated-hotspot-2d``  a correlated-attribute flash-crowd: one
                      hotspot coin confines *both* attributes of a
                      point (a hot diagonal block), boxes carry skewed
                      per-dimension spans (wide x narrow), and an
                      insert-leaning write stream feeds the 2D index
                      mid-storm
==================  ====================================================

Every factory takes ``n_peers`` (default 4096, the ROADMAP scale point),
``seed`` and ``duration_scale`` (time-dilates the whole scenario; CI
uses ~0.25).  ``scenario(name, ...)`` looks factories up by name;
``SCENARIOS`` is the registry that ``benchmarks/bench_scenarios.py``
iterates.  Every scenario runs on both execution backends
(``repro.scenarios.run_scenario(spec, backend="dataplane" | "message")``);
the bench script records them as separate snapshot sections.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import DomainError
from .spec import (
    CachePolicy,
    ChurnSpec,
    Hotspot,
    PartitionSpec,
    Phase,
    QueryMix,
    RestartSpec,
    ScenarioSpec,
    WriteMix,
    ZOrderCodec,
)

__all__ = [
    "SCENARIOS",
    "scenario",
    "uniform_baseline",
    "pareto_hotspot",
    "flash_crowd",
    "mass_join",
    "mass_leave",
    "paper_sec51_churn",
    "regional_outage",
    "correlated_churn",
    "read_write_balanced",
    "write_hotspot_adversarial",
    "asymmetric_partition_writes",
    "restart_storm",
    "rolling_deploy",
    "datacenter_power_cycle",
    "zipf_serving",
    "cache_coherence_storm",
    "geo_box_serving",
    "correlated_hotspot_2d",
]

#: Default population: the ROADMAP's 4096-peer scale point.
DEFAULT_N_PEERS = 4096

_BASE = dict(keys_per_peer=8, d_max=40.0, n_min=3, max_refs=4)


def _build(name, phases, n_peers, seed, duration_scale, **overrides) -> ScenarioSpec:
    params = dict(_BASE)
    params.update(overrides)
    spec = ScenarioSpec(name=name, phases=tuple(phases), n_peers=n_peers, seed=seed, **params)
    if duration_scale != 1.0:
        spec = spec.scaled(duration_scale)
    spec.validate()
    return spec


def uniform_baseline(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Steady uniform workload: the control scenario."""
    return _build(
        "uniform-baseline",
        [Phase(name="steady", duration_s=600.0, maintenance_interval_s=120.0)],
        n_peers,
        seed,
        duration_scale,
    )


def pareto_hotspot(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Pareto-0.5 data skew with queries focused where the mass is."""
    mix = QueryMix(hotspot=Hotspot(lo=0.0, hi=0.02, weight=0.7))
    return _build(
        "pareto-hotspot",
        [Phase(name="skewed", duration_s=600.0, mix=mix, maintenance_interval_s=120.0)],
        n_peers,
        seed,
        duration_scale,
        distribution="P0.5",
    )


def flash_crowd(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Calm, then a 4x query surge with 95% of traffic on a 2% window."""
    hot = QueryMix(
        point_weight=0.95,
        range_weight=0.05,
        range_span=0.02,
        hotspot=Hotspot(lo=0.40, hi=0.42, weight=0.95),
    )
    return _build(
        "flash-crowd",
        [
            Phase(name="calm", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="flash",
                duration_s=300.0,
                query_rate=16.0,
                mix=hot,
                maintenance_interval_s=120.0,
            ),
            Phase(name="cooldown", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def mass_join(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A +25% arrival wave through sequential maintenance joins."""
    return _build(
        "mass-join",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="join-wave",
                duration_s=300.0,
                join_peers=max(1, n_peers // 4),
                maintenance_interval_s=60.0,
            ),
            Phase(name="settled", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def mass_leave(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """25% of peers vanish at once; repair keeps the overlay queryable."""
    return _build(
        "mass-leave",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="exodus",
                duration_s=300.0,
                leave_peers=max(1, n_peers // 4),
                maintenance_interval_s=60.0,
            ),
            Phase(name="recovered", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def paper_sec51_churn(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """The paper's churn experiment: offline 1-5 min every 5-10 min.

    Phase one measures the static success baseline; phase two applies the
    Sec. 5.1 renewal schedule to every peer with periodic repair, and the
    report's per-bin series carries the success-rate and bandwidth
    timelines of Figs. 7-9's churn window.
    """
    return _build(
        "paper-sec51-churn",
        [
            Phase(name="static", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="churn",
                duration_s=900.0,
                churn=ChurnSpec(),  # 1-5 min offline every 5-10 min
                maintenance_interval_s=120.0,
            ),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def regional_outage(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A 20% region is cut off for five minutes, then the cut heals.

    On the message backend this is a true transport partition
    (``Network.set_partitions``): sends crossing the boundary are
    refused, which the route-repair subsystem observes as failure
    evidence -- suspects, probes, evictions and gossip replacements all
    fire.  The data plane approximates the cut as a correlated
    mass-departure of the minority region with a guaranteed return.
    """
    return _build(
        "regional-outage",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="outage",
                duration_s=300.0,
                partitions=PartitionSpec(fractions=(0.8, 0.2)),
                maintenance_interval_s=60.0,
            ),
            Phase(name="healed", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def correlated_churn(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Peers fail in correlated waves, not independently.

    Independent-churn models (``paper-sec51-churn``) understate how
    overlays die in practice: co-located peers share racks, ASes and
    power.  Three two-minute waves each cut off a *different* random 15%
    region (fresh deterministic draw per wave), separated by recovery
    gaps with faster maintenance -- repair must keep (re)converging on a
    moving target rather than absorb one stationary regime.
    """
    wave = PartitionSpec(fractions=(0.85, 0.15))
    return _build(
        "correlated-churn",
        [
            Phase(name="steady", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(name="wave-1", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="respite-1", duration_s=120.0, maintenance_interval_s=60.0),
            Phase(name="wave-2", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="respite-2", duration_s=120.0, maintenance_interval_s=60.0),
            Phase(name="wave-3", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="recovered", duration_s=240.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def read_write_balanced(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Queries and mutations interleave at comparable rates.

    The paper's index is *data-oriented*: its bandwidth and consistency
    story assumes keys are continuously inserted, updated and deleted
    while queries route around churn.  A read-only warmup pins the
    baseline; the mixed phase feeds the index at half the query rate
    (insert-leaning, so the key population grows); the settle phase
    stops the writes and lets replica sync + anti-entropy drive the
    measured divergence back down.
    """
    writes = WriteMix(
        write_rate=2.0, insert_weight=0.45, delete_weight=0.3, update_weight=0.25
    )
    light_churn = ChurnSpec(fraction=0.2)
    return _build(
        "read-write-balanced",
        [
            Phase(name="warmup", duration_s=180.0, maintenance_interval_s=120.0),
            Phase(
                name="mixed",
                duration_s=480.0,
                writes=writes,
                churn=light_churn,
                maintenance_interval_s=120.0,
            ),
            Phase(name="settle", duration_s=240.0, maintenance_interval_s=60.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def write_hotspot_adversarial(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A write flash-crowd on a 2% key window, queried while it burns.

    The adversarial composition: 90% of an 8/s mutation stream collapses
    onto one narrow region (delete-heavy, so the same partitions keep
    absorbing inserts *and* tombstones), queries focus on the same
    window, and 30% of the population churns -- the owners of the hot
    partitions must apply, fan out and reconcile the write storm while
    their replica groups blink.  Load concentration shows up in
    ``load.max_over_mean``; replica staleness in ``writes.divergence``.
    """
    hot = Hotspot(lo=0.40, hi=0.42, weight=0.9)
    writes = WriteMix(
        write_rate=8.0,
        insert_weight=0.4,
        delete_weight=0.4,
        update_weight=0.2,
        hotspot=hot,
    )
    hot_queries = QueryMix(point_weight=0.9, range_weight=0.1, range_span=0.02,
                           hotspot=hot)
    return _build(
        "write-hotspot-adversarial",
        [
            Phase(name="calm", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(
                name="write-storm",
                duration_s=360.0,
                mix=hot_queries,
                writes=writes,
                churn=ChurnSpec(fraction=0.3),
                maintenance_interval_s=60.0,
            ),
            Phase(name="cooldown", duration_s=300.0, maintenance_interval_s=60.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def asymmetric_partition_writes(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Writes continue through an asymmetric three-way regional cut.

    The population splits 75/15/10 for five minutes while mutations keep
    arriving.  On the message backend the cut is a real transport
    partition: writes originating in minority regions cannot reach
    majority-side owners (refused connects feed route repair), replica
    sync cannot cross the boundary, and the replica groups straddling
    the cut diverge.  The data plane approximates the minority regions
    as offline, so its owners simply miss five minutes of writes.  The
    heal phase runs fast maintenance and measures how far anti-entropy
    pulls the divergence back down.
    """
    writes = WriteMix(
        write_rate=3.0, insert_weight=0.5, delete_weight=0.3, update_weight=0.2
    )
    return _build(
        "asymmetric-partition-writes",
        [
            Phase(name="steady", duration_s=240.0, writes=writes,
                  maintenance_interval_s=120.0),
            Phase(
                name="cut",
                duration_s=300.0,
                writes=writes,
                partitions=PartitionSpec(fractions=(0.75, 0.15, 0.10)),
                maintenance_interval_s=60.0,
            ),
            Phase(name="heal", duration_s=360.0, writes=writes,
                  maintenance_interval_s=60.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def restart_storm(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Half the population clean-restarts within a minute, writes on.

    The headline persistence scenario: 50% of the peers shut down
    cleanly (snapshot taken at the shutdown instant) inside a one-minute
    window and stay down 30-90s each, while a 2/s mutation stream keeps
    feeding the index.  With durability enabled every returnee
    warm-rejoins from its snapshot and reconciles only the delta via
    anti-entropy; with ``DurabilityPolicy(enabled=False)`` each one pays
    a full cold sponsored join.  The report's ``recovery`` section
    (time-to-converged-divergence, recovery maintenance bytes,
    lost-acked-writes, tombstone resurrections) is the warm-vs-cold
    scoreboard.

    All three restart scenarios provision ``tombstone_ttl_s`` above the
    wire default: a delete acked at the storm's start must still be
    enforceable against a peer that restored a pre-delete snapshot and
    only reconciles via slow anti-entropy near the scenario end, so the
    certificate TTL has to cover the whole delete-to-audit window.
    """
    return _build(
        "restart-storm",
        [
            Phase(name="steady", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(
                name="storm",
                duration_s=300.0,
                writes=WriteMix(write_rate=2.0),
                restarts=RestartSpec(
                    fraction=0.5,
                    min_down_s=30.0,
                    max_down_s=90.0,
                    stagger_s=60.0,
                    crash_fraction=0.0,
                ),
                maintenance_interval_s=60.0,
            ),
            Phase(name="recovery", duration_s=360.0, maintenance_interval_s=60.0),
        ],
        n_peers,
        seed,
        duration_scale,
        tombstone_ttl_s=1200.0,
    )


def rolling_deploy(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Every peer restarts exactly once, staggered across the phase.

    The rolling-upgrade shape: restarts spread over seven minutes with
    short 20-40s downtimes, so only a thin slice of the population is
    ever down at once -- the overlay must stay continuously queryable
    and lose no acknowledged write.  Clean shutdowns throughout (a
    deploy flushes state), so with durability on this is the best case
    for warm rejoin.
    """
    return _build(
        "rolling-deploy",
        [
            Phase(name="steady", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(
                name="rolling",
                duration_s=480.0,
                writes=WriteMix(write_rate=1.0),
                restarts=RestartSpec(
                    fraction=1.0,
                    min_down_s=20.0,
                    max_down_s=40.0,
                    stagger_s=420.0,
                    crash_fraction=0.0,
                ),
                maintenance_interval_s=60.0,
            ),
            Phase(name="settled", duration_s=240.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
        tombstone_ttl_s=1200.0,
    )


def datacenter_power_cycle(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """35% of peers crash near-simultaneously, then power back on.

    The crash half of the model: no shutdown snapshot, so every returnee
    restores the last *periodic* checkpoint (up to
    ``DurabilityPolicy.snapshot_interval_s`` stale) and loses in-flight
    writes and syncs after it.  Writes run at 2/s before and through the
    outage, so the report's ``recovery`` audit quantifies exactly how
    many acknowledged writes the crash window can eat and whether any
    tombstoned key resurrects from a stale snapshot.
    """
    return _build(
        "datacenter-power-cycle",
        [
            Phase(
                name="steady",
                duration_s=240.0,
                writes=WriteMix(write_rate=2.0),
                maintenance_interval_s=120.0,
            ),
            Phase(
                name="power-cycle",
                duration_s=300.0,
                restarts=RestartSpec(
                    fraction=0.35,
                    min_down_s=60.0,
                    max_down_s=120.0,
                    stagger_s=10.0,
                    crash_fraction=1.0,
                ),
                maintenance_interval_s=60.0,
            ),
            Phase(name="recovery", duration_s=360.0, maintenance_interval_s=60.0),
        ],
        n_peers,
        seed,
        duration_scale,
        tombstone_ttl_s=1200.0,
    )


def zipf_serving(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Zipf repeat-heavy reads through a gateway tier, caches on.

    The serving layer's headline scenario: queries enter through 16
    front-end gateways, 95% of them drawn Zipf(1.1) from 64 popular
    workload keys inside a 4% hotspot window, released in batches of
    four.  Result caches absorb the repeats, route caches short-circuit
    the trie walk for the rest, and the hot owners grant helper
    replicas that the gateways' route rotation actually spreads load
    onto.  A light hotspot write mix runs through the storm so
    invalidation traffic and the ``stale_read_rate`` audit are
    exercised, not just idle.  The bench script re-runs this spec with
    ``CachePolicy(enabled=False)`` (same gateways, no caches) -- the
    cache-on run must beat that baseline on p99 latency and per-peer
    load Gini.
    """
    hot = Hotspot(lo=0.30, hi=0.34, weight=0.95)
    zipf = QueryMix(
        point_weight=1.0,
        range_weight=0.0,
        hotspot=hot,
        batch_size=4,
        zipf_keys=64,
        zipf_exponent=1.1,
    )
    writes = WriteMix(
        write_rate=1.0,
        insert_weight=0.3,
        delete_weight=0.4,
        update_weight=0.3,
        hotspot=hot,
    )
    return _build(
        "zipf-serving",
        [
            Phase(name="warmup", duration_s=180.0, maintenance_interval_s=120.0),
            Phase(
                name="zipf-storm",
                duration_s=480.0,
                query_rate=16.0,
                mix=zipf,
                writes=writes,
                maintenance_interval_s=120.0,
            ),
            Phase(
                name="tail",
                duration_s=240.0,
                query_rate=8.0,
                mix=zipf,
                maintenance_interval_s=120.0,
            ),
        ],
        n_peers,
        seed,
        duration_scale,
        cache=CachePolicy(
            result_ttl_s=180.0,
            route_ttl_s=300.0,
            hot_threshold=48,
            replica_boost=2,
            front_ends=16,
        ),
    )


def cache_coherence_storm(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Delete-heavy hotspot writes race the caches that hold those keys.

    The adversarial coherence composition: a read phase warms every
    gateway cache on 48 popular keys with a *long* result TTL (180s --
    deliberately useless as a coherence mechanism, so eager write
    invalidation has to do all the work), then a 6/s delete-leaning
    mutation stream collapses onto the same 2% window while a quarter
    of the population churns.  Every churned-out replica that misses a
    ``replica_sync`` is a chance for some cache to keep serving a key
    the index already deleted; the measured ``serving.stale_read_rate``
    is exactly how often that happened.
    """
    hot = Hotspot(lo=0.50, hi=0.52, weight=0.95)
    reads = QueryMix(
        point_weight=1.0,
        range_weight=0.0,
        hotspot=hot,
        batch_size=8,
        zipf_keys=48,
        zipf_exponent=1.0,
    )
    writes = WriteMix(
        write_rate=6.0,
        insert_weight=0.2,
        delete_weight=0.55,
        update_weight=0.25,
        hotspot=hot,
    )
    return _build(
        "cache-coherence-storm",
        [
            Phase(
                name="warm-cache",
                duration_s=240.0,
                query_rate=12.0,
                mix=reads,
                maintenance_interval_s=120.0,
            ),
            Phase(
                name="write-storm",
                duration_s=360.0,
                query_rate=12.0,
                mix=reads,
                writes=writes,
                churn=ChurnSpec(fraction=0.25),
                maintenance_interval_s=60.0,
            ),
            Phase(
                name="drain",
                duration_s=240.0,
                query_rate=6.0,
                mix=reads,
                maintenance_interval_s=60.0,
            ),
        ],
        n_peers,
        seed,
        duration_scale,
        cache=CachePolicy(
            result_ttl_s=180.0,
            route_ttl_s=240.0,
            hot_threshold=40,
            replica_boost=2,
            front_ends=24,
        ),
    )


def geo_box_serving(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """2D box queries over z-order keys.

    The multi-dimensional headline: every key interleaves two
    attributes (think latitude/longitude quantized to the unit square)
    under a :class:`~repro.scenarios.spec.ZOrderCodec`, and two thirds
    of the traffic is 2%-per-side *box* queries, each decomposed into
    at most ``split_budget`` z-order ranges and served through the
    unchanged range machinery.  A mild hotspot concentrates traffic on
    a popular region (correlated across both attributes).  No
    ``CachePolicy``: point targets are fresh continuous draws that
    never repeat at 26-bit cell resolution, so result caches are
    structurally hitless here and the serving gate (caches must *earn*
    their machinery) would rightly reject them.

    Deliberately quiet -- no churn, writes, restarts or maintenance --
    so the brute-force recall audit has a clean ground truth: the
    report must show ``mdim.box_recall == 1.0`` (the acceptance gate
    ``benchmarks/check_regression.py`` enforces) and
    ``mdim.ranges_per_box_max`` within the codec's split budget.
    """
    mix = QueryMix(
        point_weight=0.35,
        range_weight=0.65,
        range_span=0.02,
        hotspot=Hotspot(lo=0.55, hi=0.60, weight=0.5),
    )
    return _build(
        "geo-box-serving",
        [
            Phase(name="warm", duration_s=180.0, query_rate=4.0, mix=mix),
            Phase(name="geo-serve", duration_s=600.0, query_rate=8.0, mix=mix),
        ],
        n_peers,
        seed,
        duration_scale,
        codec=ZOrderCodec(dims=2),
    )


def correlated_hotspot_2d(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A correlated-attribute flash-crowd with skewed box selectivity.

    The stress half of the mdim pair: during the storm one hotspot coin
    confines *both* attributes of 90% of draws to a 4% interval -- a
    hot diagonal block whose z-order cells share long prefixes, so a
    few trie partitions absorb most of the traffic (watch
    ``load.max_over_mean``).  The box minority carries deliberately
    skewed per-dimension spans (10% x 0.4%: wide in one attribute,
    narrow in the other -- the shape that forces litmax/bigmin to
    split hardest), and an insert-leaning hotspot write stream feeds
    the 2D index mid-storm.  No deletes: the recall oracle is the
    initial workload universe, and deleted keys would turn honest
    misses into phantom recall loss.
    """
    hot = Hotspot(lo=0.48, hi=0.52, weight=0.9)
    storm = QueryMix(
        point_weight=0.75,
        range_weight=0.25,
        range_span=0.02,
        box_spans=(0.10, 0.004),
        hotspot=hot,
    )
    writes = WriteMix(
        write_rate=2.0,
        insert_weight=0.7,
        delete_weight=0.0,
        update_weight=0.3,
        hotspot=hot,
    )
    return _build(
        "correlated-hotspot-2d",
        [
            Phase(name="calm", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(
                name="hot-storm",
                duration_s=360.0,
                query_rate=8.0,
                mix=storm,
                writes=writes,
                maintenance_interval_s=120.0,
            ),
            Phase(name="cooldown", duration_s=240.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
        codec=ZOrderCodec(dims=2),
    )


#: Registry iterated by ``benchmarks/bench_scenarios.py`` and the tests.
SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "uniform-baseline": uniform_baseline,
    "pareto-hotspot": pareto_hotspot,
    "flash-crowd": flash_crowd,
    "mass-join": mass_join,
    "mass-leave": mass_leave,
    "paper-sec51-churn": paper_sec51_churn,
    "regional-outage": regional_outage,
    "correlated-churn": correlated_churn,
    "read-write-balanced": read_write_balanced,
    "write-hotspot-adversarial": write_hotspot_adversarial,
    "asymmetric-partition-writes": asymmetric_partition_writes,
    "restart-storm": restart_storm,
    "rolling-deploy": rolling_deploy,
    "datacenter-power-cycle": datacenter_power_cycle,
    "zipf-serving": zipf_serving,
    "cache-coherence-storm": cache_coherence_storm,
    "geo-box-serving": geo_box_serving,
    "correlated-hotspot-2d": correlated_hotspot_2d,
}


def scenario(
    name: str,
    n_peers: int = DEFAULT_N_PEERS,
    *,
    seed: int = 20050830,
    duration_scale: float = 1.0,
) -> ScenarioSpec:
    """Build a library scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise DomainError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return factory(n_peers, seed=seed, duration_scale=duration_scale)

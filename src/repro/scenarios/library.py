"""Named, ready-to-run stress scenarios (the ISSUE-2 library).

Eight scenarios cover the stress axes of the paper's evaluation and the
ROADMAP's "as many scenarios as you can imagine" ambition:

==================  ====================================================
``uniform-baseline``  steady uniform workload, light maintenance -- the
                      control every other scenario is compared against
``pareto-hotspot``    Pareto-0.5 data skew *and* a query hotspot on the
                      mass-carrying low key region (Sec. 4.4's extreme
                      skew, queried where the data is)
``flash-crowd``       a calm phase, then 95% of (4x more frequent)
                      queries collapse onto a 2% key window, then
                      cooldown -- cache-busting read skew
``mass-join``         a +25% arrival wave through sequential joins mid-
                      run (the Sec. 4.3 maintenance model under load)
``mass-leave``        25% of the population departs at once; repair and
                      anti-entropy carry queries through the hole
``paper-sec51-churn`` the paper's Sec. 5.1 schedule: every peer offline
                      1-5 minutes every 5-10 minutes, with periodic
                      repair -- the query-success-under-churn headline
``regional-outage``   a 20% region is cut off for five minutes, then
                      heals -- on the message backend a true transport
                      partition driving the route-repair machinery
``correlated-churn``  three waves, each severing a different random 15%
                      region with recovery gaps -- correlated failures,
                      not the independent-churn idealization
==================  ====================================================

Every factory takes ``n_peers`` (default 4096, the ROADMAP scale point),
``seed`` and ``duration_scale`` (time-dilates the whole scenario; CI
uses ~0.25).  ``scenario(name, ...)`` looks factories up by name;
``SCENARIOS`` is the registry that ``benchmarks/bench_scenarios.py``
iterates.  Every scenario runs on both execution backends
(``repro.scenarios.run_scenario(spec, backend="dataplane" | "message")``);
the bench script records them as separate snapshot sections.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..exceptions import DomainError
from .spec import ChurnSpec, Hotspot, PartitionSpec, Phase, QueryMix, ScenarioSpec

__all__ = [
    "SCENARIOS",
    "scenario",
    "uniform_baseline",
    "pareto_hotspot",
    "flash_crowd",
    "mass_join",
    "mass_leave",
    "paper_sec51_churn",
    "regional_outage",
    "correlated_churn",
]

#: Default population: the ROADMAP's 4096-peer scale point.
DEFAULT_N_PEERS = 4096

_BASE = dict(keys_per_peer=8, d_max=40.0, n_min=3, max_refs=4)


def _build(name, phases, n_peers, seed, duration_scale, **overrides) -> ScenarioSpec:
    params = dict(_BASE)
    params.update(overrides)
    spec = ScenarioSpec(name=name, phases=tuple(phases), n_peers=n_peers, seed=seed, **params)
    if duration_scale != 1.0:
        spec = spec.scaled(duration_scale)
    spec.validate()
    return spec


def uniform_baseline(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Steady uniform workload: the control scenario."""
    return _build(
        "uniform-baseline",
        [Phase(name="steady", duration_s=600.0, maintenance_interval_s=120.0)],
        n_peers,
        seed,
        duration_scale,
    )


def pareto_hotspot(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Pareto-0.5 data skew with queries focused where the mass is."""
    mix = QueryMix(hotspot=Hotspot(lo=0.0, hi=0.02, weight=0.7))
    return _build(
        "pareto-hotspot",
        [Phase(name="skewed", duration_s=600.0, mix=mix, maintenance_interval_s=120.0)],
        n_peers,
        seed,
        duration_scale,
        distribution="P0.5",
    )


def flash_crowd(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Calm, then a 4x query surge with 95% of traffic on a 2% window."""
    hot = QueryMix(
        point_weight=0.95,
        range_weight=0.05,
        range_span=0.02,
        hotspot=Hotspot(lo=0.40, hi=0.42, weight=0.95),
    )
    return _build(
        "flash-crowd",
        [
            Phase(name="calm", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="flash",
                duration_s=300.0,
                query_rate=16.0,
                mix=hot,
                maintenance_interval_s=120.0,
            ),
            Phase(name="cooldown", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def mass_join(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A +25% arrival wave through sequential maintenance joins."""
    return _build(
        "mass-join",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="join-wave",
                duration_s=300.0,
                join_peers=max(1, n_peers // 4),
                maintenance_interval_s=60.0,
            ),
            Phase(name="settled", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def mass_leave(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """25% of peers vanish at once; repair keeps the overlay queryable."""
    return _build(
        "mass-leave",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="exodus",
                duration_s=300.0,
                leave_peers=max(1, n_peers // 4),
                maintenance_interval_s=60.0,
            ),
            Phase(name="recovered", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def paper_sec51_churn(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """The paper's churn experiment: offline 1-5 min every 5-10 min.

    Phase one measures the static success baseline; phase two applies the
    Sec. 5.1 renewal schedule to every peer with periodic repair, and the
    report's per-bin series carries the success-rate and bandwidth
    timelines of Figs. 7-9's churn window.
    """
    return _build(
        "paper-sec51-churn",
        [
            Phase(name="static", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="churn",
                duration_s=900.0,
                churn=ChurnSpec(),  # 1-5 min offline every 5-10 min
                maintenance_interval_s=120.0,
            ),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def regional_outage(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """A 20% region is cut off for five minutes, then the cut heals.

    On the message backend this is a true transport partition
    (``Network.set_partitions``): sends crossing the boundary are
    refused, which the route-repair subsystem observes as failure
    evidence -- suspects, probes, evictions and gossip replacements all
    fire.  The data plane approximates the cut as a correlated
    mass-departure of the minority region with a guaranteed return.
    """
    return _build(
        "regional-outage",
        [
            Phase(name="steady", duration_s=300.0, maintenance_interval_s=120.0),
            Phase(
                name="outage",
                duration_s=300.0,
                partitions=PartitionSpec(fractions=(0.8, 0.2)),
                maintenance_interval_s=60.0,
            ),
            Phase(name="healed", duration_s=300.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


def correlated_churn(
    n_peers: int = DEFAULT_N_PEERS, *, seed: int = 20050830, duration_scale: float = 1.0
) -> ScenarioSpec:
    """Peers fail in correlated waves, not independently.

    Independent-churn models (``paper-sec51-churn``) understate how
    overlays die in practice: co-located peers share racks, ASes and
    power.  Three two-minute waves each cut off a *different* random 15%
    region (fresh deterministic draw per wave), separated by recovery
    gaps with faster maintenance -- repair must keep (re)converging on a
    moving target rather than absorb one stationary regime.
    """
    wave = PartitionSpec(fractions=(0.85, 0.15))
    return _build(
        "correlated-churn",
        [
            Phase(name="steady", duration_s=240.0, maintenance_interval_s=120.0),
            Phase(name="wave-1", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="respite-1", duration_s=120.0, maintenance_interval_s=60.0),
            Phase(name="wave-2", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="respite-2", duration_s=120.0, maintenance_interval_s=60.0),
            Phase(name="wave-3", duration_s=120.0, partitions=wave,
                  maintenance_interval_s=60.0),
            Phase(name="recovered", duration_s=240.0, maintenance_interval_s=120.0),
        ],
        n_peers,
        seed,
        duration_scale,
    )


#: Registry iterated by ``benchmarks/bench_scenarios.py`` and the tests.
SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "uniform-baseline": uniform_baseline,
    "pareto-hotspot": pareto_hotspot,
    "flash-crowd": flash_crowd,
    "mass-join": mass_join,
    "mass-leave": mass_leave,
    "paper-sec51-churn": paper_sec51_churn,
    "regional-outage": regional_outage,
    "correlated-churn": correlated_churn,
}


def scenario(
    name: str,
    n_peers: int = DEFAULT_N_PEERS,
    *,
    seed: int = 20050830,
    duration_scale: float = 1.0,
) -> ScenarioSpec:
    """Build a library scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise DomainError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return factory(n_peers, seed=seed, duration_scale=duration_scale)

"""Structural invariants a P-Grid overlay must keep under stress.

Three properties must survive *any* sequence of churn, maintenance and
membership events (they are what the paper's Sec. 2.1 structure means
operationally):

1. **Prefix-complete partition** -- the distinct peer paths tile the key
   space exactly: pairwise disjoint dyadic intervals whose widths sum to
   the whole space (:func:`check_partition_tiling`).
2. **Complementary routing** -- every routing reference at level ``l``
   of a peer with path ``p`` points at a peer whose path lies in the
   complementary subtree ``p[:l] + (1 - p[l])``, and no references exist
   beyond the peer's own depth (:func:`check_routing_complementarity`).
3. **Live key coverage** -- every key stored anywhere in a partition
   whose replica group has at least one online member is also stored on
   at least one *online* member, i.e. churn never silently strands data
   behind offline replicas once anti-entropy has run
   (:func:`live_key_coverage`, which returns the covered/total counts so
   callers can decide how converged they expect the overlay to be).

The randomized invariant test suite (``tests/test_scenario_invariants.py``)
drives generated churn/maintenance sequences against these checks; the
scenario runner reports the coverage ratio as part of replication health.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..exceptions import PartitionError, RoutingError
from ..pgrid.bits import Path
from ..pgrid.keyspace import KEY_BITS
from ..pgrid.network import PGridNetwork

__all__ = [
    "check_partition_tiling",
    "check_routing_complementarity",
    "live_key_coverage",
    "check_replica_divergence",
    "check_invariants",
]


def check_partition_tiling(
    network: PGridNetwork, *, allow_refinement: bool = False
) -> None:
    """Assert the peers' paths form a prefix-complete partition.

    Raises :class:`~repro.exceptions.PartitionError` if the distinct
    paths overlap or leave a gap.  Exact integer arithmetic: each path of
    length ``l`` covers ``2^(KEY_BITS - l)`` keys; a tiling covers every
    key exactly once.

    With ``allow_refinement=True`` the check tolerates *mid-refinement*
    states: maintenance-driven splits migrate a replica group one member
    at a time, so a parent path (say ``0``) may coexist with its
    children (``00``/``01``) until every member has re-specialized.
    Because paths are dyadic, two path intervals either nest or are
    disjoint -- so the relaxed invariant is still exact: the union of
    intervals must cover the key space with no *gap*, and any overlap
    must be an ancestor/descendant nesting (arbitrary overlap between
    unrelated partitions stays an error).
    """
    if not network.peers:
        raise PartitionError("empty overlay has no partition")
    paths = sorted({peer.path for peer in network.peers.values()})
    if allow_refinement:
        # Sort by (lo, widest-first) and sweep a cursor: a range starting
        # past the cursor is a gap; one starting at/below it either nests
        # inside the running cover (dyadic intervals cannot partially
        # overlap) or extends it.
        ranges = sorted(
            (path.key_range(KEY_BITS) for path in paths),
            key=lambda r: (r[0], -r[1]),
        )
        cursor = 0
        for lo, hi in ranges:
            if lo > cursor:
                raise PartitionError(
                    f"partition gap: keys {cursor}..{lo} uncovered"
                )
            cursor = max(cursor, hi)
        if cursor != (1 << KEY_BITS):
            raise PartitionError(
                f"partitions cover {cursor} of {1 << KEY_BITS} keys"
            )
        return
    covered = 0
    previous_hi = 0
    for path in paths:
        lo, hi = path.key_range(KEY_BITS)
        if lo != previous_hi:
            raise PartitionError(
                f"partition {path} starts at {lo}, expected {previous_hi} "
                f"({'overlap' if lo < previous_hi else 'gap'})"
            )
        covered += hi - lo
        previous_hi = hi
    if covered != (1 << KEY_BITS):
        raise PartitionError(
            f"partitions cover {covered} of {1 << KEY_BITS} keys"
        )


def check_routing_complementarity(network: PGridNetwork) -> None:
    """Assert every routing reference targets the complementary subtree.

    Raises :class:`~repro.exceptions.RoutingError` on a dangling
    reference, a reference outside the complementary subtree, or a
    populated level at or beyond the peer's own path length.
    """
    for peer in network.peers.values():
        for level, refs in peer.routing.levels.items():
            if level >= peer.path.length:
                if refs:
                    raise RoutingError(
                        f"peer {peer.peer_id} (path {peer.path}) has references "
                        f"at level {level} beyond its depth"
                    )
                continue
            comp = peer.path.prefix(level).extend(1 - peer.path.bit(level))
            for ref in refs:
                other = network.peers.get(ref)
                if other is None:
                    raise RoutingError(
                        f"peer {peer.peer_id} references unknown peer {ref} "
                        f"at level {level}"
                    )
                if not comp.is_prefix_of(other.path):
                    raise RoutingError(
                        f"peer {peer.peer_id} level-{level} reference {ref} "
                        f"(path {other.path}) lies outside complementary "
                        f"subtree {comp}"
                    )


def live_key_coverage(network: PGridNetwork) -> Tuple[int, int]:
    """``(covered, total)`` live-coverage counts over replica groups.

    ``total`` counts the distinct keys stored anywhere in a replica
    group that has at least one online member; ``covered`` counts those
    also held by at least one *online* member of that group.  Groups
    that are entirely offline are excluded -- their data is unreachable
    but not *lost*, and comes back when a replica returns.
    """
    covered = 0
    total = 0
    for group in network.partitions().values():
        members = [network.peers[pid] for pid in group]
        online = [p for p in members if p.online]
        if not online:
            continue
        union: Set[int] = set()
        for p in members:
            union.update(p.keys)
        live: Set[int] = set()
        for p in online:
            live.update(p.keys)
        total += len(union)
        covered += len(union & live)
    return covered, total


def check_replica_divergence(
    network: PGridNetwork, *, max_mean: float = 0.0
) -> None:
    """Assert mean replica divergence is within ``max_mean``.

    The write-path invariant: once anti-entropy has converged (every
    online replica reconciled, delete tombstones propagated), no replica
    may be missing keys its group holds -- divergence collapses to 0.
    Mid-run, callers pass the slack they expect from in-flight writes.
    Raises :class:`~repro.exceptions.PartitionError` on a breach.
    """
    from ..pgrid.replication import divergence_stats

    groups = network.partitions()
    stats = divergence_stats(
        [network.peers[pid].keys for pid in sorted(groups[path])]
        for path in sorted(groups)
    )
    if stats["mean"] > max_mean:
        raise PartitionError(
            f"replica divergence {stats['mean']:.6f} exceeds {max_mean:g} "
            f"({stats['stale_replicas']} of {stats['replicas']} replicas stale, "
            f"worst {stats['max']:.6f})"
        )


def check_invariants(network: PGridNetwork, *, require_full_coverage: bool = False) -> None:
    """Run all structural checks; optionally require full live coverage.

    Coverage is only a hard invariant once anti-entropy has converged
    (offline replicas may lag in between), so it is opt-in.
    """
    check_partition_tiling(network)
    check_routing_complementarity(network)
    if require_full_coverage:
        covered, total = live_key_coverage(network)
        if covered != total:
            raise PartitionError(
                f"live replicas cover {covered} of {total} keys owned by "
                f"partitions with online members"
            )

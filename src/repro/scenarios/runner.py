"""Compile a :class:`ScenarioSpec` onto simulator events and execute it.

The runner is the bridge between the declarative scenario layer and the
operational overlay: it materializes a
:class:`~repro.pgrid.network.PGridNetwork` for the spec's workload,
translates every phase into :class:`~repro.simnet.engine.Simulator`
events (query arrivals, churn processes via
:func:`repro.simnet.churn.start_churn`, maintenance ticks, membership
waves), runs the event loop once, and assembles a
:class:`~repro.scenarios.report.ScenarioReport`.

Design notes
------------
* The **simulator provides the timeline**, not message latency: queries
  execute synchronously on the data plane (the PR-1 fast paths make a
  lookup ~10us even at N=4096), while churn, arrivals and maintenance
  genuinely interleave on the simulated clock.  This is what makes
  N=4096 scenarios run in seconds where the full message-level simnet
  would take minutes.
* **Determinism**: one master RNG seeds independent per-concern streams
  (workload, overlay build, queries, churn, membership, maintenance) in
  a fixed order; the simulator breaks ties by sequence number; no
  iteration order depends on hash randomization.  The same spec + seed
  therefore reproduces a byte-identical report (golden-trace tested).
* **Bandwidth** uses the nominal byte model of
  :mod:`repro.scenarios.report` (`HEADER_BYTES` per message, `KEY_BYTES`
  per shipped key).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set

from .._util import make_rng, mean, std
from ..exceptions import RoutingError
from ..pgrid.maintenance import repair_routes, sequential_join
from ..pgrid.network import PGridNetwork
from ..pgrid.replication import anti_entropy_sweep
from ..simnet.churn import start_churn
from ..simnet.engine import Simulator
from ..workloads.datasets import workload_keys
from ..workloads.distributions import distribution
from ..workloads.queries import POINT, QuerySampler
from .invariants import live_key_coverage
from .report import HEADER_BYTES, KEY_BYTES, ScenarioReport
from .spec import Phase, ScenarioSpec

__all__ = ["ScenarioRunner", "run_scenario"]


class _Tally:
    """Per-bin and per-phase accumulation during a run."""

    def __init__(self, bin_s: float, n_phases: int):
        self.bin_s = bin_s
        # bin -> [issued, succeeded, hops_on_point_success, point_successes, bytes]
        self.query_bins: Dict[int, List[float]] = defaultdict(lambda: [0, 0, 0, 0, 0])
        self.maint_bins: Dict[int, float] = defaultdict(float)
        # bin -> (online, partition_availability, mean_online_replicas)
        self.samples: Dict[int, tuple] = {}
        self.phase_counters: List[Dict[str, float]] = [
            {"queries": 0, "successes": 0, "points": 0, "ranges": 0, "bytes": 0}
            for _ in range(n_phases)
        ]
        self.load: Dict[int, int] = defaultdict(int)
        self.messages = 0
        self.query_bytes = 0
        self.maint_bytes = 0
        self.repairs = 0
        self.keys_moved = 0
        self.range_incomplete = 0
        self.churn_transitions = 0
        self.joins = 0
        self.failed_joins = 0
        self.leaves = 0

    def _bin(self, t: float) -> int:
        return int(t // self.bin_s)

    def record_query(
        self,
        t: float,
        phase_idx: int,
        *,
        kind: str,
        success: bool,
        hops: int,
        messages: int,
        size: int,
    ) -> None:
        row = self.query_bins[self._bin(t)]
        row[0] += 1
        counters = self.phase_counters[phase_idx]
        counters["queries"] += 1
        counters["bytes"] += size
        if kind == POINT:
            counters["points"] += 1
        else:
            counters["ranges"] += 1
        if success:
            row[1] += 1
            counters["successes"] += 1
            if kind == POINT:
                row[2] += hops
                row[3] += 1
        row[4] += size
        self.messages += messages
        self.query_bytes += size

    def record_maintenance(self, t: float, *, messages: int, size: int) -> None:
        self.maint_bins[self._bin(t)] += size
        self.messages += messages
        self.maint_bytes += size

    def record_sample(
        self, t: float, online: int, availability: float, mean_online_replicas: float
    ) -> None:
        self.samples[self._bin(t)] = (online, availability, mean_online_replicas)


class ScenarioRunner:
    """Executes one :class:`ScenarioSpec` over a fresh overlay.

    After :meth:`run` the overlay and simulator remain available as
    ``self.network`` / ``self.simulator`` for inspection (the invariant
    tests use this to audit the post-scenario structure).
    """

    #: Safety bound on simulator events per run.
    MAX_EVENTS = 20_000_000

    def __init__(self, spec: ScenarioSpec):
        spec.validate()
        self.spec = spec
        self.network: Optional[PGridNetwork] = None
        self.simulator: Optional[Simulator] = None

    # -- public API --------------------------------------------------------

    def run(self) -> ScenarioReport:
        spec = self.spec
        master = make_rng(spec.seed)
        # Fixed derivation order -- append new streams at the end only,
        # or every golden trace changes.
        keys_rng = make_rng(master.randrange(2**31))
        build_rng = make_rng(master.randrange(2**31))
        query_rng = make_rng(master.randrange(2**31))
        churn_rng = make_rng(master.randrange(2**31))
        member_rng = make_rng(master.randrange(2**31))
        maint_rng = make_rng(master.randrange(2**31))

        peer_keys = workload_keys(
            spec.distribution, spec.n_peers, spec.keys_per_peer, seed=keys_rng
        )
        flat = [k for keys in peer_keys for k in keys]
        net = PGridNetwork.ideal(
            flat,
            spec.n_peers,
            d_max=spec.d_max,
            n_min=spec.n_min,
            max_refs=spec.max_refs,
            rng=build_rng,
        )
        sim = Simulator()
        self.network = net
        self.simulator = sim

        tally = _Tally(spec.report_bin_s, len(spec.phases))
        departed: Set[int] = set()
        dist = distribution(spec.distribution)
        boundaries = spec.boundaries()
        total_end = spec.duration_s

        # Join id allocation shared by all phase closures.
        id_box = [max(net.peers) + 1 if net.peers else 0]

        def alloc_id() -> int:
            pid = id_box[0]
            id_box[0] += 1
            return pid

        self._alloc_id = alloc_id

        # -- per-phase compilation ----------------------------------------
        for idx, (phase, (start, end)) in enumerate(zip(spec.phases, boundaries)):
            sampler = phase.mix.to_sampler()
            sim.schedule(
                start,
                self._make_phase_start(
                    sim, net, tally, phase, idx, start, end,
                    sampler=sampler,
                    dist=dist,
                    departed=departed,
                    query_rng=query_rng,
                    churn_rng=churn_rng,
                    member_rng=member_rng,
                    maint_rng=maint_rng,
                ),
            )

        # -- per-bin replication-health sampling ---------------------------
        def sample() -> None:
            online = 0
            groups_alive = 0
            groups = 0
            live_counts: List[int] = []
            for group in net.partitions().values():
                groups += 1
                live = sum(1 for pid in group if net.peers[pid].online)
                online += live
                live_counts.append(live)
                if live:
                    groups_alive += 1
            availability = groups_alive / groups if groups else 0.0
            tally.record_sample(
                sim.now, online, availability, mean(live_counts) if live_counts else 0.0
            )
            if sim.now < total_end:
                sim.schedule(spec.report_bin_s, sample)

        sim.schedule(0.0, sample)

        sim.run_until(total_end, max_events=self.MAX_EVENTS)
        return self._assemble(net, tally, boundaries)

    # -- phase machinery ---------------------------------------------------

    def _make_phase_start(
        self,
        sim: Simulator,
        net: PGridNetwork,
        tally: _Tally,
        phase: Phase,
        idx: int,
        start: float,
        end: float,
        *,
        sampler: QuerySampler,
        dist,
        departed: Set[int],
        query_rng,
        churn_rng,
        member_rng,
        maint_rng,
    ) -> Callable[[], None]:
        spec = self.spec

        def begin_phase() -> None:
            # -- membership wave at the boundary ---------------------------
            if phase.leave_peers:
                online_ids = sorted(
                    pid for pid, p in net.peers.items() if p.online and pid not in departed
                )
                leaving = member_rng.sample(
                    online_ids, min(phase.leave_peers, len(online_ids))
                )
                for pid in leaving:
                    net.peers[pid].online = False
                    departed.add(pid)
                tally.leaves += len(leaving)
            for _ in range(phase.join_peers):
                pid = self._alloc_id()
                keys = dist.sample_keys(spec.keys_per_peer, member_rng)
                try:
                    stats = sequential_join(
                        net,
                        pid,
                        keys,
                        d_max=spec.d_max,
                        n_min=spec.n_min,
                        rng=member_rng,
                        max_refs=spec.max_refs,
                    )
                except RoutingError:
                    tally.failed_joins += 1
                    continue
                tally.joins += 1
                tally.record_maintenance(
                    sim.now, messages=stats.messages, size=stats.messages * HEADER_BYTES
                )

            # -- churn processes for this phase ----------------------------
            if phase.churn is not None:
                candidates = sorted(
                    pid for pid, p in net.peers.items() if p.online and pid not in departed
                )
                count = max(1, round(phase.churn.fraction * len(candidates)))
                if count < len(candidates):
                    chosen = churn_rng.sample(candidates, count)
                else:
                    chosen = candidates

                def make_toggle(peer):
                    def toggle(online: bool) -> None:
                        peer.online = online
                        tally.churn_transitions += 1

                    return toggle

                start_churn(
                    sim,
                    [make_toggle(net.peers[pid]) for pid in chosen],
                    config=phase.churn.to_config(),
                    until=end,
                    stagger=True,
                    rng=churn_rng,
                )

            # -- maintenance cadence ---------------------------------------
            if phase.maintenance_interval_s is not None:
                interval = phase.maintenance_interval_s

                def maintenance_tick() -> None:
                    if sim.now >= end:
                        return
                    repaired = repair_routes(net, rng=maint_rng)
                    moved = anti_entropy_sweep(net, rounds=1, rng=maint_rng)
                    tally.repairs += repaired
                    tally.keys_moved += moved
                    tally.record_maintenance(
                        sim.now,
                        messages=repaired,
                        size=repaired * HEADER_BYTES + moved * KEY_BYTES,
                    )
                    sim.schedule(interval, maintenance_tick)

                sim.schedule(interval, maintenance_tick)

            # -- query arrival process -------------------------------------
            if phase.query_rate > 0:

                def query_tick() -> None:
                    if sim.now >= end:
                        return
                    self._run_one_query(net, tally, phase, idx, sampler, query_rng)
                    sim.schedule(query_rng.expovariate(phase.query_rate), query_tick)

                sim.schedule(query_rng.expovariate(phase.query_rate), query_tick)

        return begin_phase

    def _run_one_query(
        self,
        net: PGridNetwork,
        tally: _Tally,
        phase: Phase,
        idx: int,
        sampler: QuerySampler,
        rng,
    ) -> None:
        sim = self.simulator
        attempts = 1 + self.spec.query_retries
        kind = sampler.draw_kind(rng)
        if kind == POINT:
            key = sampler.draw_point_key(rng)
            hops = messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.lookup(key, rng=rng)
                except RoutingError:
                    # Whole population offline: the query cannot start.
                    break
                messages += res.hops
                size += res.hops * HEADER_BYTES
                for pid in res.visited:
                    tally.load[pid] += 1
                if res.found:
                    success = True
                    hops = res.hops  # hops of the successful attempt
                    break
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=hops,
                messages=messages,
                size=size,
            )
        else:
            lo, hi = sampler.draw_range(rng)
            messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.range_query(lo, hi, rng=rng)
                except RoutingError:
                    break
                messages += res.messages
                size += res.messages * HEADER_BYTES + len(res.keys) * KEY_BYTES
                if res.complete:
                    success = True
                    break
            if not success:
                tally.range_incomplete += 1
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=messages,
                messages=messages,
                size=size,
            )

    # -- report assembly ---------------------------------------------------

    def _assemble(
        self, net: PGridNetwork, tally: _Tally, boundaries
    ) -> ScenarioReport:
        spec = self.spec
        bin_s = spec.report_bin_s

        bins = sorted(set(tally.samples) | set(tally.query_bins) | set(tally.maint_bins))
        series: List[dict] = []
        for b in bins:
            issued, ok, hops, point_ok, qbytes = tally.query_bins.get(b, (0, 0, 0, 0, 0))
            online, availability, live_reps = tally.samples.get(b, (None, None, None))
            series.append(
                {
                    "minute": b * bin_s / 60.0,
                    "online": online,
                    "queries": issued,
                    "successes": ok,
                    "success_rate": (ok / issued) if issued else None,
                    "mean_hops": (hops / point_ok) if point_ok else None,
                    "query_Bps": qbytes / bin_s,
                    "maint_Bps": tally.maint_bins.get(b, 0.0) / bin_s,
                    "partition_availability": availability,
                    "mean_online_replicas": live_reps,
                }
            )

        phases = []
        for phase, (start, end), counters in zip(spec.phases, boundaries, tally.phase_counters):
            issued = counters["queries"]
            phases.append(
                {
                    "name": phase.name,
                    "start_min": start / 60.0,
                    "end_min": end / 60.0,
                    "queries": int(issued),
                    "point_queries": int(counters["points"]),
                    "range_queries": int(counters["ranges"]),
                    "success_rate": (counters["successes"] / issued) if issued else None,
                    "query_bytes": int(counters["bytes"]),
                }
            )

        total_issued = sum(c["queries"] for c in tally.phase_counters)
        total_ok = sum(c["successes"] for c in tally.phase_counters)
        all_hops = sum(row[2] for row in tally.query_bins.values())
        point_ok = sum(row[3] for row in tally.query_bins.values())
        covered, total_keys = live_key_coverage(net)
        final_online = net.online_count()
        groups = net.partitions()
        alive_groups = sum(
            1 for g in groups.values() if any(net.peers[p].online for p in g)
        )

        loads = [tally.load.get(pid, 0) for pid in sorted(net.peers)]
        load_mean = mean(loads) if loads else 0.0
        load_max = max(loads) if loads else 0
        load_cv = std(loads) / load_mean if load_mean > 0 else 0.0

        totals = {
            "queries": int(total_issued),
            "successes": int(total_ok),
            "success_rate": (total_ok / total_issued) if total_issued else None,
            "point_queries": int(sum(c["points"] for c in tally.phase_counters)),
            "range_queries": int(sum(c["ranges"] for c in tally.phase_counters)),
            "range_incomplete": tally.range_incomplete,
            # Hop means only aggregate successful point lookups: range
            # messages measure fan-out, not path length.
            "mean_hops": (all_hops / point_ok) if point_ok else None,
            "messages": tally.messages,
            "bytes_query": tally.query_bytes,
            "bytes_maintenance": tally.maint_bytes,
            "bytes_total": tally.query_bytes + tally.maint_bytes,
            "repairs": tally.repairs,
            "keys_moved": tally.keys_moved,
            "joins": tally.joins,
            "failed_joins": tally.failed_joins,
            "leaves": tally.leaves,
            "churn_transitions": tally.churn_transitions,
            "final_online": final_online,
            "final_partition_availability": (
                alive_groups / len(groups) if groups else 0.0
            ),
            "final_coverage": (covered / total_keys) if total_keys else 1.0,
        }

        return ScenarioReport(
            scenario=spec.name,
            seed=spec.seed,
            n_peers_start=spec.n_peers,
            n_peers_end=len(net.peers),
            duration_s=spec.duration_s,
            bin_s=bin_s,
            phases=phases,
            series=series,
            totals=totals,
            load={
                "mean": load_mean,
                "max": load_max,
                "cv": load_cv,
                "max_over_mean": (load_max / load_mean) if load_mean else 0.0,
            },
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioReport:
    """One-shot convenience: ``ScenarioRunner(spec).run()``."""
    return ScenarioRunner(spec).run()

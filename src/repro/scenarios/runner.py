"""The data-plane scenario backend: synchronous queries, simulated clock.

:class:`ScenarioRunner` is the fast backend of the two-backend scenario
architecture (see :mod:`repro.scenarios.base` for the shared phase
compiler and :mod:`repro.scenarios.message_runner` for the
message-level sibling): it materializes a
:class:`~repro.pgrid.network.PGridNetwork` for the spec's workload and
executes queries *synchronously* on the data plane, while churn,
arrivals and maintenance genuinely interleave on the simulated clock.

Design notes
------------
* The **simulator provides the timeline**, not message latency: the
  PR-1 fast paths make a lookup ~10us even at N=4096, which is what
  makes N=4096 scenarios run in seconds where the full message-level
  simnet pays per-hop wire latency.  Use the message backend when
  latency/loss/timeout behavior is the question.
* **Determinism**: inherited from the base runner -- same spec + seed
  reproduces a byte-identical report (golden-trace tested).
* **Bandwidth** uses the nominal byte model of
  :mod:`repro.scenarios.report` (`HEADER_BYTES` per message, `KEY_BYTES`
  per shipped key); the message backend accounts real wire bytes
  instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..exceptions import RoutingError
from ..pgrid.liveness import RouteRepairPolicy, repair_routes
from ..pgrid.maintenance import sequential_join
from ..pgrid.network import PGridNetwork
from ..pgrid.replication import anti_entropy_sweep, divergence_stats
from ..workloads.queries import POINT, QuerySampler
from .base import ScenarioRunnerBase, _Tally
from .invariants import live_key_coverage
from .report import HEADER_BYTES, KEY_BYTES, ScenarioReport
from .spec import Phase, ScenarioSpec

__all__ = ["ScenarioRunner", "run_scenario"]


class ScenarioRunner(ScenarioRunnerBase):
    """Executes one :class:`ScenarioSpec` over a fresh overlay.

    After :meth:`run` the overlay and simulator remain available as
    ``self.network`` / ``self.simulator`` for inspection (the invariant
    tests use this to audit the post-scenario structure).
    """

    backend = "dataplane"

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        repair_policy: Optional[RouteRepairPolicy] = None,
    ):
        super().__init__(spec)
        self.network: Optional[PGridNetwork] = None
        #: Maintenance runs through the shared route-repair policy
        #: (oracle-evidence instance); disable it to reproduce the
        #: blind-routing degradation baseline on this backend too.
        self.repair_policy = repair_policy or RouteRepairPolicy()
        self._partition_cut: List[int] = []

    # -- lifecycle hooks ---------------------------------------------------

    def _setup(self, peer_keys, build_rng) -> None:
        self.network = self._build_blueprint(peer_keys, build_rng)

    def _first_free_id(self) -> int:
        net = self.network
        return max(net.peers) + 1 if net.peers else 0

    def _online_ids(self, departed: Set[int]) -> List[int]:
        return sorted(
            pid
            for pid, p in self.network.peers.items()
            if p.online and pid not in departed
        )

    def _depart(self, pid: int) -> None:
        self.network.peers[pid].online = False

    def _churn_toggle(self, pid: int, tally: _Tally) -> Callable[[bool], None]:
        peer = self.network.peers[pid]

        def toggle(online: bool) -> None:
            peer.online = online
            tally.churn_transitions += 1

        return toggle

    def _join(self, pid: int, keys: List[int], rng, tally: _Tally) -> bool:
        spec = self.spec
        try:
            stats = sequential_join(
                self.network,
                pid,
                keys,
                d_max=spec.d_max,
                n_min=spec.n_min,
                rng=rng,
                max_refs=spec.max_refs,
            )
        except RoutingError:
            return False
        tally.record_maintenance(
            self.simulator.now,
            messages=stats.messages,
            size=stats.messages * HEADER_BYTES,
        )
        return True

    def _run_maintenance(self, tally: _Tally, rng) -> None:
        repaired = repair_routes(self.network, policy=self.repair_policy, rng=rng)
        moved = anti_entropy_sweep(self.network, rounds=1, rng=rng)
        tally.repairs += repaired
        tally.keys_moved += moved
        tally.record_maintenance(
            self.simulator.now,
            messages=repaired,
            size=repaired * HEADER_BYTES + moved * KEY_BYTES,
        )

    def _all_ids(self) -> List[int]:
        return sorted(self.network.peers)

    def _set_partitions(self, groups: List[List[int]]) -> None:
        # No per-link transport on this backend: approximate the cut
        # from the majority region's viewpoint by taking every minority
        # peer offline for the phase (a correlated departure wave with a
        # guaranteed return at the heal).
        cut: List[int] = []
        for group in groups[1:]:
            for pid in group:
                peer = self.network.peers.get(pid)
                if peer is not None and peer.online:
                    peer.online = False
                    cut.append(pid)
        self._partition_cut = cut

    def _heal_partitions(self) -> None:
        for pid in self._partition_cut:
            peer = self.network.peers.get(pid)
            if peer is not None:
                peer.online = True
        self._partition_cut = []

    def _sample_state(self):
        net = self.network
        return self._group_health(
            net.partitions(), lambda pid: net.peers[pid].online
        )

    # -- query execution (synchronous) -------------------------------------

    def _run_one_query(
        self, tally: _Tally, phase: Phase, idx: int, sampler: QuerySampler, rng
    ) -> None:
        net = self.network
        sim = self.simulator
        attempts = 1 + self.spec.query_retries
        kind = sampler.draw_kind(rng)
        if kind == POINT:
            key = sampler.draw_point_key(rng)
            hops = messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.lookup(key, rng=rng)
                except RoutingError:
                    # Whole population offline: the query cannot start.
                    break
                messages += res.hops
                size += res.hops * HEADER_BYTES
                for pid in res.visited:
                    tally.load[pid] += 1
                if res.found:
                    success = True
                    hops = res.hops  # hops of the successful attempt
                    break
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=hops,
                messages=messages,
                size=size,
            )
        else:
            lo, hi = sampler.draw_range(rng)
            messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.range_query(lo, hi, rng=rng)
                except RoutingError:
                    break
                messages += res.messages
                size += res.messages * HEADER_BYTES + len(res.keys) * KEY_BYTES
                if res.complete:
                    success = True
                    break
            if not success:
                tally.range_incomplete += 1
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=messages,
                messages=messages,
                size=size,
            )

    # -- write execution (synchronous) --------------------------------------

    def _run_one_write(
        self, tally: _Tally, phase: Phase, idx: int, op: str, key: int, rng
    ) -> None:
        """Route one mutation on the data plane.

        An ``update`` is an idempotent re-insert (the index stores bare
        keys); byte model: every routed hop and every replica fan-out
        message carries the key (``HEADER_BYTES + KEY_BYTES``).
        """
        net = self.network
        sim = self.simulator
        attempts = 1 + self.spec.query_retries
        messages = size = 0
        success = False
        write = net.delete if op == "delete" else net.insert
        for _ in range(attempts):
            try:
                res = write(key, rng=rng)
            except RoutingError:
                break  # whole population offline: the write cannot start
            sent = res.hops + res.replicas_written
            messages += sent
            size += sent * (HEADER_BYTES + KEY_BYTES)
            for pid in res.visited:
                tally.load[pid] += 1
            if res.found:
                success = True
                break
        tally.record_write(
            sim.now, idx, op=op, success=success, messages=messages, size=size
        )

    def _divergence_state(self) -> Dict[str, float]:
        net = self.network
        groups = net.partitions()
        stats = divergence_stats(
            [sorted(net.peers[pid].keys) for pid in sorted(groups[path])]
            for path in sorted(groups)
        )
        stats["tombstones"] = sum(
            len(net.peers[pid].tombstones) for pid in sorted(net.peers)
        )
        return stats

    # -- assembly hooks ----------------------------------------------------

    def _load_by_peer(self, tally: _Tally) -> List[int]:
        return [tally.load.get(pid, 0) for pid in sorted(self.network.peers)]

    def _final_state(self) -> Dict[str, float]:
        net = self.network
        covered, total_keys = live_key_coverage(net)
        groups = net.partitions()
        alive_groups = sum(
            1 for g in groups.values() if any(net.peers[p].online for p in g)
        )
        return {
            "final_online": net.online_count(),
            "final_partition_availability": (
                alive_groups / len(groups) if groups else 0.0
            ),
            "final_coverage": (covered / total_keys) if total_keys else 1.0,
            "n_peers_end": len(net.peers),
        }


def run_scenario(spec: ScenarioSpec) -> ScenarioReport:
    """One-shot convenience: ``ScenarioRunner(spec).run()``.

    For backend selection use :func:`repro.scenarios.run_scenario`,
    which accepts ``backend="dataplane" | "message"``.
    """
    return ScenarioRunner(spec).run()

"""The data-plane scenario backend: synchronous queries, simulated clock.

:class:`ScenarioRunner` is the fast backend of the two-backend scenario
architecture (see :mod:`repro.scenarios.base` for the shared phase
compiler and :mod:`repro.scenarios.message_runner` for the
message-level sibling): it materializes a
:class:`~repro.pgrid.network.PGridNetwork` for the spec's workload and
executes queries *synchronously* on the data plane, while churn,
arrivals and maintenance genuinely interleave on the simulated clock.

Design notes
------------
* The **simulator provides the timeline**, not message latency: the
  PR-1 fast paths make a lookup ~10us even at N=4096, which is what
  makes N=4096 scenarios run in seconds where the full message-level
  simnet pays per-hop wire latency.  Use the message backend when
  latency/loss/timeout behavior is the question.
* **Determinism**: inherited from the base runner -- same spec + seed
  reproduces a byte-identical report (golden-trace tested).
* **Bandwidth** uses the nominal byte model of
  :mod:`repro.scenarios.report` (`HEADER_BYTES` per message, `KEY_BYTES`
  per shipped key); the message backend accounts real wire bytes
  instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..exceptions import RoutingError
from ..pgrid.liveness import RouteRepairPolicy, repair_routes
from ..pgrid.maintenance import sequential_join
from ..pgrid.network import PGridNetwork
from ..pgrid.replication import anti_entropy_sweep, divergence_stats
from ..pgrid.routing import RoutingTable
from ..pgrid.serving import ResultCache
from ..pgrid.state import DurabilityPolicy
from ..workloads.queries import POINT, QuerySampler
from .base import ScenarioRunnerBase, _Tally
from .invariants import live_key_coverage
from .report import HEADER_BYTES, KEY_BYTES, ScenarioReport
from .spec import Phase, ScenarioSpec

__all__ = ["ScenarioRunner", "run_scenario"]


class ScenarioRunner(ScenarioRunnerBase):
    """Executes one :class:`ScenarioSpec` over a fresh overlay.

    After :meth:`run` the overlay and simulator remain available as
    ``self.network`` / ``self.simulator`` for inspection (the invariant
    tests use this to audit the post-scenario structure).
    """

    backend = "dataplane"

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        repair_policy: Optional[RouteRepairPolicy] = None,
        durability: Optional[DurabilityPolicy] = None,
    ):
        super().__init__(spec, durability=durability)
        self.network: Optional[PGridNetwork] = None
        #: Maintenance runs through the shared route-repair policy
        #: (oracle-evidence instance); disable it to reproduce the
        #: blind-routing degradation baseline on this backend too.
        self.repair_policy = repair_policy or RouteRepairPolicy()
        self._partition_cut: List[int] = []
        #: Data-plane serving approximation: queries are synchronous, so
        #: there is no concurrency to dedup and no wire to shortcut with
        #: a route cache -- but the *result* cache and its write
        #: invalidation are backend-independent semantics.  One
        #: front-end cache stands in for the per-node caches of the
        #: message backend (the issuing side is not modeled here).
        self._dp_cache: Optional[ResultCache] = None
        self._dp_stats = {"result_hits": 0, "result_misses": 0, "invalidations": 0}
    # -- lifecycle hooks ---------------------------------------------------

    def _setup(self, peer_keys, build_rng) -> None:
        self.network = self._build_blueprint(peer_keys, build_rng)
        cache = self._cache
        if cache is not None and cache.enabled:
            self._dp_cache = ResultCache(cache.result_ttl_s, cache.result_capacity)

    def _first_free_id(self) -> int:
        net = self.network
        return max(net.peers) + 1 if net.peers else 0

    def _online_ids(self, departed: Set[int]) -> List[int]:
        return sorted(
            pid
            for pid, p in self.network.peers.items()
            if p.online and pid not in departed
        )

    def _depart(self, pid: int) -> None:
        self.network.peers[pid].online = False

    def _churn_toggle(self, pid: int, tally: _Tally) -> Callable[[bool], None]:
        peer = self.network.peers[pid]

        def toggle(online: bool) -> None:
            peer.online = online
            tally.churn_transitions += 1

        return toggle

    def _join(self, pid: int, keys: List[int], rng, tally: _Tally) -> bool:
        spec = self.spec
        try:
            stats = sequential_join(
                self.network,
                pid,
                keys,
                d_max=spec.d_max,
                n_min=spec.n_min,
                rng=rng,
                max_refs=spec.max_refs,
            )
        except RoutingError:
            return False
        tally.record_maintenance(
            self.simulator.now,
            messages=stats.messages,
            size=stats.messages * HEADER_BYTES,
        )
        return True

    def _run_maintenance(self, tally: _Tally, rng) -> None:
        repaired = repair_routes(self.network, policy=self.repair_policy, rng=rng)
        moved = anti_entropy_sweep(self.network, rounds=1, rng=rng)
        tally.repairs += repaired
        tally.keys_moved += moved
        tally.record_maintenance(
            self.simulator.now,
            messages=repaired,
            size=repaired * HEADER_BYTES + moved * KEY_BYTES,
        )

    def _all_ids(self) -> List[int]:
        return sorted(self.network.peers)

    def _set_partitions(self, groups: List[List[int]]) -> None:
        # No per-link transport on this backend: approximate the cut
        # from the majority region's viewpoint by taking every minority
        # peer offline for the phase (a correlated departure wave with a
        # guaranteed return at the heal).
        cut: List[int] = []
        for group in groups[1:]:
            for pid in group:
                peer = self.network.peers.get(pid)
                if peer is not None and peer.online:
                    peer.online = False
                    cut.append(pid)
        self._partition_cut = cut

    def _heal_partitions(self) -> None:
        for pid in self._partition_cut:
            peer = self.network.peers.get(pid)
            if peer is not None:
                peer.online = True
        self._partition_cut = []

    def _sample_state(self):
        net = self.network
        return self._group_health(
            net.partitions(), lambda pid: net.peers[pid].online
        )

    # -- query execution (synchronous) -------------------------------------

    def _run_one_query(
        self, tally: _Tally, phase: Phase, idx: int, sampler: QuerySampler, rng
    ) -> None:
        net = self.network
        sim = self.simulator
        attempts = 1 + self.spec.query_retries
        kind = sampler.draw_kind(rng)
        if kind == POINT:
            key = sampler.draw_point_key(rng)
            if self._dp_cache is not None:
                cached = self._dp_cache.get(key, sim.now)
                if cached is not None:
                    # Served from the front-end cache: no routing, no
                    # per-peer load.  Audited against the authoritative
                    # key view exactly like a node-side hit.
                    self._dp_stats["result_hits"] += 1
                    self._audit_cache_hit(-1, key, cached)
                    tally.record_query(
                        sim.now, idx, kind=kind, success=True,
                        hops=0, messages=0, size=0,
                    )
                    return
                self._dp_stats["result_misses"] += 1
            hops = messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.lookup(key, rng=rng)
                except RoutingError:
                    # Whole population offline: the query cannot start.
                    break
                messages += res.hops
                size += res.hops * HEADER_BYTES
                for pid in res.visited:
                    tally.load[pid] += 1
                if res.found:
                    success = True
                    hops = res.hops  # hops of the successful attempt
                    if self._dp_cache is not None:
                        self._dp_cache.put(key, res.value_present, sim.now)
                    break
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=hops,
                messages=messages,
                size=size,
            )
        elif sampler.codec is not None:
            # Box query: decompose into z-order key ranges and issue
            # each through the ordinary range machinery; the box
            # succeeds when every range completed.  Results are audited
            # against the brute-force oracle (see repro.pgrid.mdim).
            lo_cells, hi_cells = sampler.draw_box(rng)
            ranges, oracle = self._mdim_box_plan(lo_cells, hi_cells)
            messages = size = 0
            success = True
            found: Set[int] = set()
            for lo, hi in ranges:
                part_ok = False
                for _ in range(attempts):
                    try:
                        res = net.range_query(lo, hi, rng=rng)
                    except RoutingError:
                        break
                    messages += res.messages
                    size += res.messages * HEADER_BYTES + len(res.keys) * KEY_BYTES
                    found |= res.keys
                    if res.complete:
                        part_ok = True
                        break
                success &= part_ok
            self._mdim_box_done(oracle, found, success)
            if not success:
                tally.range_incomplete += 1
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=messages,
                messages=messages,
                size=size,
            )
        else:
            lo, hi = sampler.draw_range(rng)
            messages = size = 0
            success = False
            for _ in range(attempts):
                try:
                    res = net.range_query(lo, hi, rng=rng)
                except RoutingError:
                    break
                messages += res.messages
                size += res.messages * HEADER_BYTES + len(res.keys) * KEY_BYTES
                if res.complete:
                    success = True
                    break
            if not success:
                tally.range_incomplete += 1
            tally.record_query(
                sim.now,
                idx,
                kind=kind,
                success=success,
                hops=messages,
                messages=messages,
                size=size,
            )

    # -- write execution (synchronous) --------------------------------------

    def _run_one_write(
        self, tally: _Tally, phase: Phase, idx: int, op: str, key: int, rng
    ) -> None:
        """Route one mutation on the data plane.

        An ``update`` is an idempotent re-insert (the index stores bare
        keys); byte model: every routed hop and every replica fan-out
        message carries the key (``HEADER_BYTES + KEY_BYTES``).
        """
        net = self.network
        sim = self.simulator
        attempts = 1 + self.spec.query_retries
        messages = size = 0
        success = False
        write = net.delete if op == "delete" else net.insert
        for _ in range(attempts):
            try:
                res = write(key, rng=rng)
            except RoutingError:
                break  # whole population offline: the write cannot start
            sent = res.hops + res.replicas_written
            messages += sent
            size += sent * (HEADER_BYTES + KEY_BYTES)
            for pid in res.visited:
                tally.load[pid] += 1
            if res.found:
                success = True
                break
        if success:
            self._note_acked_write(op, key)
            if self._dp_cache is not None and self._dp_cache.invalidate(key):
                self._dp_stats["invalidations"] += 1
        tally.record_write(
            sim.now, idx, op=op, success=success, messages=messages, size=size
        )

    def _divergence_state(self) -> Dict[str, float]:
        net = self.network
        groups = net.partitions()
        stats = divergence_stats(
            [sorted(net.peers[pid].keys) for pid in sorted(groups[path])]
            for path in sorted(groups)
        )
        stats["tombstones"] = sum(
            len(net.peers[pid].tombstones) for pid in sorted(net.peers)
        )
        return stats

    # -- durability / restart hooks -----------------------------------------

    def _checkpoint_all(self, tally: _Tally) -> None:
        net = self.network
        now = self.simulator.now
        store = self._state_store
        for pid in sorted(net.peers):
            if net.peers[pid].online:
                store.put(pid, net.checkpoint_peer(pid, now))

    def _restart_shutdown(self, pid: int, crash: bool, tally: _Tally) -> bool:
        peer = self.network.peers.get(pid)
        if peer is None or not peer.online:
            return False
        if not crash and self._durability.enabled:
            # Clean shutdown: exact checkpoint at the shutdown instant.
            # A crash keeps only the last periodic checkpoint (stale by
            # up to snapshot_interval_s) -- that gap IS the crash model.
            self._state_store.put(
                pid, self.network.checkpoint_peer(pid, self.simulator.now)
            )
        peer.online = False
        return True

    def _restart_return(self, pid: int, tally: _Tally) -> str:
        net = self.network
        snapshot = (
            self._state_store.get(pid) if self._durability.enabled else None
        )
        if snapshot is not None:
            # Warm rejoin: resume from disk, reconcile the delta through
            # the ordinary maintenance sweeps; restored routing refs are
            # re-validated by the next oracle repair pass (the data
            # plane's liveness hand-off).  One rejoin announce on the
            # wire.
            peer = net.restore_peer(pid, snapshot)
            peer.online = True
            tally.record_maintenance(
                self.simulator.now, messages=1, size=HEADER_BYTES
            )
            return "warm"
        # Cold rejoin: durable state is gone.  The peer re-enters at its
        # remembered position (the overlay's replica sets still carry
        # its id; moving it would break the data plane's synchronous
        # search invariants) but with its stores wiped -- the locally
        # held index fragment, tombstone clocks and routing refs did not
        # survive the restart.  It rebuilds its reference table by
        # asking an online structural replica and re-learns the
        # partition's entire content through ordinary anti-entropy
        # sweeps: until the next sweep reaches it, the replica serves
        # nothing -- the pre-persistence baseline a warm rejoin is
        # measured against.
        peer = net.peers.get(pid)
        if peer is None:
            return "cold"
        rng = self._restart_rng
        peer.keys = []
        peer.tombstones.clear()
        peer.online = True
        messages = 1  # the rejoin announce
        size = HEADER_BYTES
        replicas = [
            net.peers[other]
            for other in sorted(peer.replicas)
            if other != pid
            and other in net.peers
            and net.peers[other].online
            and net.peers[other].path == peer.path
        ]
        if replicas:
            # One bootstrap exchange: copy a live replica's reference
            # table (the cold peer's own refs did not survive the wipe).
            source = replicas[rng.randrange(len(replicas))]
            routing = RoutingTable(max_refs_per_level=self.spec.max_refs)
            for level, refs in sorted(source.routing.levels.items()):
                for ref in refs:
                    routing.add(level, ref)
            peer.routing = routing
            refs_copied = sum(
                len(refs) for refs in source.routing.levels.values()
            )
            messages += 1
            size += HEADER_BYTES + refs_copied * KEY_BYTES
        tally.record_maintenance(self.simulator.now, messages=messages, size=size)
        return "cold"

    def _durable_key_view(self):
        present: Set[int] = set()
        tombstones: Set[int] = set()
        for pid in sorted(self.network.peers):
            peer = self.network.peers[pid]
            present.update(peer.keys)
            tombstones.update(peer.tombstones)
        return present, tombstones

    # -- assembly hooks ----------------------------------------------------

    def _serving_counters(self) -> Dict[str, int]:
        """Front-end cache counters; dedup/route/grant counters stay
        zero on this backend (queries are synchronous -- there is no
        in-flight concurrency and no wire, see ``_dp_cache``)."""
        return dict(self._dp_stats)

    def _load_by_peer(self, tally: _Tally) -> List[int]:
        return [tally.load.get(pid, 0) for pid in sorted(self.network.peers)]

    def _final_state(self) -> Dict[str, float]:
        net = self.network
        covered, total_keys = live_key_coverage(net)
        groups = net.partitions()
        alive_groups = sum(
            1 for g in groups.values() if any(net.peers[p].online for p in g)
        )
        return {
            "final_online": net.online_count(),
            "final_partition_availability": (
                alive_groups / len(groups) if groups else 0.0
            ),
            "final_coverage": (covered / total_keys) if total_keys else 1.0,
            "n_peers_end": len(net.peers),
        }


def run_scenario(spec: ScenarioSpec) -> ScenarioReport:
    """One-shot convenience: ``ScenarioRunner(spec).run()``.

    For backend selection use :func:`repro.scenarios.run_scenario`,
    which accepts ``backend="dataplane" | "message"``.
    """
    return ScenarioRunner(spec).run()

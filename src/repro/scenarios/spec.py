"""Declarative scenario specifications for churn/skew stress experiments.

A :class:`ScenarioSpec` describes a complete overlay stress experiment as
data: the initial population and key workload, then a sequence of
:class:`Phase` objects, each combining peer arrivals/departures, a churn
regime, a query mix (point lookups and range scans, optionally focused
on a flash-crowd hotspot), a write mix (:class:`WriteMix`:
insert/delete/update mutations, optionally hotspot-focused) and a
maintenance/repair cadence.  The shared
compiler (:mod:`repro.scenarios.base`) turns a spec into
:class:`repro.simnet.engine.Simulator` events for either execution
backend: the synchronous data plane
(:class:`repro.scenarios.runner.ScenarioRunner` over a
:class:`repro.pgrid.network.PGridNetwork`) or the message level
(:class:`repro.scenarios.message_runner.MessageScenarioRunner` over
:class:`repro.simnet.node.PGridNode` protocol nodes with latency and
loss).  ``query_retries`` maps to synchronous re-routing attempts on
the first backend and to timeout-driven wire retries on the second.

Specs are plain frozen dataclasses so they can be constructed inline,
shipped in the library (:mod:`repro.scenarios.library`) and compared for
equality in tests.  Everything is seeded: the same spec and seed always
produce the same :class:`~repro.scenarios.report.ScenarioReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..exceptions import DomainError, SimulationError
from ..pgrid.keyspace import KeyCodec, ScalarCodec
from ..pgrid.mdim import ZOrderCodec
from ..pgrid.serving import CachePolicy
from ..simnet.churn import ChurnConfig
from ..workloads.distributions import DISTRIBUTIONS, distribution
from ..workloads.queries import QuerySampler

__all__ = [
    "CachePolicy",
    "ChurnSpec",
    "Hotspot",
    "KeyCodec",
    "PartitionSpec",
    "QueryMix",
    "RestartSpec",
    "ScalarCodec",
    "WriteMix",
    "Phase",
    "ScenarioSpec",
    "ZOrderCodec",
]


@dataclass(frozen=True)
class RestartSpec:
    """A phase's restart regime (process restarts, not churn).

    Unlike churn -- where a peer merely goes unreachable and returns
    with its memory intact -- a restart terminates the process: pending
    operations are lost and what survives is whatever the persistence
    subsystem (:mod:`repro.pgrid.state`) checkpointed.  During the
    phase, ``fraction`` of the online population restarts once each:
    shutdown times are staggered uniformly over ``[0, stagger_s]`` from
    the phase start, and each peer returns after a downtime drawn
    uniformly from ``[min_down_s, max_down_s]``.

    ``crash_fraction`` of the restarts are *crashes* (state as of the
    last periodic checkpoint, stale by up to the durability policy's
    ``snapshot_interval_s``); the rest are *clean shutdowns* (exact
    checkpoint at the shutdown instant).  Whether a returning peer
    rejoins warm (restore + delta reconciliation) or cold (sponsored
    join from nothing) is decided by the runner's
    :class:`~repro.pgrid.state.DurabilityPolicy`, not the spec -- the
    same spec benchmarks both sides of the A/B.
    """

    fraction: float = 0.5
    min_down_s: float = 30.0
    max_down_s: float = 90.0
    stagger_s: float = 60.0
    crash_fraction: float = 0.0

    def validate(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise SimulationError(
                f"restart fraction must lie in (0, 1], got {self.fraction}"
            )
        if not 0.0 < self.min_down_s <= self.max_down_s:
            raise SimulationError("invalid restart downtime interval")
        if self.stagger_s < 0.0:
            raise SimulationError("restart stagger must be non-negative")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise SimulationError(
                f"crash fraction must lie in [0, 1], got {self.crash_fraction}"
            )


@dataclass(frozen=True)
class PartitionSpec:
    """A correlated regional cut lasting one phase.

    At the phase boundary the population is split into
    ``len(fractions)`` disjoint regions (a deterministic seeded shuffle
    sized by ``fractions``); the cut heals at the phase end.  The
    message backend installs a real transport partition
    (:meth:`repro.simnet.transport.Network.set_partitions` -- messages
    crossing a region boundary are refused at send time), exercising the
    route-repair subsystem's partition evidence.  The data plane has no
    per-link transport, so it approximates the cut from the majority
    region's viewpoint: every peer outside region 0 is unavailable for
    the duration -- a correlated mass-departure with a guaranteed
    return.
    """

    #: Relative region sizes; region 0 is the majority/reference region.
    fractions: Tuple[float, ...] = (0.8, 0.2)

    def __post_init__(self):
        if not isinstance(self.fractions, tuple):
            object.__setattr__(self, "fractions", tuple(self.fractions))

    def validate(self) -> None:
        if len(self.fractions) < 2:
            raise SimulationError("a partition needs at least two regions")
        if any(f <= 0.0 for f in self.fractions):
            raise SimulationError("partition region fractions must be positive")
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise SimulationError(
                f"partition region fractions must sum to 1, got {self.fractions}"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """A phase's churn regime (times in seconds, like the simulator clock).

    Defaults are the paper's Sec. 5.1 schedule: "each peer independently
    decide[s] to go offline 1-5 minutes every 5-10 minutes".
    ``fraction`` restricts churn to a random subset of the online
    population (1.0 = everybody churns).
    """

    min_offline_s: float = 60.0
    max_offline_s: float = 300.0
    min_online_s: float = 300.0
    max_online_s: float = 600.0
    fraction: float = 1.0

    def validate(self) -> None:
        self.to_config().validate()
        if not 0.0 < self.fraction <= 1.0:
            raise SimulationError(
                f"churn fraction must lie in (0, 1], got {self.fraction}"
            )

    def to_config(self) -> ChurnConfig:
        """The equivalent :class:`~repro.simnet.churn.ChurnConfig`."""
        return ChurnConfig(
            min_offline=self.min_offline_s,
            max_offline=self.max_offline_s,
            min_online=self.min_online_s,
            max_online=self.max_online_s,
        )


@dataclass(frozen=True)
class Hotspot:
    """A flash-crowd focus interval in ``[0, 1)`` of the key space.

    ``weight`` is the probability that any single query targets the hot
    interval instead of the whole key space.
    """

    lo: float
    hi: float
    weight: float = 0.9

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.lo, self.hi, self.weight)


@dataclass(frozen=True)
class QueryMix:
    """Relative blend of point lookups and range scans for one phase.

    ``batch_size`` releases that many concurrent queries per arrival
    tick instead of one-at-a-time (the arrival rate is divided by the
    batch size, so the mean query rate is unchanged; ``1`` reproduces
    the one-at-a-time event stream bit-for-bit).  ``zipf_keys`` > 0
    switches point targets from fresh uniform draws to a Zipf-ranked
    popular set of that many *workload* keys (exponent
    ``zipf_exponent``), the repeat-heavy access pattern the serving
    caches exist for; the popular set concentrates inside ``hotspot``
    when one is configured.
    """

    point_weight: float = 0.9
    range_weight: float = 0.1
    range_span: float = 0.02
    hotspot: Optional[Hotspot] = None
    batch_size: int = 1
    zipf_keys: int = 0
    zipf_exponent: float = 0.9
    #: Per-dimension box side lengths for multi-dimensional scenarios
    #: (skewed per-dimension selectivity); ``None`` = ``range_span`` on
    #: every side.  Requires the spec to carry a multi-dimensional
    #: codec; inert (and invalid) otherwise.
    box_spans: Optional[Tuple[float, ...]] = None

    def __post_init__(self):
        if self.box_spans is not None and not isinstance(self.box_spans, tuple):
            object.__setattr__(self, "box_spans", tuple(self.box_spans))

    def validate(self, codec: Optional[KeyCodec] = None) -> None:
        if self.batch_size < 1:
            raise SimulationError(
                f"query batch size must be >= 1, got {self.batch_size}"
            )
        if self.zipf_keys < 0:
            raise SimulationError(
                f"zipf_keys must be >= 0, got {self.zipf_keys}"
            )
        if self.zipf_exponent <= 0:
            raise SimulationError(
                f"zipf exponent must be positive, got {self.zipf_exponent}"
            )
        # The sampler is the single authority on mix validity (weights,
        # span, hotspot bounds, box spans); surface its verdict as a
        # spec error.
        try:
            self.to_sampler(codec=codec)
        except DomainError as exc:
            raise SimulationError(str(exc)) from None

    def to_sampler(
        self,
        universe: Optional[Sequence[int]] = None,
        codec: Optional[KeyCodec] = None,
    ) -> QuerySampler:
        """The :class:`~repro.workloads.queries.QuerySampler` this mix
        configures (raises :class:`~repro.exceptions.DomainError` on an
        invalid mix).  ``universe`` is the sorted workload key set Zipf
        popular keys are drawn from; without one, ``zipf_keys`` is
        inert and point draws stay uniform.  ``codec`` is the spec's
        keyspace codec; a multi-dimensional one switches range draws to
        box draws."""
        return QuerySampler(
            point_weight=self.point_weight,
            range_weight=self.range_weight,
            range_span=self.range_span,
            hotspot=self.hotspot.as_tuple() if self.hotspot is not None else None,
            universe=universe,
            zipf_keys=self.zipf_keys,
            zipf_exponent=self.zipf_exponent,
            codec=codec,
            box_spans=self.box_spans,
        )


@dataclass(frozen=True)
class WriteMix:
    """One phase's mutation workload (the write path of the index).

    ``write_rate`` mutations arrive per simulated second (a Poisson
    process like the query arrivals); each draws its operation from the
    three weights:

    * **insert** -- a fresh key sampled from the key space (optionally
      concentrated on ``hotspot``, the flash-crowd write pattern).
      Fresh 53-bit draws make colliding with a previously deleted key
      astronomically unlikely, so the workload never depends on
      re-insert-after-delete durability (which is delete-wins-bounded,
      see :func:`repro.pgrid.replication.reconcile`);
    * **delete** -- an existing key (nearest tracked key to the sampled
      target, so hotspots focus deletes too); the owner tombstones it
      and the delete propagates delete-wins through replica sync and
      anti-entropy;
    * **update** -- a re-insert of an existing key (the index has no
      separate values, so an update is an idempotent overwrite --
      exercising insert idempotence and refresh traffic).

    When no key is tracked as present yet, deletes and updates fall
    back to inserts (the pool then grows until the configured blend is
    reachable).
    """

    write_rate: float = 1.0
    insert_weight: float = 0.5
    delete_weight: float = 0.3
    update_weight: float = 0.2
    hotspot: Optional[Hotspot] = None

    def validate(self) -> None:
        if self.write_rate <= 0:
            raise SimulationError(
                f"write rate must be positive, got {self.write_rate}"
            )
        if min(self.insert_weight, self.delete_weight, self.update_weight) < 0:
            raise SimulationError("write-mix weights must be non-negative")
        if self.insert_weight + self.delete_weight + self.update_weight <= 0:
            raise SimulationError("write mix needs a positive total weight")
        # Key sampling reuses the query sampler; surface its verdict.
        try:
            self.to_sampler()
        except DomainError as exc:
            raise SimulationError(str(exc)) from None

    def to_sampler(self, codec: Optional[KeyCodec] = None) -> QuerySampler:
        """The key sampler behind every mutation target (point draws,
        hotspot-aware; multi-dimensional codecs make every mutation
        target an encoded d-attribute point)."""
        return QuerySampler(
            point_weight=1.0,
            range_weight=0.0,
            hotspot=self.hotspot.as_tuple() if self.hotspot is not None else None,
            codec=codec,
        )


@dataclass(frozen=True)
class Phase:
    """One stage of a scenario timeline.

    At the phase boundary ``join_peers`` new peers arrive (sequential
    maintenance joins) and ``leave_peers`` online peers depart for good;
    during the phase queries arrive at ``query_rate`` per simulated
    second, mutations (if a ``writes`` mix is configured) arrive at its
    ``write_rate``, churn (if configured) toggles availability, a
    regional ``partitions`` cut (if configured) severs the population
    for the phase, and every ``maintenance_interval_s`` the overlay runs
    one repair + anti-entropy round.
    """

    name: str
    duration_s: float
    query_rate: float = 4.0
    mix: QueryMix = field(default_factory=QueryMix)
    churn: Optional[ChurnSpec] = None
    join_peers: int = 0
    leave_peers: int = 0
    maintenance_interval_s: Optional[float] = None
    partitions: Optional[PartitionSpec] = None
    #: Mutation workload for this phase (``None`` = read-only, the
    #: pre-write-path behavior, bit-for-bit).
    writes: Optional[WriteMix] = None
    #: Process-restart regime for this phase (``None`` = no restarts,
    #: the pre-persistence behavior, bit-for-bit).
    restarts: Optional[RestartSpec] = None

    def validate(self, codec: Optional[KeyCodec] = None) -> None:
        if self.duration_s <= 0:
            raise SimulationError(f"phase {self.name!r} needs a positive duration")
        if self.query_rate < 0:
            raise SimulationError(f"phase {self.name!r} has a negative query rate")
        if self.join_peers < 0 or self.leave_peers < 0:
            raise SimulationError(f"phase {self.name!r} has negative membership deltas")
        if self.maintenance_interval_s is not None and self.maintenance_interval_s <= 0:
            raise SimulationError(
                f"phase {self.name!r} needs a positive maintenance interval"
            )
        self.mix.validate(codec)
        if self.churn is not None:
            self.churn.validate()
        if self.partitions is not None:
            self.partitions.validate()
        if self.writes is not None:
            self.writes.validate()
        if self.restarts is not None:
            self.restarts.validate()


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible stress experiment as data."""

    name: str
    phases: Tuple[Phase, ...]
    n_peers: int = 256
    keys_per_peer: int = 8
    distribution: str = "U"
    d_max: float = 40.0
    n_min: int = 3
    max_refs: int = 4
    seed: int = 20050830
    report_bin_s: float = 60.0
    #: Extra routing attempts (fresh random start peer) after a failed
    #: query, mirroring the protocol's retry behavior under churn
    #: (:class:`repro.simnet.node.NodeConfig.query_retries`).
    query_retries: int = 2
    #: Death-certificate lifetime for the message backend; ``None``
    #: defers to ``MessageNetConfig.tombstone_ttl_s``.  Scenarios whose
    #: reconciliation horizon outlives the default TTL (restart storms:
    #: a delete acked mid-storm must still be enforceable against a
    #: peer that restores a pre-delete snapshot and only reconciles via
    #: slow anti-entropy near the scenario end) provision a TTL that
    #: covers the delete-to-audit window, the classic Demers trade made
    #: explicit per experiment.  Dilated by :meth:`scaled` like every
    #: other duration.  The data plane has no tombstone clock.
    tombstone_ttl_s: Optional[float] = None
    #: Query-serving front end (:class:`repro.pgrid.serving.CachePolicy`).
    #: ``None`` = no serving layer and no ``serving`` report section
    #: (the pre-serving behavior, bit-for-bit);
    #: ``CachePolicy(enabled=False)`` = unmodified protocol but the
    #: report still carries the section, for cache on/off A/Bs.
    cache: Optional[CachePolicy] = None
    #: Keyspace codec (:class:`~repro.pgrid.keyspace.KeyCodec`).
    #: ``None`` = the classic one-dimensional keyspace, bit-for-bit
    #: (equivalent to :class:`~repro.pgrid.keyspace.ScalarCodec`).  A
    #: multi-dimensional codec (:class:`~repro.pgrid.mdim.ZOrderCodec`)
    #: switches workload keys to encoded d-attribute points, range
    #: draws to d-dimensional boxes decomposed into key ranges, and
    #: adds the ``mdim`` report section.
    codec: Optional[KeyCodec] = None

    def __post_init__(self):
        # Accept any sequence of phases but store a hashable tuple.
        if not isinstance(self.phases, tuple):
            object.__setattr__(self, "phases", tuple(self.phases))

    # -- derived timeline --------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Total simulated length of the scenario."""
        return sum(p.duration_s for p in self.phases)

    def boundaries(self) -> List[Tuple[float, float]]:
        """``(start_s, end_s)`` per phase, in order."""
        out: List[Tuple[float, float]] = []
        t = 0.0
        for phase in self.phases:
            out.append((t, t + phase.duration_s))
            t += phase.duration_s
        return out

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        if not self.phases:
            raise SimulationError(f"scenario {self.name!r} needs at least one phase")
        if self.n_peers < 2:
            raise SimulationError("scenario needs at least two peers")
        if self.keys_per_peer < 1:
            raise SimulationError("scenario needs at least one key per peer")
        try:
            # Accepts sliced labels ("U@2/8", worker-mode sharding) on
            # top of the plain registry names.
            distribution(self.distribution)
        except DomainError:
            raise SimulationError(
                f"unknown key distribution {self.distribution!r}; "
                f"known: {sorted(DISTRIBUTIONS)}"
            ) from None
        if self.d_max <= 0 or self.n_min < 1 or self.max_refs < 1:
            raise SimulationError("d_max, n_min and max_refs must be positive")
        if self.report_bin_s <= 0:
            raise SimulationError("report bin width must be positive")
        if self.query_retries < 0:
            raise SimulationError("query retries must be non-negative")
        if self.tombstone_ttl_s is not None and self.tombstone_ttl_s <= 0:
            raise SimulationError("tombstone TTL must be positive when set")
        if self.cache is not None:
            try:
                self.cache.validate()
            except DomainError as exc:
                raise SimulationError(str(exc)) from None
        if self.codec is not None and self.codec.dims < 1:
            raise SimulationError("codec must index at least one dimension")
        for phase in self.phases:
            phase.validate(self.codec)

    # -- convenience -------------------------------------------------------

    def scaled(self, duration_scale: float) -> "ScenarioSpec":
        """A time-dilated copy: phase durations, maintenance cadence,
        churn periods and the report bin are all multiplied by
        ``duration_scale`` -- the standard way to shrink a library
        scenario into a CI-sized smoke run without changing its shape."""
        if duration_scale <= 0:
            raise SimulationError(f"duration scale must be positive, got {duration_scale}")
        phases = tuple(
            replace(
                p,
                duration_s=p.duration_s * duration_scale,
                maintenance_interval_s=(
                    None
                    if p.maintenance_interval_s is None
                    else p.maintenance_interval_s * duration_scale
                ),
                churn=(
                    None
                    if p.churn is None
                    else replace(
                        p.churn,
                        min_offline_s=p.churn.min_offline_s * duration_scale,
                        max_offline_s=p.churn.max_offline_s * duration_scale,
                        min_online_s=p.churn.min_online_s * duration_scale,
                        max_online_s=p.churn.max_online_s * duration_scale,
                    )
                ),
                restarts=(
                    None
                    if p.restarts is None
                    else replace(
                        p.restarts,
                        min_down_s=p.restarts.min_down_s * duration_scale,
                        max_down_s=p.restarts.max_down_s * duration_scale,
                        stagger_s=p.restarts.stagger_s * duration_scale,
                    )
                ),
            )
            for p in self.phases
        )
        return replace(
            self,
            phases=phases,
            report_bin_s=self.report_bin_s * duration_scale,
            tombstone_ttl_s=(
                None
                if self.tombstone_ttl_s is None
                else self.tombstone_ttl_s * duration_scale
            ),
            cache=(
                None if self.cache is None else self.cache.scaled(duration_scale)
            ),
        )

"""Shared scenario compilation: one spec, two execution backends.

A :class:`~repro.scenarios.spec.ScenarioSpec` can be executed by two
backends that share this module's phase compiler:

* the **data-plane backend** (:class:`repro.scenarios.runner.ScenarioRunner`)
  calls :class:`~repro.pgrid.network.PGridNetwork` synchronously -- queries
  are ~10us, so N=4096 scenarios run in seconds; the simulator only
  provides the timeline for churn/membership/maintenance interleaving;
* the **message-level backend**
  (:class:`repro.scenarios.message_runner.MessageScenarioRunner`) compiles
  the same phases onto :class:`~repro.simnet.node.PGridNode` protocol
  nodes communicating through :class:`~repro.simnet.transport.Network`,
  so every query pays latency, loss, timeouts and retries on the
  simulated wire (the paper's Sec. 5 PlanetLab conditions).

:class:`ScenarioRunnerBase` owns everything backend-independent: the
master-RNG stream derivation (**fixed order** -- the determinism
contract), workload generation, the per-phase event compilation
(membership waves, churn processes, maintenance cadence, query arrival
processes), per-bin sampling and report assembly.  Backends implement a
small hook surface (`_setup`, `_join`, `_run_maintenance`,
`_run_one_query`, `_sample_state`, ...).

Determinism
-----------
One master RNG seeds independent per-concern streams (workload, overlay
build, queries, churn, membership, maintenance) in a fixed order;
backends may append *extra* streams at the end only
(:meth:`_derive_extra_streams`).  The simulator breaks ties by sequence
number and no iteration order depends on hash randomization, so the
same spec + seed + backend reproduces a byte-identical report
(golden-trace tested per backend).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .._util import make_rng, mean, std
from ..pgrid.network import PGridNetwork
from ..pgrid.serving import gini
from ..pgrid.state import SCHEMA as STATE_SCHEMA
from ..pgrid.state import DurabilityPolicy, StateStore
from ..simnet.churn import start_churn
from ..simnet.engine import Simulator
from ..workloads.datasets import workload_keys
from ..workloads.distributions import distribution
from ..workloads.queries import POINT, QuerySampler
from .report import ScenarioReport
from .spec import Phase, ScenarioSpec, WriteMix

#: Absolute slack over the pre-restart divergence baseline within which
#: the overlay counts as re-converged (see the report's ``recovery``
#: section): replica divergence is a mean of fractions, so a couple of
#: percentage points absorbs sampling noise without hiding a cold
#: rejoin's missing-keys plateau.
CONVERGENCE_SLACK = 0.02

#: Recovery divergence sampling cadence, as samples per report bin:
#: fine enough that time-to-converged-divergence distinguishes a warm
#: rejoin (converged at the next sample) from a cold one (stale until
#: the next anti-entropy sweep), without touching the report's per-bin
#: series.
RECOVERY_SAMPLES_PER_BIN = 4

__all__ = ["ScenarioRunnerBase", "_Tally"]

#: Write operation tags (also the per-phase counter keys, pluralized).
WRITE_OPS = ("insert", "delete", "update")


class _Tally:
    """Per-bin and per-phase accumulation during a run."""

    def __init__(self, bin_s: float, n_phases: int):
        self.bin_s = bin_s
        # bin -> [issued, succeeded, hops_on_point_success, point_successes, bytes]
        self.query_bins: Dict[int, List[float]] = defaultdict(lambda: [0, 0, 0, 0, 0])
        self.maint_bins: Dict[int, float] = defaultdict(float)
        #: bin -> write (update-category) bytes.
        self.update_bins: Dict[int, float] = defaultdict(float)
        # bin -> (online, partition_availability, mean_online_replicas)
        self.samples: Dict[int, tuple] = {}
        self.phase_counters: List[Dict[str, float]] = [
            {
                "queries": 0, "successes": 0, "points": 0, "ranges": 0, "bytes": 0,
                "writes": 0, "inserts": 0, "deletes": 0, "updates": 0,
                "write_successes": 0, "write_bytes": 0,
            }
            for _ in range(n_phases)
        ]
        self.load: Dict[int, int] = defaultdict(int)
        self.messages = 0
        self.query_bytes = 0
        self.maint_bytes = 0
        self.update_bytes = 0
        self.repairs = 0
        self.keys_moved = 0
        self.range_incomplete = 0
        self.churn_transitions = 0
        self.joins = 0
        self.failed_joins = 0
        self.leaves = 0

    def _bin(self, t: float) -> int:
        return int(t // self.bin_s)

    def record_query(
        self,
        t: float,
        phase_idx: int,
        *,
        kind: str,
        success: bool,
        hops: int,
        messages: int,
        size: int,
    ) -> None:
        row = self.query_bins[self._bin(t)]
        row[0] += 1
        counters = self.phase_counters[phase_idx]
        counters["queries"] += 1
        counters["bytes"] += size
        if kind == POINT:
            counters["points"] += 1
        else:
            counters["ranges"] += 1
        if success:
            row[1] += 1
            counters["successes"] += 1
            if kind == POINT:
                row[2] += hops
                row[3] += 1
        row[4] += size
        self.messages += messages
        self.query_bytes += size

    def record_maintenance(self, t: float, *, messages: int, size: int) -> None:
        self.maint_bins[self._bin(t)] += size
        self.messages += messages
        self.maint_bytes += size

    def record_write(
        self,
        t: float,
        phase_idx: int,
        *,
        op: str,
        success: bool,
        messages: int,
        size: int,
    ) -> None:
        self.update_bins[self._bin(t)] += size
        counters = self.phase_counters[phase_idx]
        counters["writes"] += 1
        counters[op + "s"] += 1
        counters["write_bytes"] += size
        if success:
            counters["write_successes"] += 1
        self.messages += messages
        self.update_bytes += size

    def record_sample(
        self, t: float, online: int, availability: float, mean_online_replicas: float
    ) -> None:
        self.samples[self._bin(t)] = (online, availability, mean_online_replicas)


class ScenarioRunnerBase:
    """Backend-independent scenario execution skeleton.

    Subclasses implement the hook surface documented on each ``_``-method;
    :meth:`run` drives the common lifecycle: derive RNG streams, build
    the workload, compile every phase onto simulator events, execute,
    assemble the :class:`~repro.scenarios.report.ScenarioReport`.
    """

    #: Safety bound on simulator events per run.
    MAX_EVENTS = 20_000_000

    #: Human-readable backend tag (set by subclasses).
    backend = "abstract"

    def __init__(
        self, spec: ScenarioSpec, *, durability: Optional[DurabilityPolicy] = None
    ):
        spec.validate()
        self.spec = spec
        self.simulator: Optional[Simulator] = None
        #: True while a phase's regional cut is installed.
        self._partition_active = False
        #: True when any phase carries a :class:`WriteMix` -- gates every
        #: write-path branch so read-only runs stay bit-identical to the
        #: pre-write-path engine (golden-trace contract).
        self._writes_active = any(p.writes is not None for p in spec.phases)
        #: Sorted keys believed present in the index (delete/update
        #: targets); populated from the workload when writes are active.
        self._key_pool: List[int] = []
        #: True when any phase carries a :class:`RestartSpec` -- gates
        #: every persistence/recovery branch, so restart-free runs stay
        #: bit-identical to the pre-persistence engine.
        self._restarts_active = any(p.restarts is not None for p in spec.phases)
        #: The crash model's knobs; ``enabled=False`` is the cold-join
        #: baseline (every restart rebuilds from a sponsored join).
        self._durability = durability if durability is not None else DurabilityPolicy()
        self._durability.validate()
        #: The simulated disk holding per-peer checkpoints.
        self._state_store = StateStore(self._durability)
        #: Recovery bookkeeping (populated by :meth:`run` when restarts
        #: are active; ``None`` otherwise).
        self._recovery: Optional[dict] = None
        #: key -> [op, acked] for the last issued mutation per key (the
        #: lost-acked-write / tombstone-resurrection audit; only tracked
        #: when restarts are active).
        self._last_write: Dict[int, list] = {}
        #: The serving-layer cache policy (``None`` when the spec
        #: carries none -- the golden-pinned path: no serving section,
        #: no extra branches).  ``enabled=False`` still produces the
        #: report section (zero counters) so cache-off baselines are
        #: comparable A/B runs.
        self._cache = spec.cache
        #: Authoritative present-key view for the stale-read audit:
        #: seeded from the workload, updated at every acked write.  A
        #: cache hit whose remembered presence disagrees with this set
        #: at hit time is a stale read.
        self._serving_auth: Optional[Set[int]] = None
        self._audited_hits = 0
        self._stale_reads = 0
        #: The spec's multi-dimensional codec, or ``None`` for the
        #: classic one-dimensional keyspace (scalar codecs included) --
        #: gates every mdim branch so scalar runs stay bit-identical to
        #: the pre-codec engine (golden-trace contract).
        self._mdim = (
            spec.codec
            if spec.codec is not None and spec.codec.dims > 1
            else None
        )
        #: Box-query accumulators (see :meth:`_mdim_section`).
        self._mdim_stats: Optional[Dict[str, object]] = None
        if self._mdim is not None:
            self._mdim_stats = {
                "boxes": 0,
                "box_successes": 0,
                "ranges": 0,
                "max_ranges": 0,
                "oracle_expected": 0,
                "oracle_found": 0,
                "sel_sums": [0.0] * self._mdim.dims,
            }
        #: Sorted workload-key universe (oracle ground truth for the
        #: box recall audit; only kept when mdim is active).
        self._universe: Optional[List[int]] = None
        #: key -> per-dimension cells memo for the oracle's membership
        #: filter (universe keys repeat across boxes).
        self._cell_cache: Dict[int, Tuple[int, ...]] = {}

    # -- public API --------------------------------------------------------

    def run(self) -> ScenarioReport:
        spec = self.spec
        (
            keys_rng, build_rng, query_rng, churn_rng,
            member_rng, maint_rng, write_rng, restart_rng,
        ) = self._derive_streams()
        #: Backend restart hooks (cold-rejoin placement) draw from the
        #: restart stream too, so restart scheduling and rejoin
        #: randomness live in one stream.
        self._restart_rng = restart_rng
        if self._restarts_active:
            self._recovery = {
                "first_shutdown": None,
                "last_return": None,
                "restarts": 0,
                "clean": 0,
                "crashes": 0,
                "warm": 0,
                "cold": 0,
                "skipped": 0,
                "baseline": None,
                "div_samples": [],
            }

        peer_keys = workload_keys(
            spec.distribution,
            spec.n_peers,
            spec.keys_per_peer,
            seed=keys_rng,
            codec=spec.codec,
        )
        sim = self._make_simulator()
        self.simulator = sim
        self._setup(peer_keys, build_rng)
        if self._writes_active:
            self._key_pool = sorted({k for keys in peer_keys for k in keys})
        # Zipf point draws, the stale-read audit and the box-recall
        # oracle all need the workload-key universe; only built when
        # something asks for it so plain runs allocate nothing new.
        universe: Optional[List[int]] = None
        if (
            self._cache is not None
            or self._mdim is not None
            or any(p.mix.zipf_keys > 0 for p in spec.phases)
        ):
            universe = sorted({k for keys in peer_keys for k in keys})
        if self._cache is not None:
            self._serving_auth = set(universe)
        if self._mdim is not None:
            self._universe = universe

        tally = _Tally(spec.report_bin_s, len(spec.phases))
        departed: Set[int] = set()
        dist = distribution(spec.distribution)
        boundaries = spec.boundaries()
        total_end = spec.duration_s

        # Join id allocation shared by all phase closures.
        id_box = [self._first_free_id()]

        def alloc_id() -> int:
            pid = id_box[0]
            id_box[0] += 1
            return pid

        self._alloc_id = alloc_id

        # -- per-phase compilation ----------------------------------------
        for idx, (phase, (start, end)) in enumerate(zip(spec.phases, boundaries)):
            sampler = phase.mix.to_sampler(universe=universe, codec=spec.codec)
            sim.schedule(
                start,
                self._make_phase_start(
                    sim, tally, phase, idx, start, end,
                    sampler=sampler,
                    dist=dist,
                    departed=departed,
                    query_rng=query_rng,
                    churn_rng=churn_rng,
                    member_rng=member_rng,
                    maint_rng=maint_rng,
                    write_rng=write_rng,
                    restart_rng=restart_rng,
                ),
            )

        # -- per-bin replication-health sampling ---------------------------
        def sample() -> None:
            online, availability, live_reps = self._sample_state()
            tally.record_sample(sim.now, online, availability, live_reps)
            if sim.now < total_end:
                sim.schedule(spec.report_bin_s, sample)

        sim.schedule(0.0, sample)

        if self._restarts_active:
            # Recovery tracking: divergence trajectory from the first
            # shutdown on (convergence detection happens at assembly,
            # against the pre-shutdown baseline).  Sampled finer than
            # the report bins so time-to-converged-divergence can
            # resolve a warm rejoin (back at the next sample) from a
            # cold one (waiting on the next anti-entropy sweep).
            rec_step = spec.report_bin_s / RECOVERY_SAMPLES_PER_BIN

            def recovery_sample() -> None:
                rec = self._recovery
                if rec["first_shutdown"] is not None:
                    rec["div_samples"].append(
                        (sim.now, self._divergence_state()["mean"])
                    )
                if sim.now < total_end:
                    sim.schedule(rec_step, recovery_sample)

            sim.schedule(rec_step, recovery_sample)

        sim.run_until(total_end, max_events=self.MAX_EVENTS)
        if self._partition_active:
            # A final-phase cut heals at scenario end, before the drain:
            # in-flight queries resolve against a reunited network.
            self._heal_partitions()
            self._partition_active = False
        self._finish(tally)
        return self._assemble(tally, boundaries)

    # -- RNG stream tree ----------------------------------------------------

    def _derive_streams(self):
        """Derive every RNG stream off the spec's master, in the fixed
        order -- append new streams at the end only, or every golden
        trace changes.

        Order: the six shared streams (keys, build, query, churn,
        member, maintenance), the backend extras
        (:meth:`_derive_extra_streams`), then write, restart and finally
        the shard stream root -- each appended after the streams the
        then-existing goldens depended on, so deriving it could not
        shift any of them.
        """
        master = make_rng(self.spec.seed)
        keys_rng = make_rng(master.randrange(2**31))
        build_rng = make_rng(master.randrange(2**31))
        query_rng = make_rng(master.randrange(2**31))
        churn_rng = make_rng(master.randrange(2**31))
        member_rng = make_rng(master.randrange(2**31))
        maint_rng = make_rng(master.randrange(2**31))
        self._derive_extra_streams(master)
        write_rng = make_rng(master.randrange(2**31))
        restart_rng = make_rng(master.randrange(2**31))
        #: Root of the shard stream tree: worker-mode sharding
        #: (:func:`repro.simnet.shard.derive_shard_streams`) seeds its
        #: per-shard sub-runs from this final draw.
        self._shard_stream_root = master.randrange(2**31)
        return (
            keys_rng, build_rng, query_rng, churn_rng,
            member_rng, maint_rng, write_rng, restart_rng,
        )

    def shard_stream_root(self) -> int:
        """Seed of this spec's shard stream tree (the master chain's
        final draw -- see :meth:`_derive_streams`), for deriving
        per-shard worker streams without shifting any existing stream."""
        self._derive_streams()
        return self._shard_stream_root

    # -- backend hook surface ----------------------------------------------

    def _make_simulator(self) -> Simulator:
        """The event loop this run executes on.  The message backend
        swaps in the sharded kernel
        (:class:`repro.simnet.shard.ShardedSimulator`) when
        ``MessageNetConfig.shards`` > 1."""
        return Simulator()

    def _derive_extra_streams(self, master) -> None:
        """Derive backend-specific RNG streams (after the six shared ones)."""

    def _setup(self, peer_keys: Sequence[Sequence[int]], build_rng) -> None:
        """Materialize the backend's overlay for the generated workload."""
        raise NotImplementedError

    def _first_free_id(self) -> int:
        """First peer id available for phase joins."""
        raise NotImplementedError

    def _online_ids(self, departed: Set[int]) -> List[int]:
        """Sorted ids of online peers that have not departed for good."""
        raise NotImplementedError

    def _depart(self, pid: int) -> None:
        """Take a peer offline permanently (membership wave departure)."""
        raise NotImplementedError

    def _churn_toggle(self, pid: int, tally: _Tally) -> Callable[[bool], None]:
        """An availability-toggle callback for one churned peer."""
        raise NotImplementedError

    def _join(self, pid: int, keys: List[int], rng, tally: _Tally) -> bool:
        """Attempt one phase-boundary join; return True on success."""
        raise NotImplementedError

    def _run_maintenance(self, tally: _Tally, rng) -> None:
        """Execute one maintenance tick."""
        raise NotImplementedError

    def _all_ids(self) -> List[int]:
        """Sorted ids of every peer the backend knows (for partitioning)."""
        raise NotImplementedError

    def _set_partitions(self, groups: List[List[int]]) -> None:
        """Install one phase's regional cut (``groups[0]`` = majority)."""
        raise NotImplementedError

    def _heal_partitions(self) -> None:
        """Remove the installed regional cut."""
        raise NotImplementedError

    def _run_one_query(
        self, tally: _Tally, phase: Phase, idx: int, sampler: QuerySampler, rng
    ) -> None:
        """Issue (and for synchronous backends, complete) one query."""
        raise NotImplementedError

    def _run_one_write(
        self, tally: _Tally, phase: Phase, idx: int, op: str, key: int, rng
    ) -> None:
        """Issue one mutation (``op`` in :data:`WRITE_OPS`) for ``key``."""
        raise NotImplementedError

    def _divergence_state(self) -> Dict[str, float]:
        """End-of-run replica staleness (see
        :func:`repro.pgrid.replication.divergence_stats`) plus the
        surviving ``tombstones`` count.  Only called when writes ran."""
        raise NotImplementedError

    def _checkpoint_all(self, tally: _Tally) -> None:
        """Checkpoint every online peer into the state store (periodic
        cadence of the crash model; only called when restarts are
        active and durability is enabled)."""
        raise NotImplementedError

    def _restart_shutdown(self, pid: int, crash: bool, tally: _Tally) -> bool:
        """Shut one peer down for a restart.  A *clean* shutdown
        (``crash=False``) checkpoints at this instant when durability is
        enabled; a crash keeps only the last periodic checkpoint.
        Returns False (no-op) when the peer is already offline."""
        raise NotImplementedError

    def _restart_return(self, pid: int, tally: _Tally) -> str:
        """Bring a restarted peer back: ``"warm"`` (snapshot restored,
        delta reconciled through the ordinary machinery) or ``"cold"``
        (sponsored join from nothing -- the durability-disabled
        baseline, or no checkpoint on disk)."""
        raise NotImplementedError

    def _durable_key_view(self) -> Tuple[Set[int], Set[int]]:
        """``(present_keys, live_tombstones)`` across *all* peers --
        keys counting outboxes, tombstones only unexpired ones.  The
        end-of-run audit for lost acked writes and tombstone
        resurrections reads this."""
        raise NotImplementedError

    def _sample_state(self) -> Tuple[int, float, float]:
        """``(online, partition_availability, mean_online_replicas)`` now."""
        raise NotImplementedError

    def _finish(self, tally: _Tally) -> None:
        """Post-run hook (e.g. drain in-flight messages)."""

    # -- assembly hooks ----------------------------------------------------

    def _extra_bins(self) -> Set[int]:
        """Additional report bins the backend observed traffic in."""
        return set()

    def _bin_bandwidth(self, tally: _Tally, b: int) -> Tuple[float, float]:
        """``(query_Bps, maint_Bps)`` for one report bin."""
        issued_row = tally.query_bins.get(b)
        qbytes = issued_row[4] if issued_row else 0
        return qbytes / tally.bin_s, tally.maint_bins.get(b, 0.0) / tally.bin_s

    def _bin_update_bps(self, tally: _Tally, b: int) -> float:
        """Write-path bytes/second for one report bin."""
        return tally.update_bins.get(b, 0.0) / tally.bin_s

    def _phase_bytes(self, counters: Dict[str, float], start: float, end: float) -> int:
        """Query bytes attributed to one phase."""
        return int(counters["bytes"])

    def _phase_update_bytes(
        self, counters: Dict[str, float], start: float, end: float
    ) -> int:
        """Write-path bytes attributed to one phase."""
        return int(counters["write_bytes"])

    def _traffic_totals(self, tally: _Tally) -> Tuple[int, int, int, int]:
        """``(messages, bytes_query, bytes_maintenance, bytes_update)``."""
        return tally.messages, tally.query_bytes, tally.maint_bytes, tally.update_bytes

    def _load_by_peer(self, tally: _Tally) -> List[int]:
        """Per-peer load counts, in stable (sorted peer id) order."""
        raise NotImplementedError

    def _final_state(self) -> Dict[str, float]:
        """End-of-run structural aggregates: ``final_online``,
        ``final_partition_availability``, ``final_coverage``,
        ``n_peers_end``."""
        raise NotImplementedError

    def _message_section(self) -> Optional[dict]:
        """The report's optional ``message_level`` section (message
        backend only)."""
        return None

    def _serving_counters(self) -> Dict[str, int]:
        """Serving-layer counters aggregated across the backend's cache
        sites (only called when the spec carries a cache policy).
        Missing keys read as zero."""
        return {}

    def _serving_latency(self) -> Dict[str, float]:
        """Point-query latency stats under the serving layer (the
        message backend reports wall-clock percentiles; the data-plane
        backend has no wire time)."""
        return {"count": 0}

    # -- shared helpers ----------------------------------------------------

    def _build_blueprint(
        self, peer_keys: Sequence[Sequence[int]], build_rng
    ) -> PGridNetwork:
        """The ideal (Algorithm 1) overlay both backends start from."""
        spec = self.spec
        flat = [k for keys in peer_keys for k in keys]
        return PGridNetwork.ideal(
            flat,
            spec.n_peers,
            d_max=spec.d_max,
            n_min=spec.n_min,
            max_refs=spec.max_refs,
            rng=build_rng,
        )

    @staticmethod
    def _group_health(groups: Dict, online_of) -> Tuple[int, float, float]:
        """Shared replication-health aggregation over replica groups.

        ``groups`` maps a partition key to member ids; ``online_of(pid)``
        reports liveness.  Returns ``(online, availability,
        mean_online_replicas)``.
        """
        online = 0
        groups_alive = 0
        n_groups = 0
        live_counts: List[int] = []
        for group in groups.values():
            n_groups += 1
            live = sum(1 for pid in group if online_of(pid))
            online += live
            live_counts.append(live)
            if live:
                groups_alive += 1
        availability = groups_alive / n_groups if n_groups else 0.0
        return online, availability, mean(live_counts) if live_counts else 0.0

    # -- phase machinery ---------------------------------------------------

    def _make_phase_start(
        self,
        sim: Simulator,
        tally: _Tally,
        phase: Phase,
        idx: int,
        start: float,
        end: float,
        *,
        sampler: QuerySampler,
        dist,
        departed: Set[int],
        query_rng,
        churn_rng,
        member_rng,
        maint_rng,
        write_rng,
        restart_rng,
    ) -> Callable[[], None]:
        spec = self.spec

        def begin_phase() -> None:
            # -- heal the previous phase's regional cut --------------------
            # (phase-start events order before same-timestamp events
            # scheduled mid-run, so healing here keeps cut lifetimes
            # exactly one phase without floating-point boundary tricks)
            if self._partition_active:
                self._heal_partitions()
                self._partition_active = False

            # -- membership wave at the boundary ---------------------------
            if phase.leave_peers:
                online_ids = self._online_ids(departed)
                leaving = member_rng.sample(
                    online_ids, min(phase.leave_peers, len(online_ids))
                )
                for pid in leaving:
                    self._depart(pid)
                    departed.add(pid)
                tally.leaves += len(leaving)
            for _ in range(phase.join_peers):
                pid = self._alloc_id()
                if self._mdim is not None:
                    keys = [
                        self._mdim.encode(p)
                        for p in dist.sample_points(
                            spec.keys_per_peer, self._mdim.dims, member_rng
                        )
                    ]
                else:
                    keys = dist.sample_keys(spec.keys_per_peer, member_rng)
                if self._join(pid, keys, member_rng, tally):
                    tally.joins += 1
                else:
                    tally.failed_joins += 1

            # -- regional cut for this phase -------------------------------
            if phase.partitions is not None:
                ids = self._all_ids()
                shuffled = member_rng.sample(ids, len(ids))
                groups: List[List[int]] = []
                cursor = 0
                for frac in phase.partitions.fractions[:-1]:
                    size = int(round(frac * len(ids)))
                    groups.append(sorted(shuffled[cursor:cursor + size]))
                    cursor += size
                groups.append(sorted(shuffled[cursor:]))
                self._set_partitions(groups)
                self._partition_active = True

            # -- churn processes for this phase ----------------------------
            if phase.churn is not None:
                candidates = self._online_ids(departed)
                count = max(1, round(phase.churn.fraction * len(candidates)))
                if count < len(candidates):
                    chosen = churn_rng.sample(candidates, count)
                else:
                    chosen = candidates
                start_churn(
                    sim,
                    [self._churn_toggle(pid, tally) for pid in chosen],
                    config=phase.churn.to_config(),
                    until=end,
                    stagger=True,
                    rng=churn_rng,
                )

            # -- maintenance cadence ---------------------------------------
            if phase.maintenance_interval_s is not None:
                interval = phase.maintenance_interval_s

                def maintenance_tick() -> None:
                    if sim.now >= end:
                        return
                    self._run_maintenance(tally, maint_rng)
                    sim.schedule(interval, maintenance_tick)

                sim.schedule(interval, maintenance_tick)

            # -- query arrival process -------------------------------------
            if phase.query_rate > 0:
                # Batched issue: each arrival releases ``batch_size``
                # concurrent queries, with the inter-arrival gap widened
                # by the same factor so the long-run rate is unchanged.
                # batch_size == 1 divides by one and loops once -- the
                # golden-pinned path is bit-identical.
                batch = phase.mix.batch_size

                def query_tick() -> None:
                    if sim.now >= end:
                        return
                    for _ in range(batch):
                        self._run_one_query(tally, phase, idx, sampler, query_rng)
                    sim.schedule(
                        query_rng.expovariate(phase.query_rate / batch), query_tick
                    )

                sim.schedule(
                    query_rng.expovariate(phase.query_rate / batch), query_tick
                )

            # -- write arrival process -------------------------------------
            if phase.writes is not None:
                wmix = phase.writes
                wsampler = wmix.to_sampler(codec=spec.codec)

                def write_tick() -> None:
                    if sim.now >= end:
                        return
                    op, key = self._draw_write(wmix, wsampler, write_rng)
                    if self._recovery is not None:
                        # The durability audit tracks the last issued
                        # mutation per key; the backend flips ``acked``
                        # through _note_acked_write on success.
                        norm = "delete" if op == "delete" else "insert"
                        self._last_write[key] = [norm, False]
                    self._run_one_write(tally, phase, idx, op, key, write_rng)
                    sim.schedule(write_rng.expovariate(wmix.write_rate), write_tick)

                sim.schedule(write_rng.expovariate(wmix.write_rate), write_tick)

            # -- restart schedule for this phase ---------------------------
            if phase.restarts is not None:
                self._compile_restarts(sim, tally, phase, end, departed, restart_rng)

        return begin_phase

    def _compile_restarts(
        self,
        sim: Simulator,
        tally: _Tally,
        phase: Phase,
        end: float,
        departed: Set[int],
        rng,
    ) -> None:
        """Schedule one phase's process restarts (see
        :class:`~repro.scenarios.spec.RestartSpec`).

        With durability enabled, a baseline checkpoint of the whole
        online population is taken at the phase start and refreshed
        every ``snapshot_interval_s`` -- the staleness bound a crash
        restore pays.  Clean shutdowns additionally checkpoint at their
        shutdown instant inside :meth:`_restart_shutdown`.
        """
        restarts = phase.restarts
        if self._durability.enabled:
            self._checkpoint_all(tally)
            interval = self._durability.snapshot_interval_s

            def checkpoint_tick() -> None:
                if sim.now >= end:
                    return
                self._checkpoint_all(tally)
                sim.schedule(interval, checkpoint_tick)

            sim.schedule(interval, checkpoint_tick)

        candidates = self._online_ids(departed)
        count = max(1, round(restarts.fraction * len(candidates)))
        chosen = rng.sample(candidates, min(count, len(candidates)))
        for pid in chosen:
            delay = rng.uniform(0.0, restarts.stagger_s)
            down = rng.uniform(restarts.min_down_s, restarts.max_down_s)
            crash = rng.random() < restarts.crash_fraction
            sim.schedule(delay, self._make_restart(sim, tally, pid, down, crash))

    def _make_restart(
        self, sim: Simulator, tally: _Tally, pid: int, down: float, crash: bool
    ) -> Callable[[], None]:
        def shutdown() -> None:
            rec = self._recovery
            if rec["baseline"] is None:
                # Pre-shutdown divergence baseline, sampled lazily just
                # before the first peer goes down: the level recovery
                # must return the overlay to.
                rec["baseline"] = self._divergence_state()["mean"]
            if not self._restart_shutdown(pid, crash, tally):
                rec["skipped"] += 1
                return
            rec["restarts"] += 1
            rec["crashes" if crash else "clean"] += 1
            if rec["first_shutdown"] is None:
                rec["first_shutdown"] = sim.now

            def comeback() -> None:
                mode = self._restart_return(pid, tally)
                rec[mode] += 1
                rec["last_return"] = sim.now

            sim.schedule(down, comeback)

        return shutdown

    def _note_acked_write(self, op: str, key: int) -> None:
        """Backend callback: mutation ``op`` on ``key`` was acked to the
        issuer.  Updates the serving-layer stale-read authority (acked
        state is the strongest claim the system made to a client) and
        flips the durability audit's ``acked`` bit if the ack still
        matches the last issued operation for the key."""
        norm = "delete" if op == "delete" else "insert"
        if self._serving_auth is not None:
            if norm == "delete":
                self._serving_auth.discard(key)
            else:
                self._serving_auth.add(key)
        if self._recovery is None:
            return
        entry = self._last_write.get(key)
        if entry is not None and entry[0] == norm:
            entry[1] = True

    def _audit_cache_hit(self, node_id: int, key: int, present: bool) -> None:
        """Backend callback: a cached answer for ``key`` was served at
        ``node_id``.  Compares the remembered presence against the
        authoritative key view *at hit time*; a disagreement is a stale
        read (the answer a coherent cache would not have given)."""
        self._audited_hits += 1
        if self._serving_auth is not None and present != (key in self._serving_auth):
            self._stale_reads += 1

    # -- box-query machinery (multi-dimensional codecs) --------------------

    def _mdim_box_plan(
        self, lo_cells: Tuple[int, ...], hi_cells: Tuple[int, ...]
    ) -> Tuple[List[Tuple[int, int]], Set[int]]:
        """Decompose one box into key ranges and compute its oracle.

        The oracle is the brute-force ground truth the recall audit
        compares served results against: workload-universe keys inside
        the issued ranges that pass the cell-level membership predicate
        (see the recall-audit rules in :mod:`repro.pgrid.mdim`).  Also
        accumulates ranges-per-box and per-dimension selectivity.
        """
        codec = self._mdim
        stats = self._mdim_stats
        ranges = codec.box_ranges(lo_cells, hi_cells)
        stats["boxes"] += 1
        stats["ranges"] += len(ranges)
        stats["max_ranges"] = max(stats["max_ranges"], len(ranges))
        span = codec.cells_per_dim
        for j in range(codec.dims):
            stats["sel_sums"][j] += (hi_cells[j] - lo_cells[j] + 1) / span
        oracle: Set[int] = set()
        universe = self._universe
        cache = self._cell_cache
        dims = codec.dims
        for lo, hi in ranges:
            i = bisect_left(universe, lo)
            j = bisect_left(universe, hi)
            for key in universe[i:j]:
                cells = cache.get(key)
                if cells is None:
                    cells = codec.cells_of(key)
                    cache[key] = cells
                if all(
                    lo_cells[t] <= cells[t] <= hi_cells[t] for t in range(dims)
                ):
                    oracle.add(key)
        return ranges, oracle

    def _mdim_box_done(
        self, oracle: Set[int], found_keys, success: bool
    ) -> None:
        """Fold one completed box query into the recall audit."""
        stats = self._mdim_stats
        if success:
            stats["box_successes"] += 1
        if oracle:
            stats["oracle_expected"] += len(oracle)
            stats["oracle_found"] += len(oracle.intersection(found_keys))

    def _mdim_section(self) -> dict:
        """The report's ``mdim`` section (multi-dimensional specs only)."""
        codec = self._mdim
        stats = self._mdim_stats
        boxes = stats["boxes"]
        expected = stats["oracle_expected"]
        return {
            "dims": codec.dims,
            "bits_per_dim": codec.bits_per_dim,
            "split_budget": codec.split_budget,
            "boxes": int(boxes),
            "box_successes": int(stats["box_successes"]),
            "box_success_rate": (
                (stats["box_successes"] / boxes) if boxes else None
            ),
            "ranges_total": int(stats["ranges"]),
            "ranges_per_box_mean": (stats["ranges"] / boxes) if boxes else None,
            "ranges_per_box_max": int(stats["max_ranges"]),
            "recall_expected": int(expected),
            "recall_found": int(stats["oracle_found"]),
            "box_recall": (
                (stats["oracle_found"] / expected) if expected else None
            ),
            "selectivity_per_dim": [
                (s / boxes) if boxes else None for s in stats["sel_sums"]
            ],
        }

    def _draw_write(
        self, mix: WriteMix, sampler: QuerySampler, rng
    ) -> Tuple[str, int]:
        """Draw one mutation ``(op, key)`` from a phase's write mix.

        Inserts mint a fresh key from the (possibly hotspot-focused)
        sampler and track it in the pool; deletes and updates target the
        tracked key *nearest* the sampled point, so a write hotspot
        concentrates all three operations on the same region.  Both
        backends draw from the same stream, so the logical mutation
        sequence is identical across them.
        """
        pool = self._key_pool
        total = mix.insert_weight + mix.delete_weight + mix.update_weight
        draw = rng.random() * total
        target = sampler.draw_point_key(rng)
        if draw < mix.insert_weight or not pool:
            i = bisect_left(pool, target)
            if i == len(pool) or pool[i] != target:
                pool.insert(i, target)
            return "insert", target
        # Truly nearest, not just the successor: a target at a hotspot's
        # upper edge must hit the in-window predecessor, not a key far
        # to the right.
        i = bisect_left(pool, target)
        if i == len(pool):
            i -= 1
        elif i > 0 and target - pool[i - 1] < pool[i] - target:
            i -= 1
        key = pool[i]
        if draw < mix.insert_weight + mix.delete_weight:
            del pool[i]
            return "delete", key
        return "update", key

    # -- report assembly ---------------------------------------------------

    def _assemble(self, tally: _Tally, boundaries) -> ScenarioReport:
        spec = self.spec
        bin_s = spec.report_bin_s

        writes_active = self._writes_active
        bins = sorted(
            set(tally.samples)
            | set(tally.query_bins)
            | set(tally.maint_bins)
            | set(tally.update_bins)
            | self._extra_bins()
        )
        series: List[dict] = []
        for b in bins:
            issued, ok, hops, point_ok, _qbytes = tally.query_bins.get(
                b, (0, 0, 0, 0, 0)
            )
            online, availability, live_reps = tally.samples.get(b, (None, None, None))
            query_bps, maint_bps = self._bin_bandwidth(tally, b)
            row = {
                "minute": b * bin_s / 60.0,
                "online": online,
                "queries": issued,
                "successes": ok,
                "success_rate": (ok / issued) if issued else None,
                "mean_hops": (hops / point_ok) if point_ok else None,
                "query_Bps": query_bps,
                "maint_Bps": maint_bps,
                "partition_availability": availability,
                "mean_online_replicas": live_reps,
            }
            if writes_active:
                # Only write-carrying scenarios grow the extra series
                # column: read-only reports stay byte-identical.
                row["update_Bps"] = self._bin_update_bps(tally, b)
            series.append(row)

        phases = []
        for phase, (start, end), counters in zip(
            spec.phases, boundaries, tally.phase_counters
        ):
            issued = counters["queries"]
            row = {
                "name": phase.name,
                "start_min": start / 60.0,
                "end_min": end / 60.0,
                "queries": int(issued),
                "point_queries": int(counters["points"]),
                "range_queries": int(counters["ranges"]),
                "success_rate": (counters["successes"] / issued) if issued else None,
                "query_bytes": self._phase_bytes(counters, start, end),
            }
            if writes_active:
                writes = counters["writes"]
                row["writes"] = int(writes)
                row["write_success_rate"] = (
                    (counters["write_successes"] / writes) if writes else None
                )
                row["update_bytes"] = self._phase_update_bytes(counters, start, end)
            phases.append(row)

        total_issued = sum(c["queries"] for c in tally.phase_counters)
        total_ok = sum(c["successes"] for c in tally.phase_counters)
        all_hops = sum(row[2] for row in tally.query_bins.values())
        point_ok = sum(row[3] for row in tally.query_bins.values())
        messages, bytes_query, bytes_maint, bytes_update = self._traffic_totals(tally)
        final = self._final_state()

        loads = self._load_by_peer(tally)
        load_mean = mean(loads) if loads else 0.0
        load_max = max(loads) if loads else 0
        load_cv = std(loads) / load_mean if load_mean > 0 else 0.0

        totals = {
            "queries": int(total_issued),
            "successes": int(total_ok),
            "success_rate": (total_ok / total_issued) if total_issued else None,
            "point_queries": int(sum(c["points"] for c in tally.phase_counters)),
            "range_queries": int(sum(c["ranges"] for c in tally.phase_counters)),
            "range_incomplete": tally.range_incomplete,
            # Hop means only aggregate successful point lookups: range
            # messages measure fan-out, not path length.
            "mean_hops": (all_hops / point_ok) if point_ok else None,
            "messages": messages,
            "bytes_query": bytes_query,
            "bytes_maintenance": bytes_maint,
            "bytes_total": bytes_query + bytes_maint + bytes_update,
            "repairs": tally.repairs,
            "keys_moved": tally.keys_moved,
            "joins": tally.joins,
            "failed_joins": tally.failed_joins,
            "leaves": tally.leaves,
            "churn_transitions": tally.churn_transitions,
            "final_online": final["final_online"],
            "final_partition_availability": final["final_partition_availability"],
            "final_coverage": final["final_coverage"],
        }

        writes_section = None
        if writes_active:
            total_writes = sum(c["writes"] for c in tally.phase_counters)
            write_ok = sum(c["write_successes"] for c in tally.phase_counters)
            totals["writes"] = int(total_writes)
            totals["write_successes"] = int(write_ok)
            totals["write_success_rate"] = (
                (write_ok / total_writes) if total_writes else None
            )
            totals["bytes_update"] = bytes_update
            divergence = self._divergence_state()
            writes_section = {
                "writes": int(total_writes),
                "inserts": int(sum(c["inserts"] for c in tally.phase_counters)),
                "deletes": int(sum(c["deletes"] for c in tally.phase_counters)),
                "updates": int(sum(c["updates"] for c in tally.phase_counters)),
                "successes": int(write_ok),
                "success_rate": (write_ok / total_writes) if total_writes else None,
                "bytes_update": bytes_update,
                # Replica staleness at scenario end: how far the write
                # stream outran replica sync + anti-entropy (the paper's
                # replica-consistency story made measurable).
                "divergence": divergence,
            }

        recovery_section = None
        if self._recovery is not None:
            recovery_section = self._recovery_section(tally)

        serving_section = None
        if self._cache is not None:
            serving_section = self._serving_section(loads)

        mdim_section = None
        if self._mdim is not None:
            mdim_section = self._mdim_section()

        return ScenarioReport(
            scenario=spec.name,
            seed=spec.seed,
            n_peers_start=spec.n_peers,
            n_peers_end=int(final["n_peers_end"]),
            duration_s=spec.duration_s,
            bin_s=bin_s,
            phases=phases,
            series=series,
            totals=totals,
            load={
                "mean": load_mean,
                "max": load_max,
                "cv": load_cv,
                "max_over_mean": (load_max / load_mean) if load_mean else 0.0,
            },
            message_level=self._message_section(),
            writes=writes_section,
            recovery=recovery_section,
            serving=serving_section,
            mdim=mdim_section,
        )

    def _serving_section(self, loads: List[int]) -> dict:
        """The report's ``serving`` section (cache-carrying specs only).

        Emitted for ``enabled=False`` policies too: the counters are
        all zero then, but ``load_gini`` and ``latency_s`` measure the
        *same* quantities as the cache-on run, which is what makes the
        on/off pair an A/B comparison instead of two incomparable
        reports.  ``stale_read_rate`` is stale reads over *audited*
        hits -- every hit is audited synchronously at serve time, so
        the denominator equals ``cache_hits``.
        """
        policy = self._cache
        counters = self._serving_counters()
        hits = int(counters.get("result_hits", 0))
        misses = int(counters.get("result_misses", 0))
        lookups = hits + misses
        return {
            "enabled": policy.enabled,
            "policy": {
                "result_ttl_s": policy.result_ttl_s,
                "route_ttl_s": policy.route_ttl_s,
                "result_capacity": policy.result_capacity,
                "route_capacity": policy.route_capacity,
                "adaptive_replication": policy.adaptive_replication,
                "hot_threshold": policy.hot_threshold,
                "replica_boost": policy.replica_boost,
                "decay_interval_s": policy.decay_interval_s,
                "grant_ttl_s": policy.grant_ttl_s,
                "front_ends": policy.front_ends,
            },
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "audited_hits": self._audited_hits,
            "stale_reads": self._stale_reads,
            "stale_read_rate": (
                (self._stale_reads / self._audited_hits) if self._audited_hits else 0.0
            ),
            "dedup_joined": int(counters.get("dedup_joined", 0)),
            "invalidations": int(counters.get("invalidations", 0)),
            "route_uses": int(counters.get("route_uses", 0)),
            "route_invalidations": int(counters.get("route_invalidations", 0)),
            "grants": int(counters.get("grants", 0)),
            "revokes": int(counters.get("revokes", 0)),
            "grant_hits": int(counters.get("grant_hits", 0)),
            "helpers_final": int(counters.get("helpers_final", 0)),
            "load_gini": gini(loads),
            "latency_s": self._serving_latency(),
        }

    def _recovery_section(self, tally: _Tally) -> dict:
        """The report's ``recovery`` section (restart scenarios only).

        ``time_to_converged_divergence_s`` measures from the *last*
        restart return to the first per-bin divergence sample back
        within :data:`CONVERGENCE_SLACK` of the pre-shutdown baseline;
        a run that never re-converges reports the remaining scenario
        time as a penalty with ``converged: false``.
        ``recovery_maint_bytes`` is the maintenance-category traffic
        spent between the first shutdown and that convergence instant --
        the repair bill warm rejoin is supposed to shrink.
        """
        spec = self.spec
        rec = self._recovery
        out = {
            "schema": STATE_SCHEMA,
            "durability_enabled": self._durability.enabled,
            "snapshot_interval_s": self._durability.snapshot_interval_s,
            "restarts": rec["restarts"],
            "clean_shutdowns": rec["clean"],
            "crashes": rec["crashes"],
            "warm_rejoins": rec["warm"],
            "cold_rejoins": rec["cold"],
            "skipped": rec["skipped"],
            "checkpoints": self._state_store.checkpoints,
        }
        first = rec["first_shutdown"]
        last = rec["last_return"]
        out["first_shutdown_min"] = None if first is None else first / 60.0
        out["last_return_min"] = None if last is None else last / 60.0
        baseline = rec["baseline"] if rec["baseline"] is not None else 0.0
        samples = rec["div_samples"]
        out["divergence_baseline"] = baseline
        out["divergence_final"] = samples[-1][1] if samples else None
        converged_t = None
        if last is not None:
            for t, div in samples:
                if t >= last and div <= baseline + CONVERGENCE_SLACK:
                    converged_t = t
                    break
        out["converged"] = converged_t is not None
        if last is None:
            out["time_to_converged_divergence_s"] = None
            out["recovery_maint_bytes"] = 0
        else:
            end_t = converged_t if converged_t is not None else spec.duration_s
            out["time_to_converged_divergence_s"] = end_t - last
            b0, b1 = int(first // spec.report_bin_s), int(end_t // spec.report_bin_s)
            out["recovery_maint_bytes"] = int(
                round(
                    sum(
                        self._bin_bandwidth(tally, b)[1] * spec.report_bin_s
                        for b in range(b0, b1 + 1)
                    )
                )
            )
        lost, resurrected, tracked = self._write_fate()
        out["acked_writes_tracked"] = tracked
        out["lost_acked_writes"] = lost
        out["tombstone_resurrections"] = resurrected
        return out

    def _write_fate(self) -> Tuple[int, int, int]:
        """``(lost_acked_writes, tombstone_resurrections, tracked)``.

        A *lost acked write* is a key whose last issued mutation was an
        acknowledged insert/update yet the key exists on no peer (keys
        and outboxes included); a *tombstone resurrection* is a key
        whose last issued mutation was an acknowledged delete yet the
        key is present somewhere with no live death certificate left
        anywhere to kill it.  Keys whose last mutation was never acked
        are in limbo by definition and not audited.
        """
        if not self._last_write:
            return 0, 0, 0
        present, live_tombstones = self._durable_key_view()
        lost = resurrected = tracked = 0
        for key, (op, acked) in self._last_write.items():
            if not acked:
                continue
            tracked += 1
            if op == "insert":
                if key not in present:
                    lost += 1
            elif key in present and key not in live_tombstones:
                resurrected += 1
        return lost, resurrected, tracked

"""Structured results of a scenario run, with a byte-stable JSON form.

:class:`ScenarioReport` carries everything the ISSUE-level questions
need: query success under churn, hop counts, message and bandwidth
totals, per-peer load imbalance and replication health over time.  The
report is *deterministic*: running the same
:class:`~repro.scenarios.spec.ScenarioSpec` twice with the same seed
yields byte-identical :meth:`to_json` output (pinned by the golden-trace
regression test), so reports can be diffed across commits like the perf
snapshot in ``BENCH_core.json``.

Bandwidth model
---------------
The synchronous data plane has no wire format, so bytes are accounted
with a fixed model: every inter-peer message costs :data:`HEADER_BYTES`
and every shipped key :data:`KEY_BYTES` (one 53-bit key plus framing).
The absolute numbers are nominal; their *ratios* across scenarios and
over time mirror the paper's Fig. 8 maintenance-vs-query split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import SimulationError

__all__ = ["ScenarioReport", "merge_reports", "HEADER_BYTES", "KEY_BYTES"]

#: Nominal bytes per inter-peer message (addressing + framing).
HEADER_BYTES = 48
#: Nominal bytes per data key shipped inside a message.
KEY_BYTES = 8


def _canonical(value: Any) -> Any:
    """Round floats (and normalize ``-0.0``) for stable, tidy JSON."""
    if isinstance(value, float):
        rounded = round(value, 9)
        return 0.0 if rounded == 0.0 else rounded
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


@dataclass
class ScenarioReport:
    """Everything one scenario run measured.

    ``series`` holds one row per report bin (``minute``-keyed) with the
    online population, query volume/success/hops, query and maintenance
    bandwidth (Bps under the module's byte model) and replication health
    (fraction of partitions with a live replica, mean online replicas
    per partition).  ``phases`` summarizes each declared phase;
    ``totals`` and ``load`` aggregate the whole run.
    """

    scenario: str
    seed: int
    n_peers_start: int
    n_peers_end: int
    duration_s: float
    bin_s: float
    phases: List[Dict[str, Any]] = field(default_factory=list)
    series: List[Dict[str, Any]] = field(default_factory=list)
    totals: Dict[str, Any] = field(default_factory=dict)
    load: Dict[str, Any] = field(default_factory=dict)
    #: Message-level backend section (query latency percentiles,
    #: timeout/retry counts, drop breakdown, in-flight peak, per-link
    #: bandwidth).  ``None`` for data-plane runs -- and *omitted* from
    #: the serialized form then, so data-plane golden traces are
    #: unaffected by the section's existence.
    message_level: Optional[Dict[str, Any]] = None
    #: Write-path section (insert/delete/update counts, write success,
    #: update-category bytes, end-of-run replica divergence).  ``None``
    #: for read-only scenarios and *omitted* from the serialized form
    #: then, keeping pre-write-path golden traces byte-identical.
    writes: Optional[Dict[str, Any]] = None
    #: Persistence/recovery section (restart and crash counts, warm vs
    #: cold rejoins, time-to-converged-divergence, recovery maintenance
    #: bytes, lost-acked-writes and tombstone-resurrection audit -- see
    #: :meth:`repro.scenarios.base.ScenarioRunnerBase._recovery_section`).
    #: ``None`` for restart-free scenarios and *omitted* from the
    #: serialized form then, keeping existing golden traces
    #: byte-identical.
    recovery: Optional[Dict[str, Any]] = None
    #: Query-serving front-end section (result/route cache hit rates,
    #: stale-read audit, dedup and invalidation counters, adaptive
    #: replication grants, per-peer load Gini, point-query latency
    #: percentiles -- see
    #: :meth:`repro.scenarios.base.ScenarioRunnerBase._serving_section`).
    #: ``None`` for cache-free specs and *omitted* from the serialized
    #: form then, keeping existing golden traces byte-identical.
    serving: Optional[Dict[str, Any]] = None
    #: Multi-dimensional keyspace section (box-query counts,
    #: ranges-per-box, the box recall audit against the brute-force
    #: oracle, per-dimension selectivity -- see
    #: :meth:`repro.scenarios.base.ScenarioRunnerBase._mdim_section`
    #: and :mod:`repro.pgrid.mdim`).  ``None`` for one-dimensional
    #: specs and *omitted* from the serialized form then, keeping
    #: existing golden traces byte-identical.
    mdim: Optional[Dict[str, Any]] = None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-type dict with canonicalized floats (JSON-ready)."""
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_peers_start": self.n_peers_start,
            "n_peers_end": self.n_peers_end,
            "duration_s": self.duration_s,
            "bin_s": self.bin_s,
            "phases": self.phases,
            "series": self.series,
            "totals": self.totals,
            "load": self.load,
        }
        if self.message_level is not None:
            payload["message_level"] = self.message_level
        if self.writes is not None:
            payload["writes"] = self.writes
        if self.recovery is not None:
            payload["recovery"] = self.recovery
        if self.serving is not None:
            payload["serving"] = self.serving
        if self.mdim is not None:
            payload["mdim"] = self.mdim
        return _canonical(payload)

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # -- convenient views --------------------------------------------------

    def success_rate_series(self) -> List[Tuple[float, float]]:
        """(minute, query success rate) for bins that saw queries."""
        return [
            (row["minute"], row["success_rate"])
            for row in self.series
            if row["success_rate"] is not None
        ]

    def bandwidth_series(self) -> List[Tuple[float, float, float]]:
        """(minute, query Bps, maintenance Bps) per report bin."""
        return [
            (row["minute"], row["query_Bps"], row["maint_Bps"])
            for row in self.series
        ]

    def update_bandwidth_series(self) -> List[Tuple[float, float]]:
        """(minute, write-path Bps) per report bin; empty for read-only
        scenarios (the column only exists when a phase carries writes)."""
        return [
            (row["minute"], row["update_Bps"])
            for row in self.series
            if "update_Bps" in row
        ]

    def summary_rows(self) -> List[Tuple[str, float]]:
        """Headline numbers as printable rows (mirrors
        :meth:`repro.simnet.experiment.ExperimentReport.summary_rows`)."""

        def _f(value) -> float:
            # Undefined aggregates are stored as None (NaN is not valid
            # JSON); render them as NaN for printing.
            return float("nan") if value is None else float(value)

        totals = self.totals
        rows = [
            ("queries issued", _f(totals.get("queries", 0))),
            ("query success rate", _f(totals.get("success_rate"))),
            ("mean lookup hops", _f(totals.get("mean_hops"))),
            ("messages total", _f(totals.get("messages", 0))),
            ("bandwidth total (bytes)", _f(totals.get("bytes_total", 0))),
            ("load CV across peers", _f(self.load.get("cv"))),
            ("final partition availability", _f(totals.get("final_partition_availability"))),
            ("final live-key coverage", _f(totals.get("final_coverage"))),
        ]
        if self.writes is not None:
            rows += [
                ("writes issued", _f(self.writes.get("writes", 0))),
                ("write success rate", _f(self.writes.get("success_rate"))),
                ("write bytes", _f(self.writes.get("bytes_update", 0))),
                ("final replica divergence", _f(self.writes.get("divergence", {}).get("mean"))),
            ]
        if self.recovery is not None:
            rows += [
                ("restarts (clean+crash)", _f(self.recovery.get("restarts", 0))),
                ("warm rejoins", _f(self.recovery.get("warm_rejoins", 0))),
                ("time to converged divergence (s)",
                 _f(self.recovery.get("time_to_converged_divergence_s"))),
                ("recovery maintenance bytes",
                 _f(self.recovery.get("recovery_maint_bytes", 0))),
                ("lost acked writes", _f(self.recovery.get("lost_acked_writes", 0))),
                ("tombstone resurrections",
                 _f(self.recovery.get("tombstone_resurrections", 0))),
            ]
        if self.serving is not None:
            latency = self.serving.get("latency_s", {})
            rows += [
                ("cache hit rate", _f(self.serving.get("cache_hit_rate"))),
                ("stale read rate", _f(self.serving.get("stale_read_rate"))),
                ("serving p99 latency (s)", _f(latency.get("p99"))),
                ("per-peer load Gini", _f(self.serving.get("load_gini"))),
            ]
        if self.mdim is not None:
            rows += [
                ("box queries issued", _f(self.mdim.get("boxes", 0))),
                ("ranges per box (mean)", _f(self.mdim.get("ranges_per_box_mean"))),
                ("box recall", _f(self.mdim.get("box_recall"))),
            ]
        return rows


# -- worker-shard merging ----------------------------------------------------
#
# The thin merge layer of worker-mode sharding
# (:func:`repro.scenarios.message_runner.run_sharded_scenario`): per-shard
# reports over disjoint keyspace slices fold into ONE report with the
# identical schema.  Counts and bytes add; ratios are recomputed from
# their merged numerators/denominators wherever both survive in the
# report (success rates, hit rates); aggregates whose inputs the report
# does not carry (hop means, latency percentiles, Gini/CV) merge as
# count-weighted means of the per-shard values -- exact for the sums,
# a documented approximation for the order statistics.

#: Keys taking the maximum across shards (peaks, worst cases).
_MERGE_MAX = frozenset({
    "max", "max_bytes", "max_over_mean", "last_return_min",
    "time_to_converged_divergence_s", "ranges_per_box_max",
})
#: Keys taking the minimum (first occurrence across shards).
_MERGE_MIN = frozenset({"first_shutdown_min"})
#: Keys merged as weighted means (ratios/means with no recomputable
#: numerator+denominator pair in the report).
_MERGE_MEAN = frozenset({
    "mean", "mean_bytes", "mean_hops", "cv", "p50", "p90", "p99", "p999",
    "load_gini", "partition_availability", "mean_online_replicas",
    "final_partition_availability", "final_coverage",
    "divergence_baseline", "divergence_final",
})
#: Values copied from the first shard verbatim (configuration echoes,
#: identical across shards by construction).
_MERGE_FIRST = frozenset({"config", "policy", "dims", "bits_per_dim", "split_budget"})
#: Per-key sibling count fields used as weights for _MERGE_MEAN keys,
#: tried in order before falling back to the caller-supplied weights.
_WEIGHT_SIBLINGS = {
    "mean": ("count", "replicas"),
    "p50": ("count",), "p90": ("count",), "p99": ("count",),
    "p999": ("count",),
    "mean_bytes": ("used",),
    "mean_hops": ("successes", "point_queries"),
}


def _weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    total = sum(weights)
    if total <= 0:
        return sum(values) / len(values)
    return sum(v * w for v, w in zip(values, weights)) / total


def _merge_value(key: str, values: list, weights: Sequence[float]):
    """One key's merged value across the shards carrying it."""
    if all(v is None for v in values):
        return None
    pairs = [(v, w) for v, w in zip(values, weights) if v is not None]
    vals = [v for v, _ in pairs]
    wts = [w for _, w in pairs]
    first = vals[0]
    if isinstance(first, bool):
        return all(vals)
    if isinstance(first, str):
        return first
    if isinstance(first, dict):
        return _merge_section(vals, wts)
    if isinstance(first, list):
        if key == "top":
            # Busiest links across all shards, re-ranked.
            merged = [row for v in vals for row in v]
            merged.sort(key=lambda row: (-row[2], row[0], row[1]))
            return merged[:5]
        if key == "selectivity_per_dim":
            # Element-wise weighted mean across shards.
            out = []
            for i in range(len(first)):
                entries = [
                    (v[i], w) for v, w in zip(vals, wts) if v[i] is not None
                ]
                out.append(
                    _weighted_mean([e for e, _ in entries], [w for _, w in entries])
                    if entries
                    else None
                )
            return out
        return first
    if key in _MERGE_MAX:
        return max(vals)
    if key in _MERGE_MIN:
        return min(vals)
    if key in _MERGE_MEAN:
        return _weighted_mean(vals, wts)
    return sum(vals)


def _merge_section(dicts: List[dict], weights: Sequence[float]) -> dict:
    """Generic schema-preserving dict merge (key order from shard 0)."""
    out: Dict[str, Any] = {}
    for key in dicts[0]:
        present = [(d[key], w) for d, w in zip(dicts, weights) if key in d]
        values = [v for v, _ in present]
        wts = [w for _, w in present]
        if key in _MERGE_FIRST:
            out[key] = values[0]
            continue
        siblings = _WEIGHT_SIBLINGS.get(key)
        if siblings is not None and key in _MERGE_MEAN:
            for sibling in siblings:
                candidate = [d.get(sibling) for d in dicts if key in d]
                if all(isinstance(c, (int, float)) for c in candidate):
                    wts = candidate
                    break
        out[key] = _merge_value(key, values, wts)
    _recompute_rates(out)
    return out


def _recompute_rates(section: Dict[str, Any]) -> None:
    """Rebuild ratio keys from their merged numerator/denominator."""
    if "success_rate" in section and "successes" in section:
        if "queries" in section:
            denominator = section["queries"]
        elif "writes" in section and isinstance(section["writes"], (int, float)):
            denominator = section["writes"]
        else:
            denominator = None
        if denominator is not None:
            section["success_rate"] = (
                section["successes"] / denominator if denominator else None
            )
    if "write_success_rate" in section and "write_successes" in section:
        writes = section.get("writes")
        if isinstance(writes, (int, float)):
            section["write_success_rate"] = (
                section["write_successes"] / writes if writes else None
            )
    if "cache_hit_rate" in section:
        hits = section.get("cache_hits", 0)
        lookups = hits + section.get("cache_misses", 0)
        section["cache_hit_rate"] = (hits / lookups) if lookups else 0.0
    if "stale_read_rate" in section:
        audited = section.get("audited_hits", 0)
        section["stale_read_rate"] = (
            section.get("stale_reads", 0) / audited if audited else 0.0
        )
    if "max_over_mean" in section and "max" in section and "mean" in section:
        mean_v = section["mean"]
        section["max_over_mean"] = (section["max"] / mean_v) if mean_v else 0.0
    if "box_success_rate" in section:
        boxes = section.get("boxes", 0)
        section["box_success_rate"] = (
            section.get("box_successes", 0) / boxes if boxes else None
        )
        section["ranges_per_box_mean"] = (
            section.get("ranges_total", 0) / boxes if boxes else None
        )
    if "box_recall" in section:
        expected = section.get("recall_expected", 0)
        section["box_recall"] = (
            section.get("recall_found", 0) / expected if expected else None
        )


def _merge_series(all_series: List[List[dict]]) -> List[dict]:
    """Merge per-shard series row-wise by report bin (``minute``)."""
    by_minute: Dict[float, List[dict]] = {}
    for series in all_series:
        for row in series:
            by_minute.setdefault(row["minute"], []).append(row)
    merged = []
    for minute in sorted(by_minute):
        rows = by_minute[minute]
        queries = sum(r["queries"] for r in rows)
        successes = sum(r["successes"] for r in rows)
        online_vals = [r["online"] for r in rows if r["online"] is not None]
        hop_rows = [r for r in rows if r["mean_hops"] is not None]
        avail_rows = [
            r for r in rows if r["partition_availability"] is not None
        ]
        out = {
            "minute": minute,
            "online": sum(online_vals) if online_vals else None,
            "queries": queries,
            "successes": successes,
            "success_rate": (successes / queries) if queries else None,
            # Success-weighted: the per-row point-success counts behind
            # each shard's hop mean are not in the report.
            "mean_hops": (
                _weighted_mean(
                    [r["mean_hops"] for r in hop_rows],
                    [r["successes"] for r in hop_rows],
                )
                if hop_rows
                else None
            ),
            "query_Bps": sum(r["query_Bps"] for r in rows),
            "maint_Bps": sum(r["maint_Bps"] for r in rows),
            "partition_availability": (
                _weighted_mean(
                    [r["partition_availability"] for r in avail_rows],
                    [r["online"] or 0 for r in avail_rows],
                )
                if avail_rows
                else None
            ),
            "mean_online_replicas": (
                _weighted_mean(
                    [r["mean_online_replicas"] for r in avail_rows],
                    [r["online"] or 0 for r in avail_rows],
                )
                if avail_rows
                else None
            ),
        }
        if any("update_Bps" in r for r in rows):
            out["update_Bps"] = sum(r.get("update_Bps", 0.0) for r in rows)
        merged.append(out)
    return merged


def _merge_phases(all_phases: List[List[dict]]) -> List[dict]:
    """Merge per-shard phase summaries positionally (same spec shape)."""
    merged = []
    for rows in zip(*all_phases):
        queries = sum(r["queries"] for r in rows)
        rated = [r for r in rows if r["success_rate"] is not None]
        out = {
            "name": rows[0]["name"],
            "start_min": rows[0]["start_min"],
            "end_min": rows[0]["end_min"],
            "queries": queries,
            "point_queries": sum(r["point_queries"] for r in rows),
            "range_queries": sum(r["range_queries"] for r in rows),
            "success_rate": (
                _weighted_mean(
                    [r["success_rate"] for r in rated],
                    [r["queries"] for r in rated],
                )
                if rated
                else None
            ),
            "query_bytes": sum(r["query_bytes"] for r in rows),
        }
        if any("writes" in r for r in rows):
            writes = sum(r.get("writes", 0) for r in rows)
            wrated = [r for r in rows if r.get("write_success_rate") is not None]
            out["writes"] = writes
            out["write_success_rate"] = (
                _weighted_mean(
                    [r["write_success_rate"] for r in wrated],
                    [r.get("writes", 0) for r in wrated],
                )
                if wrated
                else None
            )
            out["update_bytes"] = sum(r.get("update_bytes", 0) for r in rows)
        merged.append(out)
    return merged


def merge_reports(
    reports: Sequence["ScenarioReport"],
    *,
    scenario: Optional[str] = None,
    seed: Optional[int] = None,
) -> "ScenarioReport":
    """Fold per-shard reports (disjoint sub-populations of one sliced
    scenario) into a single report with the identical schema.

    All shards must share the timeline (``duration_s``/``bin_s``) --
    they come from one spec split by
    :func:`~repro.scenarios.message_runner.slice_spec`.  Populations,
    counts and bytes add; rates are recomputed from merged counts;
    means/percentiles merge count-weighted (see the module comment).
    """
    if not reports:
        raise SimulationError("cannot merge zero shard reports")
    first = reports[0]
    for other in reports[1:]:
        if (
            abs(other.duration_s - first.duration_s) > 1e-9
            or abs(other.bin_s - first.bin_s) > 1e-9
        ):
            raise SimulationError(
                "shard reports disagree on the timeline; they must come "
                "from one sliced spec"
            )
    weights = [max(r.n_peers_start, 1) for r in reports]

    def optional_section(getter) -> Optional[dict]:
        sections = [getter(r) for r in reports]
        present = [
            (s, w) for s, w in zip(sections, weights) if s is not None
        ]
        if not present:
            return None
        return _merge_section([s for s, _ in present], [w for _, w in present])

    return ScenarioReport(
        scenario=scenario if scenario is not None else first.scenario,
        seed=seed if seed is not None else first.seed,
        n_peers_start=sum(r.n_peers_start for r in reports),
        n_peers_end=sum(r.n_peers_end for r in reports),
        duration_s=first.duration_s,
        bin_s=first.bin_s,
        phases=_merge_phases([r.phases for r in reports]),
        series=_merge_series([r.series for r in reports]),
        totals=_merge_section([r.totals for r in reports], weights),
        load=_merge_section([r.load for r in reports], weights),
        message_level=optional_section(lambda r: r.message_level),
        writes=optional_section(lambda r: r.writes),
        recovery=optional_section(lambda r: r.recovery),
        serving=optional_section(lambda r: r.serving),
        mdim=optional_section(lambda r: r.mdim),
    )

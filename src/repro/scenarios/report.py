"""Structured results of a scenario run, with a byte-stable JSON form.

:class:`ScenarioReport` carries everything the ISSUE-level questions
need: query success under churn, hop counts, message and bandwidth
totals, per-peer load imbalance and replication health over time.  The
report is *deterministic*: running the same
:class:`~repro.scenarios.spec.ScenarioSpec` twice with the same seed
yields byte-identical :meth:`to_json` output (pinned by the golden-trace
regression test), so reports can be diffed across commits like the perf
snapshot in ``BENCH_core.json``.

Bandwidth model
---------------
The synchronous data plane has no wire format, so bytes are accounted
with a fixed model: every inter-peer message costs :data:`HEADER_BYTES`
and every shipped key :data:`KEY_BYTES` (one 53-bit key plus framing).
The absolute numbers are nominal; their *ratios* across scenarios and
over time mirror the paper's Fig. 8 maintenance-vs-query split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ScenarioReport", "HEADER_BYTES", "KEY_BYTES"]

#: Nominal bytes per inter-peer message (addressing + framing).
HEADER_BYTES = 48
#: Nominal bytes per data key shipped inside a message.
KEY_BYTES = 8


def _canonical(value: Any) -> Any:
    """Round floats (and normalize ``-0.0``) for stable, tidy JSON."""
    if isinstance(value, float):
        rounded = round(value, 9)
        return 0.0 if rounded == 0.0 else rounded
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


@dataclass
class ScenarioReport:
    """Everything one scenario run measured.

    ``series`` holds one row per report bin (``minute``-keyed) with the
    online population, query volume/success/hops, query and maintenance
    bandwidth (Bps under the module's byte model) and replication health
    (fraction of partitions with a live replica, mean online replicas
    per partition).  ``phases`` summarizes each declared phase;
    ``totals`` and ``load`` aggregate the whole run.
    """

    scenario: str
    seed: int
    n_peers_start: int
    n_peers_end: int
    duration_s: float
    bin_s: float
    phases: List[Dict[str, Any]] = field(default_factory=list)
    series: List[Dict[str, Any]] = field(default_factory=list)
    totals: Dict[str, Any] = field(default_factory=dict)
    load: Dict[str, Any] = field(default_factory=dict)
    #: Message-level backend section (query latency percentiles,
    #: timeout/retry counts, drop breakdown, in-flight peak, per-link
    #: bandwidth).  ``None`` for data-plane runs -- and *omitted* from
    #: the serialized form then, so data-plane golden traces are
    #: unaffected by the section's existence.
    message_level: Optional[Dict[str, Any]] = None
    #: Write-path section (insert/delete/update counts, write success,
    #: update-category bytes, end-of-run replica divergence).  ``None``
    #: for read-only scenarios and *omitted* from the serialized form
    #: then, keeping pre-write-path golden traces byte-identical.
    writes: Optional[Dict[str, Any]] = None
    #: Persistence/recovery section (restart and crash counts, warm vs
    #: cold rejoins, time-to-converged-divergence, recovery maintenance
    #: bytes, lost-acked-writes and tombstone-resurrection audit -- see
    #: :meth:`repro.scenarios.base.ScenarioRunnerBase._recovery_section`).
    #: ``None`` for restart-free scenarios and *omitted* from the
    #: serialized form then, keeping existing golden traces
    #: byte-identical.
    recovery: Optional[Dict[str, Any]] = None
    #: Query-serving front-end section (result/route cache hit rates,
    #: stale-read audit, dedup and invalidation counters, adaptive
    #: replication grants, per-peer load Gini, point-query latency
    #: percentiles -- see
    #: :meth:`repro.scenarios.base.ScenarioRunnerBase._serving_section`).
    #: ``None`` for cache-free specs and *omitted* from the serialized
    #: form then, keeping existing golden traces byte-identical.
    serving: Optional[Dict[str, Any]] = None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-type dict with canonicalized floats (JSON-ready)."""
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_peers_start": self.n_peers_start,
            "n_peers_end": self.n_peers_end,
            "duration_s": self.duration_s,
            "bin_s": self.bin_s,
            "phases": self.phases,
            "series": self.series,
            "totals": self.totals,
            "load": self.load,
        }
        if self.message_level is not None:
            payload["message_level"] = self.message_level
        if self.writes is not None:
            payload["writes"] = self.writes
        if self.recovery is not None:
            payload["recovery"] = self.recovery
        if self.serving is not None:
            payload["serving"] = self.serving
        return _canonical(payload)

    def to_json(self) -> str:
        """Deterministic JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # -- convenient views --------------------------------------------------

    def success_rate_series(self) -> List[Tuple[float, float]]:
        """(minute, query success rate) for bins that saw queries."""
        return [
            (row["minute"], row["success_rate"])
            for row in self.series
            if row["success_rate"] is not None
        ]

    def bandwidth_series(self) -> List[Tuple[float, float, float]]:
        """(minute, query Bps, maintenance Bps) per report bin."""
        return [
            (row["minute"], row["query_Bps"], row["maint_Bps"])
            for row in self.series
        ]

    def update_bandwidth_series(self) -> List[Tuple[float, float]]:
        """(minute, write-path Bps) per report bin; empty for read-only
        scenarios (the column only exists when a phase carries writes)."""
        return [
            (row["minute"], row["update_Bps"])
            for row in self.series
            if "update_Bps" in row
        ]

    def summary_rows(self) -> List[Tuple[str, float]]:
        """Headline numbers as printable rows (mirrors
        :meth:`repro.simnet.experiment.ExperimentReport.summary_rows`)."""

        def _f(value) -> float:
            # Undefined aggregates are stored as None (NaN is not valid
            # JSON); render them as NaN for printing.
            return float("nan") if value is None else float(value)

        totals = self.totals
        rows = [
            ("queries issued", _f(totals.get("queries", 0))),
            ("query success rate", _f(totals.get("success_rate"))),
            ("mean lookup hops", _f(totals.get("mean_hops"))),
            ("messages total", _f(totals.get("messages", 0))),
            ("bandwidth total (bytes)", _f(totals.get("bytes_total", 0))),
            ("load CV across peers", _f(self.load.get("cv"))),
            ("final partition availability", _f(totals.get("final_partition_availability"))),
            ("final live-key coverage", _f(totals.get("final_coverage"))),
        ]
        if self.writes is not None:
            rows += [
                ("writes issued", _f(self.writes.get("writes", 0))),
                ("write success rate", _f(self.writes.get("success_rate"))),
                ("write bytes", _f(self.writes.get("bytes_update", 0))),
                ("final replica divergence", _f(self.writes.get("divergence", {}).get("mean"))),
            ]
        if self.recovery is not None:
            rows += [
                ("restarts (clean+crash)", _f(self.recovery.get("restarts", 0))),
                ("warm rejoins", _f(self.recovery.get("warm_rejoins", 0))),
                ("time to converged divergence (s)",
                 _f(self.recovery.get("time_to_converged_divergence_s"))),
                ("recovery maintenance bytes",
                 _f(self.recovery.get("recovery_maint_bytes", 0))),
                ("lost acked writes", _f(self.recovery.get("lost_acked_writes", 0))),
                ("tombstone resurrections",
                 _f(self.recovery.get("tombstone_resurrections", 0))),
            ]
        if self.serving is not None:
            latency = self.serving.get("latency_s", {})
            rows += [
                ("cache hit rate", _f(self.serving.get("cache_hit_rate"))),
                ("stale read rate", _f(self.serving.get("stale_read_rate"))),
                ("serving p99 latency (s)", _f(latency.get("p99"))),
                ("per-peer load Gini", _f(self.serving.get("load_gini"))),
            ]
        return rows

"""Declarative scenario engine for churn/skew stress experiments.

This package turns the repo's stress ingredients -- churn processes
(:mod:`repro.simnet.churn`), key distributions
(:mod:`repro.workloads.distributions`), sequential maintenance
(:mod:`repro.pgrid.maintenance`) and the overlay data plane
(:mod:`repro.pgrid.network`) -- into one declarative subsystem with
**two execution backends** behind the same spec:

``spec``
    :class:`ScenarioSpec`: phases of arrivals/departures, churn regimes,
    flash-crowd query hotspots, point/range query mixes, write mixes
    (:class:`WriteMix`: insert/delete/update rates with hotspot
    support), maintenance cadence -- an experiment as data.
``base``
    :class:`~repro.scenarios.base.ScenarioRunnerBase`: the shared phase
    compiler both backends plug into.
``runner``
    :class:`ScenarioRunner` (backend ``"dataplane"``): synchronous
    queries on :class:`~repro.pgrid.network.PGridNetwork`; the fast
    backend -- N=4096 scenarios in seconds.
``message_runner``
    :class:`MessageScenarioRunner` (backend ``"message"``): the same
    phases over :class:`~repro.simnet.node.PGridNode` protocol nodes
    with per-link latency, loss, timeouts and retries; adds a
    ``message_level`` report section (latency percentiles,
    timeout/retry counts, drop breakdown, in-flight peak, per-link
    bandwidth, and the route-repair counters).  Route repair is
    configured per run via ``MessageNetConfig(repair=RouteRepairPolicy
    (...))`` -- see :mod:`repro.pgrid.liveness`.
``report``
    :class:`ScenarioReport`: hop counts, success under churn,
    message/bandwidth totals, per-peer load imbalance and replication
    health over time, with byte-stable JSON for golden-trace testing.
``library``
    Eighteen named scenarios (uniform-baseline, pareto-hotspot,
    flash-crowd, mass-join, mass-leave, paper-sec51-churn,
    regional-outage, correlated-churn, the write workloads
    read-write-balanced, write-hotspot-adversarial and
    asymmetric-partition-writes, the persistence/restart
    scenarios restart-storm, rolling-deploy and
    datacenter-power-cycle, the serving-layer scenarios
    zipf-serving and cache-coherence-storm, plus the
    multi-dimensional scenarios geo-box-serving and
    correlated-hotspot-2d) runnable at N=4096 on either backend.
    Multi-dimensional specs carry a
    :class:`~repro.scenarios.spec.ZOrderCodec` (``ScenarioSpec.codec``)
    that interleaves d attributes into one key and decomposes box
    queries into z-order ranges -- see :mod:`repro.pgrid.mdim`.
    Restart phases (:class:`RestartSpec`) drive the persistence &
    recovery subsystem (:mod:`repro.pgrid.state`): warm rejoins from
    checkpoints when durability is on
    (:class:`~repro.pgrid.state.DurabilityPolicy`), cold sponsored
    joins when off.
``invariants``
    Structural checks (prefix-complete partition, complementary routing,
    live key coverage) for the randomized invariant test layer.

Quickstart::

    from repro.scenarios import run_scenario, scenario
    spec = scenario("paper-sec51-churn", n_peers=256)
    fast = run_scenario(spec)                       # data-plane backend
    wire = run_scenario(spec, backend="message")    # message-level backend
    print(wire.message_level["latency_s"])

To add a new scenario, write a factory returning a
:class:`ScenarioSpec` and register it in
:data:`repro.scenarios.library.SCENARIOS`; ``bench_scenarios.py`` and
the determinism tests pick it up automatically on both backends.
"""

from . import base, invariants, library, message_runner, report, runner, spec  # noqa: F401
from ..pgrid.liveness import RouteRepairPolicy  # noqa: F401
from ..pgrid.state import DurabilityPolicy  # noqa: F401
from .base import ScenarioRunnerBase  # noqa: F401
from .invariants import (  # noqa: F401
    check_invariants,
    check_replica_divergence,
    live_key_coverage,
)
from .library import SCENARIOS, scenario  # noqa: F401
from .message_runner import (  # noqa: F401
    MessageNetConfig,
    MessageScenarioRunner,
    run_sharded_scenario,
    slice_spec,
)
from .report import ScenarioReport, merge_reports  # noqa: F401
from .runner import ScenarioRunner  # noqa: F401
from .spec import (  # noqa: F401
    CachePolicy,
    ChurnSpec,
    Hotspot,
    KeyCodec,
    PartitionSpec,
    Phase,
    QueryMix,
    RestartSpec,
    ScalarCodec,
    ScenarioSpec,
    WriteMix,
    ZOrderCodec,
)

from ..exceptions import DomainError

#: Execution backends by name -- the selector used by
#: ``bench_scenarios.py``, the examples and the determinism tests.
BACKENDS = {
    "dataplane": ScenarioRunner,
    "message": MessageScenarioRunner,
}


def runner_for(backend: str) -> type:
    """The runner class for a backend name (raises on unknown names)."""
    try:
        return BACKENDS[backend]
    except KeyError:
        raise DomainError(
            f"unknown scenario backend {backend!r}; known: {sorted(BACKENDS)}"
        ) from None


def run_scenario(
    spec: ScenarioSpec, *, backend: str = "dataplane", **runner_kwargs
) -> ScenarioReport:
    """Execute ``spec`` on the chosen backend and return its report.

    Extra keyword arguments go to the runner's constructor -- e.g.
    ``run_scenario(spec, backend="message",
    net_config=MessageNetConfig(loss_rate=0.05))`` to tune the wire.
    """
    return runner_for(backend)(spec, **runner_kwargs).run()


__all__ = [
    "ScenarioSpec",
    "Phase",
    "QueryMix",
    "WriteMix",
    "CachePolicy",
    "KeyCodec",
    "ScalarCodec",
    "ZOrderCodec",
    "Hotspot",
    "ChurnSpec",
    "PartitionSpec",
    "RestartSpec",
    "RouteRepairPolicy",
    "DurabilityPolicy",
    "ScenarioRunnerBase",
    "ScenarioRunner",
    "MessageScenarioRunner",
    "MessageNetConfig",
    "BACKENDS",
    "runner_for",
    "run_scenario",
    "run_sharded_scenario",
    "slice_spec",
    "merge_reports",
    "ScenarioReport",
    "SCENARIOS",
    "scenario",
    "check_invariants",
    "check_replica_divergence",
    "live_key_coverage",
]

"""Declarative scenario engine for churn/skew stress experiments.

This package turns the repo's stress ingredients -- churn processes
(:mod:`repro.simnet.churn`), key distributions
(:mod:`repro.workloads.distributions`), sequential maintenance
(:mod:`repro.pgrid.maintenance`) and the overlay data plane
(:mod:`repro.pgrid.network`) -- into one declarative subsystem:

``spec``
    :class:`ScenarioSpec`: phases of arrivals/departures, churn regimes,
    flash-crowd query hotspots, point/range query mixes, maintenance
    cadence -- an experiment as data.
``runner``
    :class:`ScenarioRunner`: compiles a spec onto
    :class:`~repro.simnet.engine.Simulator` events and executes it over
    a :class:`~repro.pgrid.network.PGridNetwork`.
``report``
    :class:`ScenarioReport`: hop counts, success under churn,
    message/bandwidth totals, per-peer load imbalance and replication
    health over time, with byte-stable JSON for golden-trace testing.
``library``
    Six named scenarios (uniform-baseline, pareto-hotspot, flash-crowd,
    mass-join, mass-leave, paper-sec51-churn) runnable at N=4096.
``invariants``
    Structural checks (prefix-complete partition, complementary routing,
    live key coverage) for the randomized invariant test layer.

Quickstart::

    from repro.scenarios import ScenarioRunner, scenario
    report = ScenarioRunner(scenario("paper-sec51-churn", n_peers=256)).run()
    print(report.totals["success_rate"], report.success_rate_series())

To add a new scenario, write a factory returning a
:class:`ScenarioSpec` and register it in
:data:`repro.scenarios.library.SCENARIOS`; ``bench_scenarios.py`` and
the determinism tests pick it up automatically.
"""

from . import invariants, library, report, runner, spec  # noqa: F401
from .invariants import check_invariants, live_key_coverage  # noqa: F401
from .library import SCENARIOS, scenario  # noqa: F401
from .report import ScenarioReport  # noqa: F401
from .runner import ScenarioRunner, run_scenario  # noqa: F401
from .spec import ChurnSpec, Hotspot, Phase, QueryMix, ScenarioSpec  # noqa: F401

__all__ = [
    "ScenarioSpec",
    "Phase",
    "QueryMix",
    "Hotspot",
    "ChurnSpec",
    "ScenarioRunner",
    "run_scenario",
    "ScenarioReport",
    "SCENARIOS",
    "scenario",
    "check_invariants",
    "live_key_coverage",
]

"""Query processing over the trie overlay: prefix routing and range shower.

Exact-match search resolves the requested key bit by bit (Sec. 2.1):
whenever the current peer cannot resolve the next bit locally it forwards
the query to a randomly chosen routing reference for that level.  The
expected cost is ``O(log K)`` messages for ``K`` leaf partitions
*irrespective of the trie's shape*, because every hop resolves at least
one bit and the references are random within the complementary subtree.

Range queries use the recursive *shower* strategy enabled by in-network
key order (the very property uniform-hashing DHTs destroy, Sec. 6): the
initiating peer answers its own slice of the range and forwards the
disjoint remainders into the complementary subtrees that intersect the
range.  Message cost is ``O(log K + K_range)`` where ``K_range`` is the
number of partitions the range spans -- no per-key lookups, no
fragmentation.

Per-hop constant factors matter as much as the asymptotics once overlays
grow past a few hundred peers, so the inner loops avoid allocation:

* reference selection probes the routing table in random order instead of
  copying and shuffling the reference list (one ``randrange`` in the
  common all-online case);
* the key ranges of a peer's own partition and of every complementary
  subtree are memoized per :class:`~repro.pgrid.bits.Path` instead of
  being rebuilt from fresh ``Path`` objects on every ``_shower`` call;
* local range extraction delegates to the sorted key store
  (``O(log n + hits)`` instead of a full scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from .._util import RngLike, make_rng
from ..exceptions import RoutingError
from .bits import Path
from .keyspace import KEY_BITS
from .peer import PGridPeer

if TYPE_CHECKING:  # pragma: no cover
    from .network import PGridNetwork

__all__ = ["LookupResult", "RangeResult", "alive_ref", "lookup", "range_query"]

#: Bound on routing hops before a lookup is declared failed (a correct
#: overlay of K partitions needs at most ~log2 K + retries).
MAX_HOPS = 4 * KEY_BITS


@dataclass
class LookupResult:
    """Outcome of an exact-match query.

    ``hops`` counts forwarded messages (0 if the start peer was already
    responsible), matching the paper's "query hops" measure.
    """

    key: int
    found: bool
    responsible: Optional[int]
    hops: int
    visited: List[int]
    value_present: bool = False

    @property
    def success(self) -> bool:
        """True iff a responsible, online peer was reached."""
        return self.found


@dataclass
class RangeResult:
    """Outcome of a range query.

    ``keys`` are all data keys found in the half-open integer range;
    ``messages`` counts every inter-peer forward; ``partitions`` the
    distinct peer :class:`~repro.pgrid.bits.Path` partitions that
    contributed results.
    """

    lo: int
    hi: int
    keys: Set[int] = field(default_factory=set)
    messages: int = 0
    partitions: Set[Path] = field(default_factory=set)
    failures: int = 0

    @property
    def complete(self) -> bool:
        """True iff no sub-range had to be abandoned due to failures."""
        return self.failures == 0


@lru_cache(maxsize=65536)
def _subtree_ranges(path: Path) -> Tuple[Tuple[int, int], Tuple[Tuple[int, int], ...]]:
    """``((own_lo, own_hi), ((comp_lo, comp_hi) per level))`` for ``path``.

    The complementary subtree at level ``l`` is the sibling of the
    ``l+1``-bit prefix; its key range is pure shift arithmetic, memoized
    because every ``_shower`` step visits all levels of the current
    peer's path.  ``Path`` is immutable and hashable, so the cache stays
    valid across routing-table rebuilds and peer churn.
    """
    own = path.key_range(KEY_BITS)
    comps = tuple(
        path.prefix(level).extend(1 - path.bit(level)).key_range(KEY_BITS)
        for level in range(path.length)
    )
    return own, comps


def alive_ref(
    network: "PGridNetwork", peer: PGridPeer, level: int, rand
) -> Optional[PGridPeer]:
    """A random online routing reference of ``peer`` at ``level``.

    Probes a single random reference first (no copy, no shuffle); only
    when that one is offline does it fall back to shuffling the few
    remaining indices -- churn is the exception, not the rule.
    """
    refs = peer.routing.refs_view(level)
    n = len(refs)
    if n == 0:
        return None
    peers = network.peers
    # int(random() * n) instead of randrange(n): one C-level draw versus
    # randrange's Python-level argument handling, ~4 draws per lookup.
    i = int(rand.random() * n) if n > 1 else 0
    other = peers.get(refs[i])
    if other is not None and other.online:
        return other
    if n == 1:
        return None
    order = [j for j in range(n) if j != i]
    rand.shuffle(order)
    for j in order:
        other = peers.get(refs[j])
        if other is not None and other.online:
            return other
    return None


def lookup(
    network: "PGridNetwork",
    key: int,
    *,
    start: Optional[int] = None,
    rng: RngLike = None,
) -> LookupResult:
    """Route an exact-match query for ``key`` through the overlay.

    ``start`` selects the issuing peer (random online peer by default).
    The lookup retries alternative references when a next-hop candidate
    is offline; it fails (``found=False``) only when every reference for
    the required level is dead or the hop bound is exceeded.
    """
    rand = make_rng(rng)
    current = network.peer(start) if start is not None else network.random_online_peer(rand)
    if current is None:
        raise RoutingError("no online peer available to issue the query")
    visited = [current.peer_id]
    hops = 0
    while hops <= MAX_HOPS:
        level = current.resolves(key)
        if level >= current.path.length:
            return LookupResult(
                key=key,
                found=True,
                responsible=current.peer_id,
                hops=hops,
                visited=visited,
                value_present=key in current.keys,
            )
        nxt = alive_ref(network, current, level, rand)
        if nxt is None:
            return LookupResult(
                key=key, found=False, responsible=None, hops=hops, visited=visited
            )
        current = nxt
        hops += 1
        visited.append(current.peer_id)
    return LookupResult(key=key, found=False, responsible=None, hops=hops, visited=visited)


def range_query(
    network: "PGridNetwork",
    lo: int,
    hi: int,
    *,
    start: Optional[int] = None,
    rng: RngLike = None,
) -> RangeResult:
    """Answer a range query ``[lo, hi)`` with the shower strategy.

    The initiating peer collects its local matches, then splits the
    remainder of the range along its own path: the complementary subtree
    at every level covers a disjoint slice of the key space, and each
    slice intersecting the range receives one forwarded sub-query.  The
    recursion bottoms out at peers whose partitions lie inside the range.
    """
    if not 0 <= lo <= hi <= (1 << KEY_BITS):
        raise RoutingError(f"invalid key range [{lo}, {hi})")
    rand = make_rng(rng)
    result = RangeResult(lo=lo, hi=hi)
    first = network.peer(start) if start is not None else network.random_online_peer(rand)
    if first is None:
        raise RoutingError("no online peer available to issue the query")
    _shower(network, first, lo, hi, result, rand)
    return result


def _shower(
    network: "PGridNetwork",
    peer: PGridPeer,
    lo: int,
    hi: int,
    result: RangeResult,
    rand,
) -> None:
    """Recursive step of the shower range algorithm."""
    if lo >= hi:
        return
    (own_lo, own_hi), comps = _subtree_ranges(peer.path)
    # Local contribution.
    if own_lo < hi and lo < own_hi:
        found = peer.matching_keys(lo if lo > own_lo else own_lo, hi if hi < own_hi else own_hi)
        result.partitions.add(peer.path)
        if found:
            result.keys.update(found)
    # Forward into every complementary subtree intersecting the range.
    for level, (c_lo, c_hi) in enumerate(comps):
        sub_lo = lo if lo > c_lo else c_lo
        sub_hi = hi if hi < c_hi else c_hi
        if sub_lo >= sub_hi:
            continue
        nxt = alive_ref(network, peer, level, rand)
        result.messages += 1
        if nxt is None:
            result.failures += 1
            continue
        _shower(network, nxt, sub_lo, sub_hi, result, rand)

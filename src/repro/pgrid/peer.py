"""P-Grid peer state (Sec. 2.1).

A peer is responsible for the key-space partition identified by its
``path``; it stores the data keys of that partition, knows its structural
replicas (other peers with the same path) and keeps a per-level routing
table into the complementary subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from ..exceptions import DomainError
from .bits import Path, ROOT
from .keyspace import KEY_BITS
from .routing import RoutingTable

__all__ = ["PGridPeer"]


@dataclass
class PGridPeer:
    """One overlay node.

    ``online`` models churn: offline peers drop every message addressed
    to them (queries retry through alternative references).
    """

    peer_id: int
    path: Path = ROOT
    keys: Set[int] = field(default_factory=set)
    replicas: Set[int] = field(default_factory=set)
    routing: RoutingTable = field(default_factory=RoutingTable)
    online: bool = True

    def responsible_for(self, key: int) -> bool:
        """True iff ``key`` falls inside this peer's partition."""
        return self.path.contains_key(key, KEY_BITS)

    def store(self, key: int) -> None:
        """Store a data key; rejects keys outside the partition."""
        if not self.responsible_for(key):
            raise DomainError(
                f"key {key} outside partition {self.path} of peer {self.peer_id}"
            )
        self.keys.add(key)

    def resolves(self, key: int) -> int:
        """Number of leading path bits of this peer matching ``key``.

        Routing forwards a query at the first unresolved bit; a peer that
        resolves its whole path is responsible for the key.
        """
        for level in range(self.path.length):
            key_bit = (key >> (KEY_BITS - 1 - level)) & 1
            if key_bit != self.path.bit(level):
                return level
        return self.path.length

    def matching_keys(self, lo: int, hi: int) -> Set[int]:
        """Stored keys inside the half-open integer range ``[lo, hi)``."""
        return {k for k in self.keys if lo <= k < hi}

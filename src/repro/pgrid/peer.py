"""P-Grid peer state (Sec. 2.1).

A peer is responsible for the key-space partition identified by its
``path``; it stores the data keys of that partition, knows its structural
replicas (other peers with the same path) and keeps a per-level routing
table into the complementary subtrees.

Keys live in a sorted :class:`~repro.pgrid.keystore.KeyStore` so the
range-query hot path (``matching_keys``) runs in ``O(log n + hits)``
instead of scanning the whole key set; any iterable assigned to ``keys``
is coerced, so call sites may keep handing over plain sets.

Deletes leave a *tombstone* (a second, normally tiny ``KeyStore``):
replica reconciliation is a union, so without a death certificate a
deleted key would resurrect from the first stale replica it meets.
Tombstone semantics are delete-wins (see
:func:`repro.pgrid.replication.reconcile`); a subsequent insert clears
the tombstone on every peer it is applied to.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..exceptions import DomainError
from .bits import Path, ROOT
from .keyspace import KEY_BITS
from .keystore import KeyStore
from .routing import RoutingTable

__all__ = ["PGridPeer"]


class PGridPeer:
    """One overlay node.

    ``online`` models churn: offline peers drop every message addressed
    to them (queries retry through alternative references).
    """

    __slots__ = (
        "peer_id", "path", "_keys", "replicas", "routing", "online", "tombstones"
    )

    def __init__(
        self,
        peer_id: int,
        path: Path = ROOT,
        keys: Iterable[int] = (),
        replicas: Optional[Set[int]] = None,
        routing: Optional[RoutingTable] = None,
        online: bool = True,
    ):
        self.peer_id = peer_id
        self.path = path
        self.keys = keys  # property setter coerces into a KeyStore
        self.replicas = set(replicas) if replicas is not None else set()
        self.routing = routing if routing is not None else RoutingTable()
        self.online = online
        #: Death certificates of deleted keys (delete-wins reconciliation).
        self.tombstones = KeyStore()

    @property
    def keys(self) -> KeyStore:
        """The peer's stored data keys (always a sorted :class:`KeyStore`)."""
        return self._keys

    @keys.setter
    def keys(self, value: Iterable[int]) -> None:
        self._keys = value if isinstance(value, KeyStore) else KeyStore(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PGridPeer(peer_id={self.peer_id}, path={self.path!r}, "
            f"keys={len(self._keys)}, online={self.online})"
        )

    def responsible_for(self, key: int) -> bool:
        """True iff ``key`` falls inside this peer's partition."""
        return self.path.contains_key(key, KEY_BITS)

    def store(self, key: int) -> None:
        """Store a data key; rejects keys outside the partition.

        Applying an insert clears any local tombstone for the key -- the
        insert is newer evidence than the delete that left it.
        """
        if not self.responsible_for(key):
            raise DomainError(
                f"key {key} outside partition {self.path} of peer {self.peer_id}"
            )
        self._keys.add(key)
        if len(self.tombstones):
            self.tombstones.discard(key)

    def erase(self, key: int) -> None:
        """Delete a data key, leaving a tombstone; rejects foreign keys.

        Idempotent, and tombstones even keys not locally present -- an
        offline replica may still hold the key, and the tombstone is
        what kills it at the next reconciliation.
        """
        if not self.responsible_for(key):
            raise DomainError(
                f"key {key} outside partition {self.path} of peer {self.peer_id}"
            )
        self._keys.discard(key)
        self.tombstones.add(key)

    def resolves(self, key: int) -> int:
        """Number of leading path bits of this peer matching ``key``.

        Routing forwards a query at the first unresolved bit; a peer that
        resolves its whole path is responsible for the key.  One XOR plus
        ``bit_length`` replaces the per-bit loop: the first mismatch is
        the highest set bit of ``key_prefix ^ path_bits``.
        """
        path = self.path
        length = path.length
        if not length:
            return 0
        diff = (key >> (KEY_BITS - length)) ^ path.bits
        if not diff:
            return length
        return length - diff.bit_length()

    def matching_keys(self, lo: int, hi: int) -> List[int]:
        """Stored keys inside the half-open integer range ``[lo, hi)``.

        Sorted list, extracted in ``O(log n + hits)`` by binary search
        over the key store.
        """
        return self._keys.matching_keys(lo, hi)

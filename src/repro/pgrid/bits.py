"""Binary paths over the recursively bisected key space (Sec. 2.1).

A P-Grid peer's *path* is the bit sequence identifying its key-space
partition: bit ``0`` selects the lower half of the current interval, bit
``1`` the upper half.  Paths therefore double as trie node labels and as
dyadic sub-intervals of ``[0, 1)``.

:class:`Path` is immutable, hashable and cheap (two ints), so it can be
used freely as a dict key and copied by reference across thousands of
simulated peers.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Tuple

__all__ = ["Path", "ROOT"]


@total_ordering
class Path:
    """An immutable, most-significant-bit-first binary path.

    ``bits`` holds the path's bits as an integer (first bit = most
    significant of the ``length`` low bits); ``length`` is the number of
    bits.  The empty path (``length == 0``) denotes the whole key space.
    """

    __slots__ = ("bits", "length")

    def __init__(self, bits: int = 0, length: int = 0):
        if length < 0:
            raise ValueError(f"path length must be >= 0, got {length}")
        if bits < 0 or bits >> length:
            raise ValueError(f"bits {bits:#x} do not fit in {length} bit(s)")
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Path is immutable")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Path":
        """Parse a path from a string of ``'0'``/``'1'`` characters."""
        bits = 0
        for ch in text:
            if ch not in "01":
                raise ValueError(f"invalid path character {ch!r} in {text!r}")
            bits = (bits << 1) | (ch == "1")
        return cls(bits, len(text))

    @classmethod
    def from_bits(cls, sequence) -> "Path":
        """Build a path from an iterable of 0/1 integers."""
        bits = 0
        length = 0
        for b in sequence:
            if b not in (0, 1):
                raise ValueError(f"invalid bit {b!r}")
            bits = (bits << 1) | b
            length += 1
        return cls(bits, length)

    # -- basic accessors -------------------------------------------------

    def bit(self, index: int) -> int:
        """The bit at position ``index`` (0 = first / most significant)."""
        if not 0 <= index < self.length:
            raise IndexError(f"bit index {index} out of range for length {self.length}")
        return (self.bits >> (self.length - 1 - index)) & 1

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[int]:
        for i in range(self.length):
            yield self.bit(i)

    def __str__(self) -> str:
        # One C-level int format instead of a per-bit generator: __str__
        # runs per partition when experiments render range-query results.
        if not self.length:
            return "<root>"
        return format(self.bits, f"0{self.length}b")

    def __repr__(self) -> str:
        return f"Path('{self}')" if self.length else "Path(<root>)"

    # -- equality / ordering ----------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Path)
            and self.length == other.length
            and self.bits == other.bits
        )

    def __lt__(self, other: "Path") -> bool:
        """Lexicographic / left-to-right key-space order.

        A path sorts before another iff its interval starts earlier, with
        a prefix sorting before its extensions by ``1`` and after its
        extensions by ``0``-then-content (standard bit-string order).
        """
        if not isinstance(other, Path):
            return NotImplemented
        n = min(self.length, other.length)
        a = self.bits >> (self.length - n) if n else 0
        b = other.bits >> (other.length - n) if n else 0
        if a != b:
            return a < b
        return self.length < other.length

    def __hash__(self) -> int:
        return hash((self.bits, self.length))

    # -- structural operations ---------------------------------------------

    def extend(self, bit: int) -> "Path":
        """The child path obtained by appending one bit."""
        if bit not in (0, 1):
            raise ValueError(f"invalid bit {bit!r}")
        return Path((self.bits << 1) | bit, self.length + 1)

    def prefix(self, n: int) -> "Path":
        """The prefix consisting of the first ``n`` bits."""
        if not 0 <= n <= self.length:
            raise ValueError(f"prefix length {n} out of range for length {self.length}")
        return Path(self.bits >> (self.length - n), n)

    def parent(self) -> "Path":
        """The path with the last bit removed."""
        if self.length == 0:
            raise ValueError("the root path has no parent")
        return Path(self.bits >> 1, self.length - 1)

    def sibling(self) -> "Path":
        """The path differing only in its last bit."""
        if self.length == 0:
            raise ValueError("the root path has no sibling")
        return Path(self.bits ^ 1, self.length)

    def is_prefix_of(self, other: "Path") -> bool:
        """True iff ``self``'s interval contains ``other``'s."""
        if self.length > other.length:
            return False
        return other.bits >> (other.length - self.length) == self.bits if self.length else True

    def common_prefix_length(self, other: "Path") -> int:
        """Number of leading bits shared with ``other``."""
        n = min(self.length, other.length)
        a = self.bits >> (self.length - n) if n else 0
        b = other.bits >> (other.length - n) if n else 0
        diff = a ^ b
        if diff == 0:
            return n
        return n - diff.bit_length()

    def diverges_from(self, other: "Path") -> bool:
        """True iff neither path is a prefix of the other (disjoint intervals)."""
        cpl = self.common_prefix_length(other)
        return cpl < self.length and cpl < other.length

    # -- key-space geometry --------------------------------------------------

    def interval(self) -> Tuple[float, float]:
        """The dyadic sub-interval ``[lo, hi)`` of ``[0, 1)`` this path covers."""
        width = 2.0 ** (-self.length)
        return self.bits * width, (self.bits + 1) * width

    def width(self) -> float:
        """Interval width ``2^-length``."""
        return 2.0 ** (-self.length)

    def overlap_fraction(self, other: "Path") -> float:
        """``|I(self) ∩ I(other)| / |I(self)|`` -- the share of this path's
        interval covered by ``other``.

        Used by the deviation metric to attribute a decentralized peer to
        the reference partitions it spans.
        """
        cpl = self.common_prefix_length(other)
        if cpl < min(self.length, other.length):
            return 0.0
        if other.length <= self.length:
            return 1.0  # other contains self
        return 2.0 ** (self.length - other.length)

    def key_range(self, key_bits: int) -> Tuple[int, int]:
        """Integer key range ``[lo, hi)`` for keys of ``key_bits`` precision."""
        if self.length > key_bits:
            raise ValueError(
                f"path of length {self.length} exceeds key precision {key_bits}"
            )
        lo = self.bits << (key_bits - self.length)
        return lo, lo + (1 << (key_bits - self.length))

    def contains_key(self, key: int, key_bits: int) -> bool:
        """True iff the integer ``key`` (of ``key_bits`` precision) falls
        inside this path's partition."""
        return key >> (key_bits - self.length) == self.bits if self.length else True


#: The empty path: the whole (un-partitioned) key space.
ROOT = Path()

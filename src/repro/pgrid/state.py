"""Durable per-peer state: versioned snapshots, a crash model, warm rejoin.

Production overlay nodes restart; until this module every return from
downtime was a *cold sponsored join* that rebuilt keystore, routing
table, tombstones, and liveness beliefs from nothing.  Here a peer's
durable state is captured as a versioned, deterministic dict (the
"snapshot") so a restarting node can resume from disk and reconcile only
the delta through the ordinary exchange / anti-entropy machinery.

Snapshot schema (``pgrid-state/v1``)
------------------------------------
A snapshot is a plain, JSON-serializable dict.  All collections are
sorted (or stored in their semantically ordered table order, for routing
refs) so two snapshots of identical state compare equal -- the property
the determinism goldens rely on.  Fields:

``schema``
    The literal string :data:`SCHEMA`; readers must reject others.
``kind``
    ``"peer"`` (data-plane :class:`~repro.pgrid.peer.PGridPeer`) or
    ``"node"`` (message-backend ``simnet.PGridNode``).
``peer_id`` / ``taken_at``
    Identity and the simulated capture time.
``path``
    The peer's trie path as a ``"0"/"1"`` string.
``keys`` / ``replicas``
    Sorted int lists.
``routing``
    ``[[level, [refs...]], ...]`` sorted by level; ref order inside a
    level preserves the routing table's insertion order (eviction is
    oldest-first, so order is state).
``tombstones``
    ``[[key, age_s], ...]`` sorted by key, where ``age_s`` is how long
    the death certificate had been alive at ``taken_at``.  On restore
    the birth time is rebased to ``taken_at - age_s`` on the *shared*
    simulation clock -- TTLs keep aging across downtime, exactly like a
    wall-clock expiry stamp on disk.  (Data-plane tombstones carry no
    clock; they snapshot with age 0.0.)
``node`` snapshots additionally carry ``original_keys``, ``outbox``,
``joined``, ``constructing``, and ``liveness`` (below).

Crash model
-----------
Two shutdown flavours, driven by the scenario runners:

* **clean shutdown** -- a checkpoint is taken at the shutdown instant,
  so the snapshot is exact and restore loses nothing.  Acked writes and
  tombstones survive by construction (property-tested).
* **crash** -- the in-memory state is lost; restore falls back to the
  last *periodic* checkpoint, which is stale by up to
  ``DurabilityPolicy.snapshot_interval_s``.  Writes, replica syncs, and
  tombstones that landed after that checkpoint are gone and must be
  re-learned (or are genuinely lost, which the scenario report's
  ``recovery`` section quantifies as ``lost_acked_writes`` /
  ``tombstone_resurrections``).

With ``DurabilityPolicy(enabled=False)`` no snapshots exist and every
restart is a cold sponsored join -- the pre-PR baseline, preserved
behind the flag with the same on/off story as route repair.

Warm-rejoin reconciliation contract
-----------------------------------
Restoring a snapshot makes the peer *operational*, not *trusted*:

1. Keys, outbox, and tombstones resume as-is; the delta accumulated
   while down is reconciled through the existing exchange /
   anti-entropy machinery (one exchange with a restored replica is
   initiated on rejoin; periodic maintenance finishes the job).
2. Restored routing refs are handed to the liveness state machine
   **unconfirmed**: every restored ref's ``last_confirmed`` stamp is
   rebased so :meth:`~repro.pgrid.liveness.LivenessTracker.
   needs_confirmation` is immediately true, making the next
   ``refresh_routes`` pass probe them instead of trusting them blindly.
   In-flight probe state (strikes, nonces) does not survive a restart.
3. Eviction cooldowns (``evicted_at``) are restored with their age so a
   ref evicted just before shutdown cannot be gossip-readded right
   after restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..exceptions import DomainError
from .bits import Path

__all__ = [
    "SCHEMA",
    "DurabilityPolicy",
    "StateStore",
    "snapshot_peer",
    "restore_peer",
    "snapshot_node",
    "restore_node",
]

#: Snapshot schema version; bump when the dict layout changes.
SCHEMA = "pgrid-state/v1"


@dataclass(frozen=True)
class DurabilityPolicy:
    """Knobs for the persistence subsystem.

    ``enabled=False`` is the cold-join baseline: no snapshots are taken
    and every restart rebuilds from a sponsored join (the pre-existing
    behaviour, kept behind the flag for A/B benchmarking like
    :class:`~repro.pgrid.liveness.RouteRepairPolicy`).

    ``snapshot_interval_s`` is the periodic checkpoint cadence while
    restarts are in play -- the staleness bound a *crash* restore pays.
    Clean shutdowns checkpoint at the shutdown instant regardless.
    """

    enabled: bool = True
    snapshot_interval_s: float = 60.0

    def validate(self) -> None:
        if self.snapshot_interval_s <= 0:
            raise DomainError(
                f"snapshot_interval_s must be > 0, got {self.snapshot_interval_s}"
            )


class StateStore:
    """The simulated "disk": latest snapshot per peer id.

    Only the most recent checkpoint is retained (restart recovery never
    reads older ones), so the store is O(peers) regardless of cadence.
    """

    def __init__(self, policy: Optional[DurabilityPolicy] = None):
        self.policy = policy or DurabilityPolicy()
        self.policy.validate()
        self._latest: Dict[int, Dict[str, Any]] = {}
        self.checkpoints = 0
        self.restores = 0

    def put(self, peer_id: int, snapshot: Dict[str, Any]) -> None:
        if snapshot.get("schema") != SCHEMA:
            raise DomainError(
                f"snapshot schema {snapshot.get('schema')!r} != {SCHEMA!r}"
            )
        self._latest[peer_id] = snapshot
        self.checkpoints += 1

    def get(self, peer_id: int) -> Optional[Dict[str, Any]]:
        return self._latest.get(peer_id)

    def discard(self, peer_id: int) -> None:
        self._latest.pop(peer_id, None)

    def __len__(self) -> int:
        return len(self._latest)


def _routing_entry(levels: Dict[int, list]) -> list:
    """Routing table levels as ``[[level, [refs...]], ...]`` sorted by
    level, preserving in-level (insertion) order."""
    return [[level, list(refs)] for level, refs in sorted(levels.items()) if refs]


def snapshot_peer(peer, now: float) -> Dict[str, Any]:
    """Capture a data-plane :class:`~repro.pgrid.peer.PGridPeer`.

    Data-plane tombstones carry no birth clock (the synchronous backend
    has no TTL machinery), so they snapshot with age 0.0.
    """
    return {
        "schema": SCHEMA,
        "kind": "peer",
        "peer_id": peer.peer_id,
        "taken_at": now,
        "path": str(peer.path),
        "keys": sorted(peer.keys),
        "replicas": sorted(peer.replicas),
        "routing": _routing_entry(peer.routing.levels),
        "tombstones": [[key, 0.0] for key in sorted(peer.tombstones)],
    }


def restore_peer(peer, snapshot: Dict[str, Any]) -> None:
    """Restore a data-plane peer in place from :func:`snapshot_peer`.

    The peer object's identity (``peer_id``) is unchanged; path, keys,
    replicas, routing refs, and tombstones are replaced wholesale.
    Restored routing refs may be stale -- the data plane's oracle
    ``repair_routes`` sweep re-validates them on the next maintenance
    tick (the data plane's equivalent of the liveness hand-off).
    """
    _check(snapshot, "peer", peer.peer_id)
    from .keystore import KeyStore

    peer.path = Path.from_string(snapshot["path"])
    peer.keys = KeyStore(snapshot["keys"])
    peer.replicas = set(snapshot["replicas"])
    peer.routing.levels = {
        level: list(refs) for level, refs in snapshot["routing"]
    }
    peer.tombstones = KeyStore(key for key, _age in snapshot["tombstones"])


def snapshot_node(node, now: float) -> Dict[str, Any]:
    """Capture a message-backend ``simnet.PGridNode``.

    Liveness beliefs are stored as *ages* relative to ``taken_at`` so
    restore can rebase them on the shared clock; in-flight probe state
    (strikes, nonces) is deliberately not captured -- it does not
    survive a process restart.
    """
    born = node._tombstone_born
    liveness = node.liveness
    return {
        "schema": SCHEMA,
        "kind": "node",
        "peer_id": node.node_id,
        "taken_at": now,
        "path": str(node.path),
        "keys": sorted(node.keys),
        "original_keys": sorted(node.original_keys),
        "outbox": sorted(node.outbox),
        "replicas": sorted(node.replicas),
        "routing": _routing_entry(node.routing),
        "tombstones": [
            [key, max(0.0, now - born.get(key, now))]
            for key in sorted(node.tombstones)
        ],
        "joined": node.joined,
        "constructing": node.constructing,
        "liveness": {
            "last_confirmed": [
                [ref, max(0.0, now - t)]
                for ref, t in sorted(liveness.last_confirmed.items())
            ],
            "evicted": [
                [ref, max(0.0, now - t)]
                for ref, t in sorted(liveness.evicted_at.items())
            ],
        },
    }


def restore_node(node, snapshot: Dict[str, Any], now: float) -> None:
    """Restore a message-backend node in place from :func:`snapshot_node`.

    Implements the warm-rejoin reconciliation contract (module docs):
    tombstone birth times are rebased to ``taken_at - age`` so TTLs keep
    aging across downtime; every restored routing ref's
    ``last_confirmed`` is rebased *and capped* so the liveness machine
    re-probes it before trusting it; eviction cooldowns keep their age.
    Transient state (pending queries/writes/ranges, exchange nonces,
    probe strikes) starts empty -- it did not survive the restart.
    """
    _check(snapshot, "node", node.node_id)
    taken_at = snapshot["taken_at"]

    node.path = Path.from_string(snapshot["path"])
    node.keys = set(snapshot["keys"])
    node.original_keys = set(snapshot["original_keys"])
    node.outbox = set(snapshot["outbox"])
    node.replicas = set(snapshot["replicas"])
    node.routing = {level: list(refs) for level, refs in snapshot["routing"]}
    node.tombstones = set()
    node._tombstone_born = {}
    ttl = node.config.tombstone_ttl_s
    for key, age in snapshot["tombstones"]:
        born = taken_at - age
        if now - born < ttl:  # already-expired certificates stay dead
            node.tombstones.add(key)
            node._tombstone_born[key] = born
    node.joined = snapshot["joined"]
    node.constructing = snapshot["constructing"]

    liveness = node.liveness
    liveness.strikes.clear()
    liveness.probe_nonce.clear()
    confirm_interval = node.config.repair.confirm_interval_s
    liveness.last_confirmed = {
        # Rebase, then cap so needs_confirmation() is True for every
        # restored ref: restored refs are handed to the liveness state
        # machine, never trusted blindly.
        ref: min(now - age, now - confirm_interval)
        for ref, age in snapshot["liveness"]["last_confirmed"]
    }
    liveness.evicted_at = {
        ref: now - age for ref, age in snapshot["liveness"]["evicted"]
    }


def _check(snapshot: Dict[str, Any], kind: str, peer_id: int) -> None:
    if snapshot.get("schema") != SCHEMA:
        raise DomainError(
            f"snapshot schema {snapshot.get('schema')!r} != {SCHEMA!r}"
        )
    if snapshot.get("kind") != kind:
        raise DomainError(f"snapshot kind {snapshot.get('kind')!r} != {kind!r}")
    if snapshot.get("peer_id") != peer_id:
        raise DomainError(
            f"snapshot belongs to peer {snapshot.get('peer_id')}, "
            f"not {peer_id}"
        )

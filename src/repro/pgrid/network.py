"""The assembled P-Grid overlay network.

:class:`PGridNetwork` is the user-facing object tying peers, routing and
query processing together.  Overlays can be obtained three ways:

* :func:`build_overlay` -- run the paper's decentralized parallel
  construction over per-peer key sets (the headline contribution);
* :meth:`PGridNetwork.from_construction` -- wrap an existing
  :class:`~repro.core.construction.ConstructionResult`;
* :meth:`PGridNetwork.ideal` -- materialize the reference partitioning
  of Algorithm 1 directly (globally coordinated; used as ground truth in
  tests and baselines).
"""

from __future__ import annotations

import random as _random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from math import ceil as _ceil, log as _log
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .._util import RngLike, make_rng, mean, sample_online
from ..exceptions import PartitionError, RoutingError
from .bits import Path
from .keyspace import KEY_BITS, float_to_key, string_to_key
from .keystore import KeyStore
from .peer import PGridPeer
from .routing import RoutingTable
from .search import LookupResult, RangeResult, lookup, range_query

__all__ = ["PGridNetwork", "WriteResult", "build_overlay"]

KeyLike = Union[int, float, str]


@dataclass
class WriteResult:
    """Outcome of a routed mutation (insert or delete).

    Mirrors :class:`~repro.pgrid.search.LookupResult` for the routing
    half (``hops``/``visited``/``found``/``responsible``) so existing
    insert callers keep working, and adds the write-path bookkeeping:
    ``replicas_written`` counts the online same-partition replicas the
    mutation was eagerly applied to (offline replicas converge later
    through anti-entropy -- that lag is the replica divergence the
    scenario reports measure).
    """

    key: int
    op: str
    found: bool
    responsible: Optional[int]
    hops: int
    visited: List[int]
    replicas_written: int = 0

    @property
    def success(self) -> bool:
        """True iff the mutation reached an online responsible peer."""
        return self.found


def _to_key(value: KeyLike) -> int:
    """Coerce a float in [0,1), a string, or an integer key to an integer key."""
    if isinstance(value, bool):
        raise PartitionError("booleans are not valid keys")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return float_to_key(value)
    if isinstance(value, str):
        return string_to_key(value)
    raise PartitionError(f"unsupported key type {type(value).__name__}")


@dataclass
class PGridNetwork:
    """A routable collection of P-Grid peers."""

    peers: Dict[int, PGridPeer] = field(default_factory=dict)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_construction(cls, result, *, max_refs: int = 4) -> "PGridNetwork":
        """Adopt the outcome of the decentralized construction.

        Copies paths, keys and the routing references accumulated during
        construction into full :class:`PGridPeer` objects.
        """
        net = cls()
        for cpeer in result.peers:
            peer = PGridPeer(
                peer_id=cpeer.peer_id,
                path=cpeer.path,
                keys=cpeer.keys,
                replicas=set(cpeer.replicas),
                routing=RoutingTable(max_refs_per_level=max_refs),
            )
            for level, refs in cpeer.routing.items():
                for ref in refs:
                    peer.routing.add(level, ref)
            net.peers[peer.peer_id] = peer
        net._prune_dangling_routes()
        return net

    @classmethod
    def ideal(
        cls,
        keys: Sequence[int],
        n_peers: int,
        *,
        d_max: float,
        n_min: int,
        max_refs: int = 4,
        rng: RngLike = None,
    ) -> "PGridNetwork":
        """Materialize Algorithm 1's reference partitioning directly.

        Peers are dealt to leaves (integral counts), each leaf's peers
        store the leaf's keys, and routing tables are filled with random
        references into every complementary subtree -- the overlay a
        perfect, globally coordinated construction would produce.

        Keys are dealt to leaves by one binary search over the sorted
        leaf boundaries per key (``O(keys log leaves)``), not by probing
        every leaf per key -- the leaves of Algorithm 1 tile the key
        space in order, so each sorted-key run between two boundaries
        lands in exactly one leaf.
        """
        from ..core.reference import reference_partition

        rand = make_rng(rng)
        reference = reference_partition(
            keys, n_peers, d_max=d_max, n_min=n_min, integer_peers=True
        )
        net = cls()
        sorted_keys = sorted(set(keys))
        # reference.leaves are in key-space order and tile [0, 2^KEY_BITS),
        # so the leaf of a key is the last leaf whose lower bound <= key.
        # Keys outside the key space are not covered by any leaf and are
        # dropped, never dealt to a wrong partition.
        lo_i = bisect_left(sorted_keys, 0)
        hi_i = bisect_left(sorted_keys, 1 << KEY_BITS)
        boundaries = [leaf.path.key_range(KEY_BITS)[0] for leaf in reference.leaves]
        leaf_keys: List[List[int]] = [[] for _ in reference.leaves]
        for key in sorted_keys[lo_i:hi_i]:
            leaf_keys[bisect_right(boundaries, key) - 1].append(key)
        counts = [int(round(leaf.n_peers)) for leaf in reference.leaves]
        # Algorithm 1 assigns *zero* peers to empty-side leaves (keeping
        # its storage-deviation analysis clean), but an operational
        # overlay must leave no key range unowned -- the decentralized
        # construction populates empty regions too, and a gap makes every
        # lookup into it fail structurally.  Cover each empty leaf with
        # one peer reassigned from the most-populated leaf, never
        # draining a donor below n_min (or, failing that, below one).
        empty = [i for i, c in enumerate(counts) if c == 0]
        for floor in (max(1, n_min), 1):
            for i in empty:
                donor = max(range(len(counts)), key=counts.__getitem__)
                if counts[donor] > floor:
                    counts[donor] -= 1
                    counts[i] = 1
            empty = [i for i in empty if counts[i] == 0]
            if not empty:
                break
        peer_id = 0
        peers_per_leaf: List[List[int]] = []
        for leaf, lkeys, count in zip(reference.leaves, leaf_keys, counts):
            ids = []
            # One shared immutable template per leaf; each peer gets an
            # independent copy (a single C-level list copy).
            leaf_store = KeyStore._from_sorted(lkeys)
            for _ in range(count):
                peer = PGridPeer(
                    peer_id=peer_id,
                    path=leaf.path,
                    keys=leaf_store.copy(),
                    routing=RoutingTable(max_refs_per_level=max_refs),
                )
                net.peers[peer_id] = peer
                ids.append(peer_id)
                peer_id += 1
            peers_per_leaf.append(ids)
        for ids in peers_per_leaf:
            for pid in ids:
                peer = net.peers[pid]
                peer.replicas = set(ids) - {pid}
        net.rebuild_routing(rng=rand, max_refs=max_refs)
        return net

    # -- routing bookkeeping ----------------------------------------------

    def rebuild_routing(self, *, rng: RngLike = None, max_refs: int = 4) -> None:
        """(Re)fill every peer's routing table with random references.

        For each level of each peer's path, up to ``max_refs`` peers are
        sampled uniformly from the complementary subtree, implementing
        the paper's randomized reference selection.
        """
        rand = make_rng(rng)
        # Hot setup sweep (O(N * depth), dominates message-backend
        # construction): prefixes are keyed by ``(length, bits)`` int
        # pairs computed with shifts -- no Path allocation or hashing --
        # and sampled levels are installed directly (``sample`` returns
        # at most ``max_refs`` unique ids, so this equals add()-ing each
        # one).  The sample calls see the identical candidate lists in
        # the identical order as the Path-keyed version, so the RNG
        # stream -- and every downstream digest -- is unchanged.
        by_prefix: Dict[Tuple[int, int], List[int]] = {}
        for peer in self.peers.values():
            path = peer.path
            bits = path.bits
            length = path.length
            peer_id = peer.peer_id
            for n in range(length + 1):
                key = (n, bits >> (length - n))
                bucket = by_prefix.get(key)
                if bucket is None:
                    bucket = by_prefix[key] = []
                bucket.append(peer_id)
        # ``random.sample`` inlined below, drawing through the same
        # ``_randbelow`` in the same order (pool-swap for small
        # populations, rejection set otherwise -- the exact CPython
        # algorithm, unchanged across the 3.10-3.13 support window and
        # pinned by the golden digests), minus the per-call argument
        # checking that dominates at ~10 samples per peer.  ``k`` is at
        # most ``max_refs``, so the table-size thresholds are
        # precomputed per ``k``.
        randbelow = rand._randbelow
        # A vanilla Random's _randbelow is rejection sampling over
        # getrandbits; drawing through getrandbits directly skips one
        # method call per draw (~10 draws/peer here) and produces the
        # bit-identical stream.  Subclasses overriding _randbelow keep
        # their own draw path.
        fastdraw = type(rand)._randbelow is _random.Random._randbelow
        getrandbits = rand.getrandbits
        by_prefix_get = by_prefix.get
        setsizes = [
            21 + (4 ** _ceil(_log(k * 3, 4)) if k > 5 else 0)
            for k in range(max_refs + 1)
        ]
        # Peers sharing a path (replica groups) see identical candidate
        # lists at every level, so the per-level lookup plan (candidate
        # list, population, draw count, branch choice) is computed once
        # per unique path and replayed per peer -- only the draws
        # themselves stay per-peer.
        plans: Dict[Tuple[int, int], list] = {}
        plans_get = plans.get
        for peer in self.peers.values():
            path = peer.path
            bits = path.bits
            length = path.length
            pkey = (length, bits)
            plan = plans_get(pkey)
            if plan is None:
                plan = plans[pkey] = []
                for level in range(length):
                    # The complementary subtree: the (level+1)-bit
                    # prefix with its last bit flipped.
                    comp = (level + 1, (bits >> (length - 1 - level)) ^ 1)
                    candidates = by_prefix_get(comp)
                    if not candidates:
                        continue
                    n = len(candidates)
                    k = max_refs if n > max_refs else n
                    plan.append(
                        (level, candidates, n, k, n <= setsizes[k], n.bit_length())
                    )
            table = RoutingTable(max_refs_per_level=max_refs)
            levels = table.levels
            for level, candidates, n, k, use_pool, nbits_n in plan:
                result = [None] * k
                if use_pool:
                    pool = list(candidates)
                    for i in range(k):
                        m = n - i
                        if fastdraw:
                            nbits = m.bit_length()
                            j = getrandbits(nbits)
                            while j >= m:
                                j = getrandbits(nbits)
                        else:
                            j = randbelow(m)
                        result[i] = pool[j]
                        pool[j] = pool[m - 1]
                else:
                    selected = set()
                    selected_add = selected.add
                    for i in range(k):
                        if fastdraw:
                            j = getrandbits(nbits_n)
                            while j >= n:
                                j = getrandbits(nbits_n)
                        else:
                            j = randbelow(n)
                        while j in selected:
                            if fastdraw:
                                j = getrandbits(nbits_n)
                                while j >= n:
                                    j = getrandbits(nbits_n)
                            else:
                                j = randbelow(n)
                        selected_add(j)
                        result[i] = candidates[j]
                levels[level] = result
            peer.routing = table

    def _prune_dangling_routes(self) -> None:
        """Remove references to unknown peer ids (defensive)."""
        for peer in self.peers.values():
            for level in list(peer.routing.levels):
                peer.routing.levels[level] = [
                    r for r in peer.routing.levels[level] if r in self.peers
                ]

    # -- peer access ---------------------------------------------------------

    def peer(self, peer_id: int) -> PGridPeer:
        """The peer with the given id."""
        try:
            return self.peers[peer_id]
        except KeyError:
            raise RoutingError(f"unknown peer id {peer_id}") from None

    def _peer_tuple(self) -> Tuple[PGridPeer, ...]:
        """Cached tuple of peer objects for O(1) random indexing.

        Rebuilt whenever the peer *count* changes (joins/removals);
        ``online`` flips mutate the cached objects in place, so churn
        never invalidates the cache.
        """
        cache = getattr(self, "_peers_cache", None)
        if cache is None or len(cache) != len(self.peers):
            cache = tuple(self.peers.values())
            self._peers_cache = cache
        return cache

    def random_online_peer(self, rng: RngLike = None) -> Optional[PGridPeer]:
        """A uniformly random online peer, or ``None`` if all are offline.

        Rejection-samples the cached peer tuple
        (:func:`repro._util.sample_online`) instead of materializing
        the online list per query -- the old O(N) scan dominated lookup
        latency at a few thousand peers.
        """
        return sample_online(
            self._peer_tuple(), lambda peer: peer.online, make_rng(rng)
        )

    def online_count(self) -> int:
        """Number of currently online peers (the live population)."""
        return sum(1 for p in self.peers.values() if p.online)

    def __len__(self) -> int:
        return len(self.peers)

    # -- queries ---------------------------------------------------------------

    def lookup(
        self, value: KeyLike, *, start: Optional[int] = None, rng: RngLike = None
    ) -> LookupResult:
        """Exact-match query for a float, string or integer key."""
        return lookup(self, _to_key(value), start=start, rng=rng)

    def range_query(
        self,
        lo: KeyLike,
        hi: KeyLike,
        *,
        start: Optional[int] = None,
        rng: RngLike = None,
    ) -> RangeResult:
        """Range query over ``[lo, hi)`` in key order."""
        return range_query(self, _to_key(lo), _to_key(hi), start=start, rng=rng)

    def insert(self, value: KeyLike, *, rng: RngLike = None) -> WriteResult:
        """Insert a key: route to the responsible partition, store on the
        responsible peer and its *online* replicas.

        Offline replicas miss the write and converge through the
        reconciliation machinery (:mod:`repro.pgrid.replication`); until
        they do, the partition is measurably divergent.  ``success``
        means the mutation was applied at an online owner -- like query
        success, it is a routing outcome.  Durability of a *re-insert of
        a previously deleted key* is additionally subject to delete-wins
        reconciliation: it sticks once the insert has cleared the
        tombstone on every replica (see
        :func:`repro.pgrid.replication.reconcile`).
        """
        return self._write("insert", _to_key(value), rng=rng)

    def delete(self, value: KeyLike, *, rng: RngLike = None) -> WriteResult:
        """Delete a key: route to the responsible partition, erase it on
        the responsible peer and its *online* replicas.

        Each erase leaves a tombstone (death certificate), so the delete
        survives union-style anti-entropy instead of resurrecting from
        the first stale replica (delete-wins; see
        :func:`repro.pgrid.replication.reconcile`).
        """
        return self._write("delete", _to_key(value), rng=rng)

    def _write(self, op: str, key: int, *, rng: RngLike = None) -> WriteResult:
        res = lookup(self, key, rng=rng)
        replicas_written = 0
        if res.found and res.responsible is not None:
            target = self.peers[res.responsible]
            apply = target.store if op == "insert" else target.erase
            apply(key)
            for rid in sorted(target.replicas):
                replica = self.peers.get(rid)
                if replica is not None and replica.online and replica.responsible_for(key):
                    (replica.store if op == "insert" else replica.erase)(key)
                    replicas_written += 1
        return WriteResult(
            key=key,
            op=op,
            found=res.found,
            responsible=res.responsible,
            hops=res.hops,
            visited=res.visited,
            replicas_written=replicas_written,
        )

    # -- durability ---------------------------------------------------------------

    def checkpoint_peer(self, peer_id: int, now: float = 0.0) -> dict:
        """Snapshot one peer's durable state (see :mod:`repro.pgrid.state`).

        Returns the versioned snapshot dict; callers persist it in a
        :class:`~repro.pgrid.state.StateStore` (the simulated disk).
        """
        from .state import snapshot_peer

        return snapshot_peer(self.peer(peer_id), now)

    def restore_peer(self, peer_id: int, snapshot: dict) -> PGridPeer:
        """Restore a peer in place from a :meth:`checkpoint_peer` snapshot.

        The peer resumes with its checkpointed path, keys, replicas,
        routing refs, and tombstones; restored routing refs may be stale
        and are re-validated by the next ``repair_routes`` maintenance
        sweep (the data plane's liveness hand-off).  The caller decides
        when to flip ``online`` back on.
        """
        from .state import restore_peer

        peer = self.peer(peer_id)
        restore_peer(peer, snapshot)
        return peer

    # -- statistics ---------------------------------------------------------------

    def mean_path_length(self) -> float:
        """Average peer path length (the paper reports ~6 for 296 peers)."""
        if not self.peers:
            return 0.0
        return mean(p.path.length for p in self.peers.values())

    def partitions(self) -> Dict[Path, List[int]]:
        """Peers grouped by identical path (structural replica groups)."""
        groups: Dict[Path, List[int]] = {}
        for peer in self.peers.values():
            groups.setdefault(peer.path, []).append(peer.peer_id)
        return groups

    def replication_factor(self) -> float:
        """Mean structural replicas per partition."""
        groups = self.partitions()
        if not groups:
            return 0.0
        return len(self.peers) / len(groups)

    def paths(self) -> List[Path]:
        """All peer paths."""
        return [p.path for p in self.peers.values()]

    def all_keys(self) -> set:
        """Union of stored keys across peers."""
        out: set = set()
        for peer in self.peers.values():
            out.update(peer.keys)
        return out

    def is_consistent(self) -> bool:
        """Structural sanity: keys inside partitions, routes complementary."""
        for peer in self.peers.values():
            # Keys are sorted, so the partition containment check reduces
            # to the two extreme keys.
            if len(peer.keys):
                lo, hi = peer.path.key_range(KEY_BITS)
                if peer.keys.min() < lo or peer.keys.max() >= hi:
                    return False
            for level, refs in peer.routing.levels.items():
                if level >= peer.path.length:
                    if refs:
                        return False
                    continue
                comp = peer.path.prefix(level).extend(1 - peer.path.bit(level))
                for ref in refs:
                    other = self.peers.get(ref)
                    if other is None or not comp.is_prefix_of(other.path):
                        return False
        return True


def build_overlay(
    peer_keys: Sequence[Sequence[KeyLike]],
    *,
    config=None,
    rng: RngLike = None,
    max_refs: int = 4,
    reconcile_rounds: int = 4,
) -> PGridNetwork:
    """Build an overlay from scratch with the paper's parallel algorithm.

    ``peer_keys`` holds each peer's initial data (floats in ``[0, 1)``,
    strings, or integer keys).  After construction a few anti-entropy
    sweeps converge the structural replicas (the paper's end state:
    "all peers discovered all their replicas" and content is fully
    reconciled); pass ``reconcile_rounds=0`` to inspect the raw state.
    The raw construction metrics are available through
    :func:`repro.core.construction.construct_overlay` when needed.
    """
    from ..core.construction import construct_overlay
    from .replication import anti_entropy_sweep, reconcile_down

    int_keys = [[_to_key(v) for v in keys] for keys in peer_keys]
    result = construct_overlay(int_keys, config, rng=rng)
    net = PGridNetwork.from_construction(result, max_refs=max_refs)
    if reconcile_rounds > 0:
        anti_entropy_sweep(net, rounds=reconcile_rounds, rng=rng)
        reconcile_down(net)
    return net

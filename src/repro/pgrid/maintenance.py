"""Standard *sequential* maintenance model (Secs. 1, 4.3, 6).

Classic structured overlays build and maintain themselves through
essentially sequential node joins: each joining peer routes to a target
partition, then either splits an overloaded partition with one resident
peer or becomes another replica.  The paper uses this model as the
baseline that its parallel construction is compared against:

* total messages ``O(N log N)`` -- each of ``N`` joins costs a routing
  walk of ``O(log N)``;
* *latency* ``O(N log N)`` -- the joins are serialized, so the wall-clock
  cost is the message total, whereas the parallel construction finishes
  in ``O(log^2 N)`` rounds.

This module also provides leave/failure handling and the lazy
"correction on use" repair that the experiments under churn rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .._util import RngLike, make_rng
from ..exceptions import RoutingError
from .bits import ROOT, Path
from .keyspace import KEY_BITS, bit_at
from .liveness import repair_routes
from .network import PGridNetwork
from .peer import PGridPeer
from .routing import RoutingTable
from .search import alive_ref

__all__ = [
    "JoinStats",
    "sequential_join",
    "sequential_build",
    "fail_peer",
    "revive_peer",
    "repair_routes",
]


@dataclass
class JoinStats:
    """Cost accounting for one sequential join."""

    peer_id: int
    messages: int
    split: bool
    final_path: Path


def _route_to_partition(
    network: PGridNetwork, key: int, rand
) -> tuple[Optional[PGridPeer], int]:
    """Greedy prefix-route toward the partition holding ``key``.

    Returns the responsible peer (or ``None`` on failure) and the number
    of messages spent.
    """
    current = network.random_online_peer(rand)
    if current is None:
        return None, 0
    messages = 0
    for _ in range(4 * KEY_BITS):
        level = current.resolves(key)
        if level >= current.path.length:
            return current, messages
        nxt = alive_ref(network, current, level, rand)
        if nxt is None:
            return None, messages
        current = nxt
        messages += 1
    return None, messages


def sequential_join(
    network: PGridNetwork,
    peer_id: int,
    keys: Sequence[int],
    *,
    d_max: float,
    n_min: int,
    rng: RngLike = None,
    max_refs: int = 4,
) -> JoinStats:
    """Join one peer into an existing overlay (standard maintenance).

    The newcomer routes toward the partition of (one of) its keys,
    reconciles with the resident peer and either splits the partition
    (if the resident group is overloaded in both storage and replica
    count) or stays as an additional replica.  Message counts include
    the routing walk and the content exchange.
    """
    rand = make_rng(rng)
    newcomer = PGridPeer(
        peer_id=peer_id,
        keys=set(map(int, keys)),
        routing=RoutingTable(max_refs_per_level=max_refs),
    )
    if not network.peers:
        network.peers[peer_id] = newcomer
        return JoinStats(peer_id=peer_id, messages=0, split=False, final_path=ROOT)

    anchor_key = (
        int(next(iter(newcomer.keys))) if newcomer.keys else rand.randrange(1 << KEY_BITS)
    )
    target, messages = _route_to_partition(network, anchor_key, rand)
    if target is None:
        raise RoutingError("sequential join could not locate a target partition")

    # Adopt the target's partition: inherit path, routing seeds, content.
    newcomer.path = target.path
    for level in range(target.path.length):
        for ref in target.routing.refs(level):
            newcomer.routing.add(level, ref)
    group = [network.peers[r] for r in target.replicas if r in network.peers]
    group.append(target)
    # Reconcile against the whole replica group: individual replicas may
    # hold keys (e.g. re-inserted ones) the target has not seen yet.
    group_keys = set(newcomer.keys)
    for peer in group:
        group_keys.update(peer.keys)
    partition_keys = {k for k in group_keys if target.responsible_for(k)}
    foreign = newcomer.keys - partition_keys
    messages += len(group)  # content reconciliation exchanges
    overloaded = len(partition_keys) > d_max and len(group) + 1 >= 2 * n_min
    split = False
    if overloaded and target.path.length < KEY_BITS - 1:
        # Split: the newcomer takes one side together with half the group,
        # the target keeps the other -- the sequential analogue of the
        # balanced split.
        level = target.path.length
        zeros = {k for k in partition_keys if bit_at(k, level) == 0}
        ones = partition_keys - zeros
        minority_side = 0 if len(zeros) <= len(ones) else 1
        newcomer_side = minority_side
        new_path = target.path.extend(newcomer_side)
        old_path = target.path.extend(1 - newcomer_side)
        movers = group[: max(n_min - 1, len(group) // 2)]
        stayers = [g for g in group if g not in movers]
        for peer, side, path in (
            [(newcomer, newcomer_side, new_path)]
            + [(m, newcomer_side, new_path) for m in movers]
            + [(s, 1 - newcomer_side, old_path) for s in stayers]
        ):
            peer.path = path
            peer.keys = {k for k in partition_keys if bit_at(k, level) == side}
            messages += 1
        new_group = [newcomer] + movers
        old_group = stayers
        for peer in new_group:
            peer.replicas = {p.peer_id for p in new_group} - {peer.peer_id}
            for other in old_group:
                peer.routing.add(level, other.peer_id)
        for peer in old_group:
            peer.replicas = {p.peer_id for p in old_group} - {peer.peer_id}
            for other in new_group:
                peer.routing.add(level, other.peer_id)
        split = True
    else:
        # Become a replica of the target's group.
        newcomer.keys = set(partition_keys)
        for peer in group:
            peer.keys = set(partition_keys)
            peer.replicas.add(peer_id)
            newcomer.replicas.add(peer.peer_id)
            messages += 1

    # Foreign keys are re-inserted through normal routing; the insert
    # stores the key on the responsible peer and its replica group.
    network.peers[peer_id] = newcomer
    for key in foreign:
        res = network.insert(key, rng=rand)
        messages += res.hops + 1
    return JoinStats(
        peer_id=peer_id, messages=messages, split=split, final_path=newcomer.path
    )


@dataclass
class SequentialBuildResult:
    """Aggregate cost of building an overlay by sequential joins."""

    network: PGridNetwork
    total_messages: int
    join_messages: List[int]

    @property
    def latency(self) -> int:
        """Serialized latency: the joins happen one after another, so the
        wall-clock cost equals the total message count (Sec. 4.3)."""
        return self.total_messages


def sequential_build(
    peer_keys: Sequence[Sequence[int]],
    *,
    d_max: float,
    n_min: int,
    rng: RngLike = None,
) -> SequentialBuildResult:
    """Build a full overlay by joining peers one at a time (the baseline)."""
    rand = make_rng(rng)
    network = PGridNetwork()
    messages: List[int] = []
    for pid, keys in enumerate(peer_keys):
        stats = sequential_join(
            network, pid, keys, d_max=d_max, n_min=n_min, rng=rand
        )
        messages.append(stats.messages)
    return SequentialBuildResult(
        network=network, total_messages=sum(messages), join_messages=messages
    )


def fail_peer(network: PGridNetwork, peer_id: int) -> None:
    """Mark a peer offline (crash/churn departure)."""
    network.peer(peer_id).online = False


def revive_peer(network: PGridNetwork, peer_id: int) -> None:
    """Bring a failed peer back online (churn return).

    The peer rejoins with its path, keys and routing table intact --
    the P-Grid model of transient unavailability; content it missed
    while away converges back through anti-entropy.
    """
    network.peer(peer_id).online = True


# The lazy "correction on use" repair the experiments under churn rely
# on lives in :mod:`repro.pgrid.liveness` (the shared route-repair
# subsystem, oracle-evidence instance); ``repair_routes`` is
# re-exported above because maintenance is where the data plane's
# clients historically found it.

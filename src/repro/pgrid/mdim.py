"""Multi-dimensional keyspaces: z-order composite keys and box queries.

The trie indexes one ordered dimension; this module extends key
construction to multi-attribute records (ROADMAP open item 4) by
bit-interleaving d quantized attributes into a single
:data:`~repro.pgrid.keyspace.KEY_BITS`-bit key.  Because interleaving
is order-preserving per dimension *prefix*, the existing prefix
routing, :class:`~repro.pgrid.store.KeyStore`, replication, writes,
caching and the sharded kernel serve d-dimensional point and box
queries unchanged -- a d-dimensional box becomes a small set of 1-D
key ranges issued through the ordinary range machinery.

Quantization contract
---------------------
:class:`ZOrderCodec` with ``dims = d`` quantizes each attribute
``x in [0, 1)`` to a cell index ``q = floor(x * 2**bits_per_dim)``
where ``bits_per_dim = KEY_BITS // d``.  Cell bits are interleaved
most-significant first, cycling dimensions in order (bit ``j`` of the
interleaved value, counting 0 as the MSB, is bit ``j // d`` of
dimension ``j % d``), and the result is left-shifted into the top
``d * bits_per_dim`` bits of the key so trie prefixes align with
z-order prefixes.  The ``KEY_BITS - d * bits_per_dim`` remainder bits
are zero.  Decoding returns the cell representative ``q / 2**
bits_per_dim`` per dimension; all box semantics (membership, oracle
audits) are defined on *cells*, never on the lost sub-cell fraction.

Split budget
------------
A box (inclusive per-dimension cell bounds) decomposes into disjoint,
ascending, maximal z-order key intervals by litmax/bigmin splitting:
a partial trie node is split at its z-midpoint into the ``[lo,
litmax]`` / ``[bigmin, hi]`` halves and each half is refined
recursively.  ``split_budget`` caps the interval count: when refining
one more node would exceed the budget, the node's whole key interval
is emitted instead.  Over-covering is therefore the *only* budget
failure mode -- every cell of the box is always covered, so recall
cannot drop below 1.0 at the decomposition layer; the cost of a tight
budget is extra scanned keys, which callers filter with
:meth:`ZOrderCodec.box_contains`.  ``box_ranges`` guarantees
``len(ranges) <= split_budget`` after adjacent-interval merging.

Recall-audit rules
------------------
Scenario runners audit every box query against a brute-force oracle
view: the sorted universe of workload keys is intersected with the
*issued* (possibly over-covering) ranges and filtered by
:meth:`ZOrderCodec.box_contains`; that set is the ground truth.  The
served result -- the union of keys returned by the per-range queries,
filtered by the same predicate -- is compared against it, and reports
carry ``recall = |served ∩ oracle| / |oracle|`` summed over boxes.
Both sides use the same cell-level membership predicate, so a
maintenance-free run must audit at exactly 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import DomainError
from .keyspace import KEY_BITS, MAX_KEY, KeyCodec

__all__ = ["ZOrderCodec", "DEFAULT_SPLIT_BUDGET"]

#: Default cap on the number of 1-D ranges a box may decompose into.
DEFAULT_SPLIT_BUDGET: int = 16


@dataclass(frozen=True)
class ZOrderCodec(KeyCodec):
    """Morton (z-order) codec interleaving ``dims`` attributes.

    Frozen so codecs compare by value and survive
    ``dataclasses.replace`` on the specs that carry them.
    """

    dims: int = 2
    split_budget: int = DEFAULT_SPLIT_BUDGET

    def __post_init__(self):
        if not 1 <= self.dims <= KEY_BITS:
            raise DomainError(
                f"dims must lie in [1, {KEY_BITS}], got {self.dims}"
            )
        if self.split_budget < 1:
            raise DomainError(
                f"split budget must be >= 1, got {self.split_budget}"
            )

    # -- geometry ----------------------------------------------------------

    @property
    def bits_per_dim(self) -> int:
        """Quantization precision of each attribute."""
        return KEY_BITS // self.dims

    @property
    def cells_per_dim(self) -> int:
        """Number of quantization cells along each dimension."""
        return 1 << self.bits_per_dim

    @property
    def pad_bits(self) -> int:
        """Zeroed low-order key bits below the interleaved block."""
        return KEY_BITS - self.dims * self.bits_per_dim

    @property
    def name(self) -> str:
        return f"z{self.dims}"

    # -- quantization ------------------------------------------------------

    def quantize(self, x: float) -> int:
        """Cell index of an attribute value in ``[0, 1)``."""
        if not 0.0 <= x < 1.0:
            raise DomainError(f"attribute value must lie in [0, 1), got {x!r}")
        return min(int(x * self.cells_per_dim), self.cells_per_dim - 1)

    # -- interleaving ------------------------------------------------------

    def interleave(self, cells: Sequence[int]) -> int:
        """Interleave per-dimension cell indices into one z-value."""
        d, b = self.dims, self.bits_per_dim
        if len(cells) != d:
            raise DomainError(f"expected {d} cells, got {len(cells)}")
        top = self.cells_per_dim
        for q in cells:
            if not 0 <= q < top:
                raise DomainError(f"cell {q!r} out of range [0, {top})")
        z = 0
        for bit in range(b - 1, -1, -1):
            for q in cells:
                z = (z << 1) | ((q >> bit) & 1)
        return z

    def deinterleave(self, z: int) -> Tuple[int, ...]:
        """Per-dimension cell indices of a z-value."""
        d, b = self.dims, self.bits_per_dim
        if not 0 <= z < (1 << (d * b)):
            raise DomainError(f"z-value {z!r} out of range")
        cells = [0] * d
        for bit in range(b):
            chunk = z >> ((b - 1 - bit) * d)
            for j in range(d):
                cells[j] = (cells[j] << 1) | ((chunk >> (d - 1 - j)) & 1)
        return tuple(cells)

    # -- KeyCodec protocol -------------------------------------------------

    def encode(self, point: Sequence[float]) -> int:
        """Quantize and interleave a d-tuple of attributes into a key."""
        if self.dims == 1:
            return self.quantize(point[0]) << self.pad_bits
        return self.interleave([self.quantize(x) for x in point]) << self.pad_bits

    def decode(self, key: int) -> Tuple[float, ...]:
        """Cell-representative attributes of a key."""
        if not 0 <= key < MAX_KEY:
            raise DomainError(f"key {key!r} out of range [0, 2^{KEY_BITS})")
        scale = float(self.cells_per_dim)
        return tuple(q / scale for q in self.cells_of(key))

    # -- box machinery -----------------------------------------------------

    def cells_of(self, key: int) -> Tuple[int, ...]:
        """Per-dimension cell indices of a key (ignores pad bits)."""
        return self.deinterleave(key >> self.pad_bits)

    def box_contains(
        self, key: int, lo_cells: Sequence[int], hi_cells: Sequence[int]
    ) -> bool:
        """Whether a key's cell lies inside the inclusive cell box."""
        cells = self.cells_of(key)
        return all(
            lo_cells[j] <= cells[j] <= hi_cells[j] for j in range(self.dims)
        )

    def box_cells(self, lows: Sequence[float], highs: Sequence[float]):
        """Inclusive per-dimension cell bounds of a float box.

        The box is half-open per dimension (``lo <= x < hi``); the
        returned bounds name every cell that intersects it.
        """
        d = self.dims
        if len(lows) != d or len(highs) != d:
            raise DomainError(f"box must have {d} dimensions")
        lo_cells, hi_cells = [], []
        top = self.cells_per_dim - 1
        for lo, hi in zip(lows, highs):
            if not 0.0 <= lo < hi <= 1.0:
                raise DomainError(f"box side [{lo}, {hi}) is invalid")
            q_lo = min(int(lo * self.cells_per_dim), top)
            q_hi = min(int(hi * self.cells_per_dim), top)
            if q_hi > q_lo and hi * self.cells_per_dim == q_hi:
                q_hi -= 1  # hi is cell-aligned; that cell is excluded
            lo_cells.append(q_lo)
            hi_cells.append(max(q_hi, q_lo))
        return tuple(lo_cells), tuple(hi_cells)

    def box_ranges(
        self,
        lo_cells: Sequence[int],
        hi_cells: Sequence[int],
        max_ranges: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """Decompose an inclusive cell box into half-open key ranges.

        Litmax/bigmin splitting over the implicit z-order trie, emitted
        in ascending key order, disjoint, adjacent intervals merged.
        At most ``max_ranges`` (default: the codec's ``split_budget``)
        intervals are returned; when the budget binds, partial trie
        nodes are emitted whole (over-covering, never under-covering).
        """
        budget = self.split_budget if max_ranges is None else max_ranges
        if budget < 1:
            raise DomainError(f"max_ranges must be >= 1, got {budget}")
        d, b = self.dims, self.bits_per_dim
        top = self.cells_per_dim - 1
        for j in range(d):
            if not 0 <= lo_cells[j] <= hi_cells[j] <= top:
                raise DomainError(
                    f"cell bounds [{lo_cells[j]}, {hi_cells[j]}] invalid "
                    f"in dimension {j}"
                )
        total_bits = d * b
        out: List[Tuple[int, int]] = []
        # Stack entries: (depth, z-prefix, per-dim inclusive cell bounds).
        # Children are pushed high-half first so nodes pop in ascending
        # z order, making `out` sorted by construction.
        stack = [(0, 0, tuple(zip((0,) * d, (top,) * d)))]
        while stack:
            depth, prefix, bounds = stack.pop()
            inside = all(
                lo_cells[j] <= bounds[j][0] and bounds[j][1] <= hi_cells[j]
                for j in range(d)
            )
            width = total_bits - depth
            node_lo = prefix << (width + self.pad_bits)
            node_hi = (prefix + 1) << (width + self.pad_bits)
            if inside or depth == total_bits:
                self._emit(out, node_lo, node_hi)
                continue
            if len(out) + len(stack) + 2 > budget:
                # Splitting could exceed the budget: over-cover instead.
                self._emit(out, node_lo, node_hi)
                continue
            # Split at the z-midpoint (litmax | bigmin): the next
            # interleaved bit belongs to dimension `depth % d` and
            # halves that dimension's cell interval.
            j = depth % d
            n_lo, n_hi = bounds[j]
            mid = (n_lo + n_hi) // 2  # top half starts at mid + 1
            for side in (1, 0):  # high child first: ascending pop order
                if side == 0:
                    child = bounds[:j] + ((n_lo, mid),) + bounds[j + 1 :]
                else:
                    child = bounds[:j] + ((mid + 1, n_hi),) + bounds[j + 1 :]
                c_lo, c_hi = child[j]
                if c_hi < lo_cells[j] or c_lo > hi_cells[j]:
                    continue  # disjoint from the box
                stack.append((depth + 1, (prefix << 1) | side, child))
        return out

    @staticmethod
    def _emit(out: List[Tuple[int, int]], lo: int, hi: int) -> None:
        if out and out[-1][1] == lo:
            out[-1] = (out[-1][0], hi)  # merge adjacent intervals
        else:
            out.append((lo, hi))

"""Key-space encodings: floats, strings and integers over ``[0, 1)``.

The paper assumes data keys from the unit interval with *order-preserving*
encodings so that range and prefix queries remain meaningful (Sec. 1, 6).
We fix a binary precision of :data:`KEY_BITS` bits and represent keys as
integers in ``[0, 2^KEY_BITS)``; this makes prefix tests and partition
counting exact and fast (integer shifts instead of float arithmetic).

Two encoders are provided:

* :func:`float_to_key` / :func:`key_to_float` for numeric attributes, and
* :func:`string_to_key` for text terms (the distributed inverted-file use
  case): strings are read as fractional digits in a configurable
  alphabet, which is strictly order-preserving on the alphabet order.

Key construction is unified behind the :class:`KeyCodec` API: a codec
object maps attribute tuples to keys and back, so workloads, specs and
runners thread *one* codec instead of scattering module-level calls.
:class:`ScalarCodec` wraps the two encoders above (``dims == 1``);
:class:`~repro.pgrid.mdim.ZOrderCodec` interleaves d attributes into
one key for multi-dimensional workloads.  The module-level functions
remain as thin aliases of the scalar path -- existing callers and the
committed goldens are unaffected.
"""

from __future__ import annotations

import string as _string
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from ..exceptions import DomainError

__all__ = [
    "KEY_BITS",
    "MAX_KEY",
    "float_to_key",
    "key_to_float",
    "string_to_key",
    "bit_at",
    "key_prefix",
    "DEFAULT_ALPHABET",
    "KeyCodec",
    "ScalarCodec",
]

#: Binary precision of integer keys.  53 bits makes ``float -> key`` lossless
#: for IEEE doubles in [0, 1); partition operations only ever touch the top
#: ~30 bits, so the extra precision is free.
KEY_BITS: int = 53

#: Exclusive upper bound of the integer key space.
MAX_KEY: int = 1 << KEY_BITS

#: Alphabet used by :func:`string_to_key`: ASCII lowercase plus a leading
#: "before everything" blank so shorter strings sort before their
#: extensions, mirroring lexicographic order.
DEFAULT_ALPHABET: str = " " + _string.ascii_lowercase


def float_to_key(x: float) -> int:
    """Map a float in ``[0, 1)`` to an integer key, preserving order."""
    if not 0.0 <= x < 1.0:
        raise DomainError(f"key value must lie in [0, 1), got {x!r}")
    return int(x * MAX_KEY)


def key_to_float(key: int) -> float:
    """Map an integer key back to the representative float of its cell."""
    if not 0 <= key < MAX_KEY:
        raise DomainError(f"key {key!r} out of range [0, 2^{KEY_BITS})")
    return key / MAX_KEY


def string_to_key(text: str, alphabet: str = DEFAULT_ALPHABET) -> int:
    """Order-preserving encoding of a string into the integer key space.

    Characters are interpreted as fractional digits base ``len(alphabet)``.
    Characters outside the alphabet are mapped to their closest in-alphabet
    rank (so arbitrary text degrades gracefully instead of raising).  The
    encoding is monotone: ``a <= b`` (lexicographically over the alphabet)
    implies ``string_to_key(a) <= string_to_key(b)``.
    """
    base = len(alphabet)
    if base < 2:
        raise DomainError("alphabet must contain at least two symbols")
    ranks = {ch: i for i, ch in enumerate(alphabet)}
    lo = 0.0
    width = 1.0
    for ch in text.lower():
        rank = ranks.get(ch)
        if rank is None:
            # Clamp unknown characters onto the nearest alphabet rank by
            # code point, keeping the map monotone on the known alphabet.
            rank = min(
                range(base), key=lambda i: abs(ord(alphabet[i]) - ord(ch))
            )
        width /= base
        lo += rank * width
        if width * MAX_KEY < 1.0:
            break  # further characters are below key precision
    return min(float_to_key(lo), MAX_KEY - 1)


class KeyCodec:
    """Maps attribute points to integer keys and back.

    A codec carries the *schema* of the keyspace: how many attributes a
    record has (``dims``) and how they pack into one ``KEY_BITS``-bit
    key.  Codecs are value objects -- implementations are frozen
    dataclasses so they compare by configuration and can ride on frozen
    specs.  ``encode`` must be order-preserving per attribute prefix so
    trie routing stays meaningful.
    """

    #: Number of attributes per record.
    dims: int = 1

    #: Short label used in reports.
    name: str = "codec"

    def encode(self, point) -> int:
        """An integer key for one attribute point."""
        raise NotImplementedError

    def decode(self, key: int) -> Tuple[float, ...]:
        """The representative attribute point of a key's cell."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarCodec(KeyCodec):
    """The classic one-dimensional keyspace behind the codec API.

    Wraps :func:`float_to_key` / :func:`string_to_key` /
    :func:`key_to_float`: floats encode losslessly, strings through the
    order-preserving fractional-digit reading over ``alphabet``.
    """

    alphabet: str = DEFAULT_ALPHABET

    dims = 1
    name = "scalar"

    def encode(self, point: Union[float, str, Sequence]) -> int:
        if isinstance(point, str):
            return string_to_key(point, self.alphabet)
        if isinstance(point, (tuple, list)):
            if len(point) != 1:
                raise DomainError(
                    f"scalar codec expects one attribute, got {len(point)}"
                )
            return self.encode(point[0])
        return float_to_key(point)

    def decode(self, key: int) -> Tuple[float]:
        return (key_to_float(key),)


def bit_at(key: int, level: int) -> int:
    """Bit ``level`` of a key (0 = most significant), i.e. the side of the
    level-``level`` bisection the key falls into."""
    if not 0 <= level < KEY_BITS:
        raise DomainError(f"level {level} out of range [0, {KEY_BITS})")
    return (key >> (KEY_BITS - 1 - level)) & 1


def key_prefix(key: int, length: int) -> int:
    """The top ``length`` bits of a key, as an integer (trie address)."""
    if not 0 <= length <= KEY_BITS:
        raise DomainError(f"prefix length {length} out of range")
    return key >> (KEY_BITS - length) if length else 0

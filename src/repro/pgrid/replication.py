"""Replica reconciliation (anti-entropy) between same-partition peers.

Structural replication -- several peers per key-space partition -- is the
paper's availability mechanism (Sec. 2.1).  Replicas converge on the same
key set through pairwise reconciliation, "using, e.g. [an] anti-entropy
algorithm" (Fig. 2, possibility 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from .._util import RngLike, make_rng
from ..exceptions import DomainError
from .network import PGridNetwork
from .peer import PGridPeer

__all__ = ["ReconcileStats", "reconcile", "anti_entropy_sweep", "replica_divergence"]


@dataclass
class ReconcileStats:
    """Keys exchanged during one pairwise reconciliation."""

    a_received: int
    b_received: int

    @property
    def keys_moved(self) -> int:
        """Total transferred keys (the bandwidth cost of the exchange)."""
        return self.a_received + self.b_received


def reconcile(a: PGridPeer, b: PGridPeer) -> ReconcileStats:
    """Pairwise anti-entropy: both peers end with the union of their keys.

    Only valid between peers of the same partition (same path); raises
    :class:`DomainError` otherwise, because merging across partitions
    would violate storage consistency.

    The union is one linear merge of the two sorted key stores (no
    intermediate difference sets); already-synchronized replicas -- the
    dominant case once a sweep has converged -- short-circuit on a
    C-level array comparison.
    """
    if a.path != b.path:
        raise DomainError(
            f"cannot reconcile peers of different partitions {a.path} vs {b.path}"
        )
    a_received, b_received = a.keys.reconcile_with(b.keys)
    a.replicas.add(b.peer_id)
    b.replicas.add(a.peer_id)
    return ReconcileStats(a_received=a_received, b_received=b_received)


def anti_entropy_sweep(
    network: PGridNetwork, *, rounds: int = 1, rng: RngLike = None
) -> int:
    """Run ``rounds`` of randomized pairwise reconciliation per partition.

    Each round pairs every online peer with a random online replica of the
    same partition.  Returns total keys moved.  Convergence is geometric:
    a partition of ``r`` replicas converges in ``O(log r)`` expected
    rounds.
    """
    if rounds < 1:
        raise DomainError(f"rounds must be >= 1, got {rounds}")
    rand = make_rng(rng)
    moved = 0
    for _ in range(rounds):
        for group in network.partitions().values():
            online = [network.peers[g] for g in group if network.peers[g].online]
            if len(online) < 2:
                continue
            for peer in online:
                partner = online[rand.randrange(len(online))]
                if partner is peer:
                    continue
                moved += reconcile(peer, partner).keys_moved
    return moved


def reconcile_down(network: PGridNetwork) -> int:
    """Flow keys down prefix chains: a peer whose partition *contains*
    another peer's partition pushes the matching keys to it.

    During construction, peers that stayed at a coarse path legitimately
    hold keys that also belong to the refined partitions below them; in
    the operational system those keys reach the deeper replicas through
    ordinary replicate interactions.  This helper performs that
    convergence step in one pass and returns the number of keys copied.
    Keys held by *nobody* covering a region remain missing -- real
    construction failures are not papered over.
    """
    from .keyspace import KEY_BITS
    from .keystore import KeyStore

    groups = network.partitions()
    # Union each partition's replica contents once, then walk every deep
    # partition's ancestor chain (O(partitions x depth) dictionary hits,
    # not the O(partitions^2) all-pairs prefix scan).
    unions = {}
    for path, pids in groups.items():
        union = KeyStore()
        for pid in pids:
            union.update(network.peers[pid].keys)
        unions[path] = union
    moved = 0
    for deep in sorted(groups, key=lambda p: p.length):
        lo, hi = deep.key_range(KEY_BITS)
        for length in range(deep.length):
            coarse_union = unions.get(deep.prefix(length))
            if coarse_union is None or not len(coarse_union):
                continue
            # Sorted store: the matching keys are one contiguous slice.
            matching = coarse_union.matching_keys(lo, hi)
            if not matching:
                continue
            for pid in groups[deep]:
                moved += network.peers[pid].keys.update_sorted(matching)
    return moved


def replica_divergence(network: PGridNetwork) -> float:
    """Mean, over partitions, of the fraction of partition keys missing
    from an average replica (0.0 = perfectly synchronized)."""
    divergences: List[float] = []
    for group in network.partitions().values():
        peers = [network.peers[g] for g in group]
        union: set = set()
        for p in peers:
            union.update(p.keys)
        if not union:
            continue
        for p in peers:
            divergences.append(1.0 - len(p.keys) / len(union))
    if not divergences:
        return 0.0
    return sum(divergences) / len(divergences)

"""Replica reconciliation (anti-entropy) between same-partition peers.

Structural replication -- several peers per key-space partition -- is the
paper's availability mechanism (Sec. 2.1).  Replicas converge on the same
key set through pairwise reconciliation, "using, e.g. [an] anti-entropy
algorithm" (Fig. 2, possibility 2).

Deletes and tombstones
----------------------
Reconciliation is a union, so a bare delete would resurrect from the
first stale replica it meets.  The write path therefore leaves a
*tombstone* per deleted key (:meth:`repro.pgrid.peer.PGridPeer.erase`);
:func:`reconcile` unions tombstones alongside keys and then applies them
to both sides -- **delete-wins** semantics: when a key is simultaneously
present on one replica and tombstoned on another, the delete prevails.
A later insert clears the tombstone on every peer it is applied to
(owner plus online replicas, then reconciliation), which is when a
re-insert of a previously deleted key becomes durable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from .._util import RngLike, make_rng, mean
from ..exceptions import DomainError
from .network import PGridNetwork
from .peer import PGridPeer

__all__ = [
    "ReconcileStats",
    "reconcile",
    "anti_entropy_sweep",
    "replica_divergence",
    "divergence_stats",
]


@dataclass
class ReconcileStats:
    """Keys exchanged during one pairwise reconciliation."""

    a_received: int
    b_received: int

    @property
    def keys_moved(self) -> int:
        """Total transferred keys (the bandwidth cost of the exchange)."""
        return self.a_received + self.b_received


def reconcile(a: PGridPeer, b: PGridPeer) -> ReconcileStats:
    """Pairwise anti-entropy: both peers end with the union of their keys.

    Only valid between peers of the same partition (same path); raises
    :class:`DomainError` otherwise, because merging across partitions
    would violate storage consistency.

    The union is one linear merge of the two sorted key stores (no
    intermediate difference sets); already-synchronized replicas -- the
    dominant case once a sweep has converged -- short-circuit on a
    C-level array comparison.
    """
    if a.path != b.path:
        raise DomainError(
            f"cannot reconcile peers of different partitions {a.path} vs {b.path}"
        )
    a_received, b_received = a.keys.reconcile_with(b.keys)
    if len(a.tombstones) or len(b.tombstones):
        # Death certificates travel with the exchange (counted as moved
        # keys: they cost wire bytes like any key) and win over presence.
        t_a, t_b = a.tombstones.reconcile_with(b.tombstones)
        if a_received or b_received or t_a or t_b:
            # Something moved: re-apply the certificates.  When nothing
            # moved in either direction, both sides were already
            # tombstone-consistent (every prior install ran this purge),
            # so the converged dominant case skips the O(tombstones)
            # sweep.
            a_received += t_a
            b_received += t_b
            for key in a.tombstones:
                a.keys.discard(key)
                b.keys.discard(key)
    a.replicas.add(b.peer_id)
    b.replicas.add(a.peer_id)
    return ReconcileStats(a_received=a_received, b_received=b_received)


def anti_entropy_sweep(
    network: PGridNetwork, *, rounds: int = 1, rng: RngLike = None
) -> int:
    """Run ``rounds`` of randomized pairwise reconciliation per partition.

    Each round pairs every online peer with a random online replica of the
    same partition.  Returns total keys moved.  Convergence is geometric:
    a partition of ``r`` replicas converges in ``O(log r)`` expected
    rounds.
    """
    if rounds < 1:
        raise DomainError(f"rounds must be >= 1, got {rounds}")
    rand = make_rng(rng)
    moved = 0
    for _ in range(rounds):
        for group in network.partitions().values():
            online = [network.peers[g] for g in group if network.peers[g].online]
            if len(online) < 2:
                continue
            for peer in online:
                partner = online[rand.randrange(len(online))]
                if partner is peer:
                    continue
                moved += reconcile(peer, partner).keys_moved
    return moved


def reconcile_down(network: PGridNetwork) -> int:
    """Flow keys down prefix chains: a peer whose partition *contains*
    another peer's partition pushes the matching keys to it.

    During construction, peers that stayed at a coarse path legitimately
    hold keys that also belong to the refined partitions below them; in
    the operational system those keys reach the deeper replicas through
    ordinary replicate interactions.  This helper performs that
    convergence step in one pass and returns the number of keys copied.
    Keys held by *nobody* covering a region remain missing -- real
    construction failures are not papered over.
    """
    from .keyspace import KEY_BITS
    from .keystore import KeyStore

    groups = network.partitions()
    # Union each partition's replica contents once, then walk every deep
    # partition's ancestor chain (O(partitions x depth) dictionary hits,
    # not the O(partitions^2) all-pairs prefix scan).
    unions = {}
    for path, pids in groups.items():
        union = KeyStore()
        for pid in pids:
            union.update(network.peers[pid].keys)
        unions[path] = union
    moved = 0
    for deep in sorted(groups, key=lambda p: p.length):
        lo, hi = deep.key_range(KEY_BITS)
        for length in range(deep.length):
            coarse_union = unions.get(deep.prefix(length))
            if coarse_union is None or not len(coarse_union):
                continue
            # Sorted store: the matching keys are one contiguous slice.
            matching = coarse_union.matching_keys(lo, hi)
            if not matching:
                continue
            for pid in groups[deep]:
                moved += network.peers[pid].keys.update_sorted(matching)
    return moved


def divergence_stats(groups: Iterable[List[Iterable[int]]]) -> Dict[str, float]:
    """Replica-staleness aggregates over replica groups of key sets.

    ``groups`` yields, per partition, the key collections of its
    replicas (any sized iterable of ints -- ``KeyStore`` or ``set``).
    Each replica's divergence is the fraction of its group's key union
    it is missing (0.0 = fully synchronized); ``stale_replicas`` counts
    replicas missing at least one key.  Both execution backends feed
    their end state through this one aggregator so the scenario
    report's ``writes.divergence`` section is comparable across them.
    Deterministic given a deterministic group order (callers iterate
    partitions in sorted-path order).
    """
    replicas = 0
    stale = 0
    fractions: List[float] = []
    for members in groups:
        sets = [set(ks) for ks in members]
        union: set = set()
        for ks in sets:
            union |= ks
        if not union:
            continue
        for ks in sets:
            replicas += 1
            fractions.append(1.0 - len(ks) / len(union))
            if len(ks) != len(union):
                stale += 1
    return {
        "replicas": replicas,
        "stale_replicas": stale,
        "mean": mean(fractions) if fractions else 0.0,
        "max": max(fractions, default=0.0),
    }


def replica_divergence(network: PGridNetwork) -> float:
    """Mean, over partitions, of the fraction of partition keys missing
    from an average replica (0.0 = perfectly synchronized)."""
    divergences: List[float] = []
    for group in network.partitions().values():
        peers = [network.peers[g] for g in group]
        union: set = set()
        for p in peers:
            union.update(p.keys)
        if not union:
            continue
        for p in peers:
            divergences.append(1.0 - len(p.keys) / len(union))
    if not divergences:
        return 0.0
    return sum(divergences) / len(divergences)

"""Sorted-array key storage for the query-serving data plane.

The operational overlay is read-heavy: every ``matching_keys`` call of the
shower range algorithm (Sec. 2.3) scans a peer's stored keys, and every
reconciliation merges two replicas' key sets.  A hash set answers
membership in O(1) but degrades range extraction to a full scan; a sorted
array answers ``matching_keys(lo, hi)`` in ``O(log n + hits)`` with a
C-level slice, keeps reconciliation a linear merge of two sorted runs, and
halves memory per key.  That trade matches the access pattern: peers
accumulate keys in bursts (construction, anti-entropy) and then serve
orders of magnitude more range/membership probes.

:class:`KeyStore` deliberately mirrors the :class:`set` vocabulary
(``add``/``discard``/``update``/``in``/iteration/``-``/``|``) so existing
call sites and tests that assign plain sets keep working unchanged;
:class:`~repro.pgrid.peer.PGridPeer` coerces any iterable assigned to its
``keys`` attribute into a ``KeyStore``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Tuple

__all__ = ["KeyStore"]

#: Below this incoming/resident ratio ``update`` prefers per-key binary
#: insertion over a full linear merge (shifts are C-level ``memmove``s).
_INSORT_RATIO = 8


class KeyStore:
    """Distinct integer keys in a sorted array.

    Invariant: ``_keys`` is strictly increasing.  All public operations
    preserve it; trusted constructors (:meth:`_from_sorted`) adopt a list
    the caller guarantees is sorted and duplicate-free.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Iterable[int] = ()):
        if isinstance(keys, KeyStore):
            self._keys = list(keys._keys)
        else:
            self._keys = sorted(set(keys))

    @classmethod
    def _from_sorted(cls, sorted_keys: List[int]) -> "KeyStore":
        """Adopt ``sorted_keys`` (strictly increasing) without copying."""
        store = object.__new__(cls)
        store._keys = sorted_keys
        return store

    # -- set-compatible basics -------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __contains__(self, key: int) -> bool:
        keys = self._keys
        i = bisect_left(keys, key)
        return i < len(keys) and keys[i] == key

    def __eq__(self, other) -> bool:
        if isinstance(other, KeyStore):
            return self._keys == other._keys
        if isinstance(other, (set, frozenset)):
            return len(self._keys) == len(other) and all(k in other for k in self._keys)
        return NotImplemented

    def __repr__(self) -> str:
        return f"KeyStore({self._keys!r})"

    def add(self, key: int) -> None:
        """Insert ``key``, keeping the array sorted (no-op if present)."""
        keys = self._keys
        i = bisect_left(keys, key)
        if i == len(keys) or keys[i] != key:
            keys.insert(i, key)

    def discard(self, key: int) -> None:
        """Remove ``key`` if present."""
        keys = self._keys
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            del keys[i]

    def remove(self, key: int) -> None:
        """Remove ``key``; raises :class:`KeyError` if absent."""
        keys = self._keys
        i = bisect_left(keys, key)
        if i == len(keys) or keys[i] != key:
            raise KeyError(key)
        del keys[i]

    def clear(self) -> None:
        """Drop every key."""
        del self._keys[:]

    def copy(self) -> "KeyStore":
        """An independent copy (one C-level list copy)."""
        return KeyStore._from_sorted(list(self._keys))

    def min(self) -> int:
        """Smallest stored key (raises :class:`IndexError` when empty)."""
        return self._keys[0]

    def max(self) -> int:
        """Largest stored key (raises :class:`IndexError` when empty)."""
        return self._keys[-1]

    # -- set algebra used by the overlay ---------------------------------

    def __sub__(self, other) -> set:
        """Keys present here but not in ``other`` (as a plain set)."""
        if isinstance(other, KeyStore):
            other = other._keys
            # Merge-style difference of two sorted runs.
            out = set()
            j = 0
            n = len(other)
            for k in self._keys:
                while j < n and other[j] < k:
                    j += 1
                if j == n or other[j] != k:
                    out.add(k)
            return out
        return {k for k in self._keys if k not in other}

    def __rsub__(self, other) -> set:
        return {k for k in other if k not in self}

    def __or__(self, other) -> set:
        out = set(self._keys)
        out.update(other)
        return out

    __ror__ = __or__

    def __and__(self, other) -> set:
        if isinstance(other, KeyStore):
            a, b = self._keys, other._keys
            if len(b) < len(a):
                a, b = b, a
            bset = set(b)
            return {k for k in a if k in bset}
        return {k for k in self._keys if k in other}

    __rand__ = __and__

    def intersection_size(self, other) -> int:
        """``|self ∩ other|`` without materializing the intersection."""
        if isinstance(other, KeyStore):
            a, b = self._keys, other._keys
            if len(b) < len(a):
                a, b = b, a
            bset = set(b)
            return sum(1 for k in a if k in bset)
        return sum(1 for k in self._keys if k in other)

    # -- bulk merges -------------------------------------------------------

    def update(self, keys: Iterable[int]) -> int:
        """Merge ``keys`` in; returns the number of *new* keys absorbed.

        Another :class:`KeyStore` merges in one linear pass; any other
        iterable is normalized (sorted, deduplicated) first.  Callers
        that already hold a strictly-increasing list should use
        :meth:`update_sorted` to skip the normalization.
        """
        if isinstance(keys, KeyStore):
            incoming = keys._keys
        else:
            incoming = sorted(set(keys))
        return self._merge_sorted(incoming)

    def update_sorted(self, sorted_keys: List[int]) -> int:
        """Merge a strictly-increasing list of keys in one linear pass.

        The trusted fast path behind bulk reconciliation: the caller
        guarantees ``sorted_keys`` is sorted and duplicate-free (e.g. a
        slice returned by :meth:`matching_keys`).  Returns the number of
        new keys absorbed.
        """
        return self._merge_sorted(sorted_keys)

    def _merge_sorted(self, incoming: List[int]) -> int:
        """Merge a strictly-increasing list; returns keys added."""
        mine = self._keys
        if not incoming:
            return 0
        if not mine:
            self._keys = list(incoming)
            return len(incoming)
        # Disjoint append: reconciliation after splits often delivers a
        # run entirely above (or below) the resident keys.
        if incoming[0] > mine[-1]:
            mine.extend(incoming)
            return len(incoming)
        if incoming[-1] < mine[0]:
            self._keys = list(incoming) + mine
            return len(incoming)
        if len(incoming) * _INSORT_RATIO < len(mine):
            added = 0
            for k in incoming:
                i = bisect_left(mine, k)
                if i == len(mine) or mine[i] != k:
                    mine.insert(i, k)
                    added += 1
            return added
        before = len(mine)
        merged: List[int] = []
        append = merged.append
        i = j = 0
        na, nb = len(mine), len(incoming)
        while i < na and j < nb:
            x = mine[i]
            y = incoming[j]
            if x == y:
                append(x)
                i += 1
                j += 1
            elif x < y:
                append(x)
                i += 1
            else:
                append(y)
                j += 1
        if i < na:
            merged.extend(mine[i:])
        elif j < nb:
            merged.extend(incoming[j:])
        self._keys = merged
        return len(merged) - before

    def reconcile_with(self, other: "KeyStore") -> Tuple[int, int]:
        """Anti-entropy union: both stores end with the merged key set.

        Returns ``(self_received, other_received)`` -- how many keys each
        side was missing.  Identical stores short-circuit on a C-level
        list comparison, which is the dominant case once a replica group
        has converged.
        """
        mine, theirs = self._keys, other._keys
        if mine == theirs:
            return 0, 0
        n_mine, n_theirs = len(mine), len(theirs)
        self._merge_sorted(theirs)
        merged = self._keys
        other._keys = list(merged)
        return len(merged) - n_mine, len(merged) - n_theirs

    # -- range extraction (the hot read path) ------------------------------

    def matching_keys(self, lo: int, hi: int) -> List[int]:
        """Stored keys inside ``[lo, hi)`` in ``O(log n + hits)``.

        Returns a sorted list (a contiguous slice of the backing array);
        callers that need set semantics wrap it themselves.
        """
        keys = self._keys
        return keys[bisect_left(keys, lo) : bisect_left(keys, hi)]

    def count_range(self, lo: int, hi: int) -> int:
        """Number of stored keys inside ``[lo, hi)`` without a slice."""
        keys = self._keys
        return bisect_left(keys, hi) - bisect_left(keys, lo)

    def count_below(self, boundary: int) -> int:
        """Number of stored keys strictly below ``boundary``."""
        return bisect_left(self._keys, boundary)

    def as_sorted_list(self) -> List[int]:
        """The backing array *by reference* -- callers must not mutate it."""
        return self._keys

"""P-Grid trie-structured overlay substrate (Sec. 2.1).

Sub-modules
-----------
``bits``
    Binary paths over the recursively bisected key space.
``keyspace``
    Order-preserving key encodings (floats, strings) to integer keys.
``routing``
    Per-level routing tables referencing the complementary subtree.
``keystore``
    Sorted-array key storage: O(log n + hits) range extraction and
    merge-based reconciliation for the query-serving data plane.
``peer``
    Peer state: path, stored keys, replicas, routing table.
``network``
    The assembled overlay: construction adapters, lookup entry points,
    and the routed write path (``insert``/``delete`` with eager
    replica application).
``search``
    Prefix routing for exact queries and the "shower" algorithm for
    range queries over the trie.
``maintenance``
    The standard *sequential* maintenance model (joins/leaves) used as
    the construction baseline, plus failure repair.
``liveness``
    The shared route-repair subsystem: :class:`~repro.pgrid.liveness.
    RouteRepairPolicy` knobs, the evidence-driven
    :class:`~repro.pgrid.liveness.LivenessTracker` state machine used by
    the message backend, and the oracle-evidence ``repair_routes`` sweep
    used by the data plane.
``replication``
    Anti-entropy reconciliation between replicas, including delete-wins
    tombstone propagation and the replica-divergence aggregates.
``serving``
    The query-serving front end: :class:`~repro.pgrid.serving.
    CachePolicy` knobs, TTL + write-invalidation result/route caches,
    and the adaptive-replication grant contract (see the module
    docstring for the coherence/audit model).
"""

from . import (  # noqa: F401
    bits,
    keyspace,
    keystore,
    liveness,
    maintenance,
    network,
    peer,
    replication,
    routing,
    search,
    serving,
)

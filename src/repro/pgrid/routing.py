"""Per-level routing tables for prefix routing (Sec. 2.1).

For each bit position of its path a peer keeps one or more randomly
selected references to peers whose paths carry the *opposite* bit at that
position.  Multiple references per level provide the alternative access
paths that make the overlay resilient to failures and churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .._util import RngLike, make_rng

__all__ = ["RoutingTable"]

#: Shared empty tuple returned by :meth:`RoutingTable.refs_view` for
#: unpopulated levels (avoids allocating an empty list per probe).
_NO_REFS: Sequence[int] = ()


@dataclass
class RoutingTable:
    """Routing references per path level, bounded per level.

    ``max_refs_per_level`` bounds memory and keeps the table's failure
    redundancy explicit (the paper keeps "one or more" references; our
    experiments default to 4, enough that churn rarely exhausts a level).
    """

    max_refs_per_level: int = 4
    levels: Dict[int, List[int]] = field(default_factory=dict)

    def add(self, level: int, peer_id: int) -> bool:
        """Insert a reference; evict the oldest beyond the bound.

        Returns True if the reference was new at this level.
        """
        refs = self.levels.setdefault(level, [])
        if peer_id in refs:
            return False
        refs.append(peer_id)
        if len(refs) > self.max_refs_per_level:
            refs.pop(0)
        return True

    def remove(self, peer_id: int) -> None:
        """Drop a (failed) peer from every level."""
        for refs in self.levels.values():
            while peer_id in refs:
                refs.remove(peer_id)

    def refs(self, level: int) -> List[int]:
        """All references at ``level`` (possibly empty).

        Always a fresh copy: callers are free to shuffle or filter the
        result without perturbing the table's internal order (guarded by
        a regression test).
        """
        return list(self.levels.get(level, ()))

    def refs_view(self, level: int) -> Sequence[int]:
        """Zero-copy, read-only view of the references at ``level``.

        The hot query path probes references by index thousands of times
        per experiment; handing out the internal list avoids a copy per
        hop.  Callers MUST NOT mutate the returned sequence -- use
        :meth:`refs` for anything that rearranges or filters.
        """
        return self.levels.get(level, _NO_REFS)

    def choose(self, level: int, rng: RngLike = None, exclude: Iterable[int] = ()) -> Optional[int]:
        """A random reference at ``level``, avoiding ``exclude`` if possible."""
        refs = self.levels.get(level)
        if not refs:
            return None
        rand = make_rng(rng)
        excluded = set(exclude)
        candidates = [r for r in refs if r not in excluded] or refs
        return candidates[rand.randrange(len(candidates))]

    def all_refs(self) -> List[int]:
        """Every referenced peer id (duplicates removed, order arbitrary)."""
        seen = set()
        for refs in self.levels.values():
            seen.update(refs)
        return list(seen)

    def depth(self) -> int:
        """Number of populated levels."""
        return len([lvl for lvl, refs in self.levels.items() if refs])

    def __contains__(self, peer_id: int) -> bool:
        return any(peer_id in refs for refs in self.levels.values())

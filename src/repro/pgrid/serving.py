"""Query-serving front end: caches, batching and adaptive replication.

This module holds the policy object and the cache primitives for the
serving layer that sits above the overlay (ROADMAP open item 2).  The
overlay itself answers every query from the responsible replica group;
under Zipf traffic ("millions of users" hit few keys) that concentrates
load on a handful of partitions.  The serving layer attacks that three
ways, all switched by one :class:`CachePolicy` carried on
``ScenarioSpec.cache``:

**Result caches with write invalidation.**  Each query origin keeps a
:class:`ResultCache` mapping key -> (present, stored_at).  A hit answers
locally at zero wire cost.  Entries stop serving after
``result_ttl_s`` (a TTL of 0 therefore never serves -- the trivially
coherent configuration), and are *invalidated eagerly by write
traffic*: every node that applies, forwards or replica-syncs an
``insert``/``delete`` for key *k* drops its cached entry for *k*.
Coherence is not assumed but **audited**: every cache hit is compared
against the runner's authoritative view of the durable key set
(initialised from the workload keys and updated at write-ack time), and
reports carry the measured ``stale_read_rate`` = stale hits / hits.

**Route caches.**  Independently of results, origins remember *who
answered* for a key (:class:`RouteCache`).  Result entries die on every
write to their key; route entries survive writes -- the owner of the
partition did not move -- and only die on routing evidence (timeout of
a direct-sent attempt) or TTL.  After an invalidation the re-query goes
straight to the remembered owner (or one of its grant helpers, rotated
deterministically) instead of re-walking the trie.

**Batched issue with in-flight dedup.**  ``QueryMix.batch_size``
releases ``batch_size`` concurrent queries per arrival tick (arrival
rate is divided by the batch size so the mean query rate is unchanged).
A node that already has an identical lookup in flight attaches the new
query as a *waiter* on the primary; when the primary resolves, all
waiters resolve exactly once with the same outcome and zero additional
messages -- including the moot path when the origin churns offline
mid-flight (``abort_inflight``).

**Adaptive replication.**  Owners count queries served per decay
window.  Crossing ``hot_threshold`` makes the owner grant its key range
to up to ``replica_boost`` routing-table neighbours
(``REPLICA_GRANT``: path + keys, expiring after ``grant_ttl_s``).
Helpers answer queries for the granted range and receive the owner's
``REPLICA_SYNC`` fan-out so grants stay write-coherent.  When the
window load decays below the threshold the owner revokes
(``REPLICA_REVOKE``).  Owners advertise their helpers in ``QUERY_HIT``
replies so origin route caches rotate direct sends across the whole
replica set -- that rotation, not the grant itself, is what flattens
the per-peer load Gini.

**Front-end gateways.**  ``front_ends`` > 0 funnels message-backend
query origins through that many evenly spaced gateway nodes instead of
uniformly random ones -- the deployment shape the serving layer models
(clients attach to a front-end tier, not to arbitrary overlay nodes),
and the reason per-node caches see repeats at all.  The restriction is
applied for ``enabled=False`` runs too, so the on/off A/B isolates the
cache machinery.

The dataplane backend has no wire and no per-node origins; it models
the serving layer as a single front-end :class:`ResultCache` with the
same TTL/invalidation contract and reports adaptive-replication
counters as zeros.

``CachePolicy(enabled=False)`` runs the unmodified protocol but still
emits the report's ``serving`` section (baseline latency percentiles
and load Gini), giving the same on/off A/B story as route repair (PR 4)
and durability (PR 6).  ``cache=None`` omits the section entirely so
pre-existing goldens stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import DomainError

__all__ = ["CachePolicy", "ResultCache", "RouteCache", "gini"]


@dataclass(frozen=True)
class CachePolicy:
    """Knobs for the query-serving front end.

    ``enabled=False`` keeps protocol behaviour identical to having no
    policy at all -- caches never fill, dedup never joins, grants never
    fire -- but the report still carries the ``serving`` section so
    cache-off baselines are directly comparable.
    """

    enabled: bool = True
    #: Result entries older than this never serve (0 -> never serve).
    result_ttl_s: float = 30.0
    #: Route entries older than this are ignored.
    route_ttl_s: float = 240.0
    #: Per-node result-cache capacity (oldest-inserted evicted first).
    result_capacity: int = 256
    #: Per-node route-cache capacity.
    route_capacity: int = 128
    #: Master switch for the grant/revoke machinery.
    adaptive_replication: bool = True
    #: Queries served within one decay window that make an owner "hot".
    hot_threshold: int = 32
    #: Helpers granted to a hot owner.
    replica_boost: int = 2
    #: Window length for the served-query counter (and grant decay).
    decay_interval_s: float = 60.0
    #: Backstop: helpers drop a grant this long after receiving it.
    grant_ttl_s: float = 300.0
    #: Number of gateway nodes queries enter through on the message
    #: backend (0 = every node is a front end, i.e. unrestricted random
    #: origins).  A front end *is* the thing that owns caches: with
    #: origins spread over thousands of nodes no per-node cache ever
    #: sees a repeat.  The restriction applies to ``enabled=False`` runs
    #: too, so the cache on/off A/B differs only in the cache machinery,
    #: never in where queries enter.  The data plane models a single
    #: shared front end and ignores this knob.
    front_ends: int = 0

    def validate(self) -> None:
        if self.result_ttl_s < 0 or self.route_ttl_s < 0:
            raise DomainError("cache TTLs must be >= 0")
        if self.result_capacity < 1 or self.route_capacity < 1:
            raise DomainError("cache capacities must be >= 1")
        if self.hot_threshold < 1:
            raise DomainError("hot_threshold must be >= 1")
        if self.replica_boost < 0:
            raise DomainError("replica_boost must be >= 0")
        if self.decay_interval_s <= 0:
            raise DomainError("decay_interval_s must be > 0")
        if self.grant_ttl_s <= 0:
            raise DomainError("grant_ttl_s must be > 0")
        if self.front_ends < 0:
            raise DomainError("front_ends must be >= 0")

    def scaled(self, duration_scale: float) -> "CachePolicy":
        """Dilate every time constant, mirroring ``ScenarioSpec.scaled``."""
        if duration_scale == 1.0:
            return self
        return replace(
            self,
            result_ttl_s=self.result_ttl_s * duration_scale,
            route_ttl_s=self.route_ttl_s * duration_scale,
            decay_interval_s=self.decay_interval_s * duration_scale,
            grant_ttl_s=self.grant_ttl_s * duration_scale,
        )


class ResultCache:
    """TTL + invalidation cache of key -> presence-at-responsible.

    Entries are ``key -> (present, stored_at)``.  ``get`` serves only
    entries strictly younger than the TTL, so ``ttl_s == 0`` never
    serves.  Eviction is oldest-inserted-first (dict order), which is
    deterministic and cheap; hits do not refresh insertion order.
    """

    __slots__ = ("_ttl", "_cap", "_entries")

    def __init__(self, ttl_s: float, capacity: int) -> None:
        self._ttl = ttl_s
        self._cap = capacity
        self._entries: Dict[int, Tuple[bool, float]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: int, now: float) -> Optional[bool]:
        """Return the cached ``present`` flag, or None on miss/expiry."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        present, stored_at = entry
        if now - stored_at >= self._ttl:
            del self._entries[key]
            return None
        return present

    def put(self, key: int, present: bool, now: float) -> None:
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self._cap:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = (present, now)

    def invalidate(self, key: int) -> bool:
        """Drop the entry for ``key``; True if one was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()


class RouteCache:
    """Remembered responders per key, with deterministic rotation.

    Entries are ``key -> (targets, stored_at, next_index)`` where
    ``targets`` is the answering node plus any advertised grant
    helpers.  ``pick`` rotates through the targets round-robin so
    repeat queries for a hot key spread across the replica set.
    """

    __slots__ = ("_ttl", "_cap", "_entries")

    def __init__(self, ttl_s: float, capacity: int) -> None:
        self._ttl = ttl_s
        self._cap = capacity
        self._entries: Dict[int, List] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: int, targets: Iterable[int], now: float) -> None:
        ordered = list(dict.fromkeys(targets))
        if not ordered:
            return
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self._cap:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = [ordered, now, 0]

    def pick(self, key: int, now: float) -> Optional[int]:
        """Return the next target for ``key``, or None on miss/expiry."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        targets, stored_at, nxt = entry
        if now - stored_at >= self._ttl:
            del self._entries[key]
            return None
        entry[2] = (nxt + 1) % len(targets)
        return targets[nxt]

    def invalidate(self, key: int) -> bool:
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a load distribution (0 = even, ->1 = skewed)."""
    ordered = sorted(values)
    n = len(ordered)
    total = float(sum(ordered))
    if n == 0 or total <= 0.0:
        return 0.0
    weighted = 0.0
    for i, v in enumerate(ordered, 1):
        weighted += i * v
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n

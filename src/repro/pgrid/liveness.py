"""Routing-reference liveness: one repair subsystem, two evidence sources.

The paper's PlanetLab results (Sec. 5, 95-100% query success under
churn) assume peers *repair* their routing tables when references die.
Operationally that is two separable concerns:

* a **policy** -- when is a reference suspect, how hard do we probe it,
  when do we give up and evict, and how do replacements travel
  (:class:`RouteRepairPolicy`);
* a **mechanism** -- the bookkeeping that turns failure/liveness
  evidence into those decisions.

Both execution layers share this module but differ in where their
evidence comes from:

* the **data plane** (:mod:`repro.pgrid.maintenance`) has oracle
  evidence -- ``peer.online`` is globally visible -- so its mechanism is
  the synchronous :func:`repair_routes` sweep: drop dead references,
  replenish depleted levels from the live population;
* the **message backend** (:mod:`repro.simnet.node`) must infer
  liveness from the traffic it already sends, Kademlia-style: every
  query timeout or partition-refused send marks the used reference
  suspect, every delivered message refreshes the sender, suspects are
  probed with ``ping``/``pong`` and evicted after
  :attr:`RouteRepairPolicy.evict_after` silent probes, and evicted
  references are replaced by candidate references gossiped on
  anti-entropy exchanges.  :class:`LivenessTracker` is that state
  machine (per node, simulator-agnostic -- the node supplies timers and
  messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .._util import RngLike, make_rng
from .network import PGridNetwork

__all__ = ["RouteRepairPolicy", "LivenessTracker", "repair_routes"]


@dataclass(frozen=True)
class RouteRepairPolicy:
    """Knobs of the shared route-repair subsystem.

    ``enabled`` gates the whole machinery (``False`` reproduces the
    repair-less PR-3 wire behavior and skips the data plane's repair
    sweep).  The remaining knobs drive the evidence-based mechanism of
    the message backend; the oracle mechanism only reads ``enabled``.
    """

    #: Master switch: ``False`` = route blindly (the degradation baseline).
    enabled: bool = True
    #: Strikes (failure evidence + silent probes) before eviction.
    evict_after: int = 2
    #: Seconds a probe waits for its ``pong`` before striking.
    probe_timeout_s: float = 10.0
    #: Re-confirm a reference in active use after this many seconds of
    #: silence (confirm-on-use: probes track traffic, not a global clock).
    confirm_interval_s: float = 60.0
    #: Stale references probed per node per maintenance tick (the
    #: Kademlia-style bucket refresh, stalest first; 0 disables).
    #: Confirm-on-use alone discovers a dead reference only by paying a
    #: query timeout for it; the refresh budget drains the reservoir of
    #: never-used dead references at a bounded maintenance cost.
    refresh_probes: int = 8
    #: Candidate references gossiped per routing level on every
    #: anti-entropy exchange and every ``pong`` (0 disables gossip
    #: replenishment).
    gossip_refs: int = 2
    #: Seconds during which gossip may not re-install a reference this
    #: node just evicted (a negative cache: peers that have not noticed
    #: the death yet keep gossiping it; direct traffic from the
    #: reference clears the tombstone early).
    readd_cooldown_s: float = 60.0


class LivenessTracker:
    """Evidence-driven liveness state machine for one node's references.

    States per reference: *live* (no strikes), *suspect* (>=1 strike;
    queries route around it while a probe chain decides), *evicted*
    (removed from the routing table; only gossip re-adds it).  The
    tracker is pure bookkeeping -- the owning node sends the pings,
    schedules the timeouts and mutates its routing table -- so the same
    class is unit-testable without a simulator.

    Counters (``suspects``, ``probes``, ``evictions``, ``replacements``,
    ``repair_bytes``) feed the scenario report's ``message_level.repair``
    section.
    """

    def __init__(self, policy: RouteRepairPolicy):
        self.policy = policy
        #: Accumulated failure evidence per reference.
        self.strikes: Dict[int, int] = {}
        #: Outstanding probe nonce per reference (at most one in flight).
        self.probe_nonce: Dict[int, int] = {}
        #: Last time any message from the reference was delivered to us.
        self.last_confirmed: Dict[int, float] = {}
        #: Eviction tombstones: when each reference was last evicted.
        self.evicted_at: Dict[int, float] = {}
        self._nonce = 0
        # -- counters ------------------------------------------------------
        self.suspects = 0
        self.probes = 0
        self.evictions = 0
        self.replacements = 0
        self.repair_bytes = 0

    # -- evidence ----------------------------------------------------------

    def suspected(self, ref: int) -> bool:
        """True while ``ref`` has unresolved failure evidence."""
        return self.strikes.get(ref, 0) >= 1

    def note_alive(self, ref: int, now: float) -> None:
        """A message from ``ref`` was delivered: refresh, clear suspicion."""
        self.last_confirmed[ref] = now
        self.evicted_at.pop(ref, None)  # demonstrably back: clear tombstone
        if ref in self.strikes or ref in self.probe_nonce:
            self.strikes.pop(ref, None)
            self.probe_nonce.pop(ref, None)

    def note_failure(self, ref: int) -> bool:
        """Record failure evidence; returns True if a probe should start."""
        strikes = self.strikes.get(ref, 0)
        self.strikes[ref] = strikes + 1
        if strikes == 0:
            self.suspects += 1
        return ref not in self.probe_nonce

    def needs_confirmation(self, ref: int, now: float) -> bool:
        """Confirm-on-use: should forwarding to ``ref`` trigger a ping?"""
        if ref in self.probe_nonce:
            return False
        last = self.last_confirmed.get(ref, 0.0)
        return now - last >= self.policy.confirm_interval_s

    # -- probe chain -------------------------------------------------------

    def begin_probe(self, ref: int) -> int:
        """Register one in-flight probe; returns its nonce."""
        self._nonce += 1
        self.probe_nonce[ref] = self._nonce
        self.probes += 1
        return self._nonce

    def probe_expired(self, ref: int, nonce: int) -> str:
        """Probe timer fired: ``""`` (stale), ``"probe"`` or ``"evict"``."""
        if self.probe_nonce.get(ref) != nonce:
            return ""  # answered or superseded in the meantime
        del self.probe_nonce[ref]
        strikes = self.strikes.get(ref, 0) + 1
        self.strikes[ref] = strikes
        if strikes >= self.policy.evict_after:
            return "evict"
        return "probe"

    def cancel_probe(self, ref: int, nonce: int) -> None:
        """Void an in-flight probe without striking (e.g. we went
        offline and could never have heard the pong)."""
        if self.probe_nonce.get(ref) == nonce:
            del self.probe_nonce[ref]

    def note_evicted(self, ref: int, now: float = 0.0) -> None:
        """The owner removed ``ref`` from its table: reset its state (a
        gossip re-add starts fresh) and leave a tombstone so gossip from
        slower peers cannot re-install it immediately."""
        self.evictions += 1
        self.strikes.pop(ref, None)
        self.probe_nonce.pop(ref, None)
        self.last_confirmed.pop(ref, None)
        self.evicted_at[ref] = now

    def recently_evicted(self, ref: int, now: float) -> bool:
        """True while ``ref``'s eviction tombstone blocks gossip re-adds."""
        evicted = self.evicted_at.get(ref)
        return (
            evicted is not None
            and now - evicted < self.policy.readd_cooldown_s
        )

    def note_replacement(self, n: int = 1) -> None:
        """Count references installed from gossip."""
        self.replacements += n


def repair_routes(
    network: PGridNetwork,
    *,
    policy: Optional[RouteRepairPolicy] = None,
    rng: RngLike = None,
) -> int:
    """Oracle-evidence repair: correction on use *with replenishment*.

    The data plane's policy instance -- liveness evidence is the global
    ``peer.online`` flag, so one synchronous sweep can replace dead
    references with live peers from the same complementary subtree and
    top depleted levels back up toward the table's redundancy bound.

    Replenishment matters under sustained churn: replacing only the dead
    references a level still holds makes degradation absorbing -- a deep
    outage strips a level to zero and nothing ever refills it, leaving
    the overlay permanently partitioned even after every peer returns
    (the scenario engine's Sec. 5.1 churn runs surfaced exactly this).
    Returns the number of reference replacements/additions made; a
    disabled ``policy`` makes the sweep a no-op (the degradation
    baseline).
    """
    if policy is not None and not policy.enabled:
        return 0
    rand = make_rng(rng)
    alive_by_prefix: dict = {}
    for peer in network.peers.values():
        if not peer.online:
            continue
        for length in range(peer.path.length + 1):
            alive_by_prefix.setdefault(peer.path.prefix(length), []).append(peer.peer_id)
    repaired = 0
    peers = network.peers
    for peer in peers.values():
        max_refs = peer.routing.max_refs_per_level
        for level in range(peer.path.length):
            refs = peer.routing.levels.get(level)
            if refs is None:
                refs = []
            dead = [r for r in refs if not peers[r].online]
            if not dead and len(refs) >= max_refs:
                continue
            comp = peer.path.prefix(level).extend(1 - peer.path.bit(level))
            candidates = [c for c in alive_by_prefix.get(comp, ()) if c not in refs]
            for d in dead:
                refs.remove(d)
            # Only actual reference installations count as repairs: the
            # scenario engine bills network traffic per repair, and a
            # local dead-ref deletion costs no messages.
            while len(refs) < max_refs and candidates:
                refs.append(candidates.pop(rand.randrange(len(candidates))))
                repaired += 1
            if refs and level not in peer.routing.levels:
                peer.routing.levels[level] = refs
    return repaired

"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DomainError(ReproError, ValueError):
    """A numeric argument lies outside the mathematically valid domain.

    Raised, for example, when asking for ``beta(p)`` with ``p`` outside
    ``[1 - ln 2, 1/2]`` or for a load fraction outside ``(0, 1)``.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical procedure failed to converge."""


class PartitionError(ReproError):
    """The reference partitioner was given an infeasible configuration."""


class RoutingError(ReproError):
    """A query could not be routed to a responsible peer."""


class ConstructionError(ReproError):
    """The decentralized construction process entered an invalid state."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""

"""The pre-existing unstructured overlay (bootstrap substrate).

The construction algorithm assumes "a pre-existing, generic, unstructured
overlay network" for random peer encounters (Sec. 2.2) and vote flooding
(Sec. 4.1).  We model it as an undirected random graph maintained by a
bootstrap server: each joining node receives ``degree`` random existing
nodes as neighbors, yielding a connected Erdos-Renyi-like topology.

Uniform random peer sampling -- "a non-trivial problem in itself which we
solve by a variant of random walks" -- is provided by fixed-length random
walks over this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .._util import RngLike, make_rng
from ..exceptions import SimulationError

__all__ = ["UnstructuredOverlay", "DEFAULT_DEGREE", "DEFAULT_WALK_LENGTH"]

#: Neighbors handed to each joining node.
DEFAULT_DEGREE = 5

#: Random-walk length for ~uniform sampling (mixing time of a random
#: graph is O(log n); 10 steps is comfortably above it for n <= 10^4).
DEFAULT_WALK_LENGTH = 10


@dataclass
class UnstructuredOverlay:
    """Adjacency of the unstructured bootstrap overlay."""

    degree: int = DEFAULT_DEGREE
    neighbors: Dict[int, Set[int]] = field(default_factory=dict)

    def join(self, node_id: int, rng: RngLike = None) -> List[int]:
        """Add a node, wiring it to up to ``degree`` random existing nodes.

        Returns the neighbor list assigned to the newcomer.
        """
        rand = make_rng(rng)
        if node_id in self.neighbors:
            raise SimulationError(f"node {node_id} already joined")
        existing = list(self.neighbors)
        self.neighbors[node_id] = set()
        if existing:
            chosen = rand.sample(existing, min(self.degree, len(existing)))
            for other in chosen:
                self.neighbors[node_id].add(other)
                self.neighbors[other].add(node_id)
        return sorted(self.neighbors[node_id])

    def leave(self, node_id: int) -> None:
        """Remove a node and all its edges (permanent departure)."""
        for other in self.neighbors.pop(node_id, set()):
            self.neighbors[other].discard(node_id)

    def neighbors_of(self, node_id: int) -> List[int]:
        """Sorted neighbor list."""
        return sorted(self.neighbors.get(node_id, ()))

    def random_walk(
        self,
        start: int,
        *,
        length: int = DEFAULT_WALK_LENGTH,
        rng: RngLike = None,
        alive: Optional[Set[int]] = None,
    ) -> int:
        """A ``length``-step random walk from ``start``.

        ``alive`` restricts steps to currently online nodes; if the walk
        gets stuck (no live neighbor) it stays put, which mimics a walk
        timing out at a dead end.  Returns the terminal node.
        """
        rand = make_rng(rng)
        current = start
        for _ in range(length):
            options = [
                n
                for n in self.neighbors.get(current, ())
                if alive is None or n in alive
            ]
            if not options:
                break
            current = options[rand.randrange(len(options))]
        return current

    def components(self) -> List[Set[int]]:
        """Connected components, each a set of node ids.

        Ordered by smallest member for determinism.  A partitioned
        overlay (e.g. after the nodes bridging two regions leave) shows
        up as multiple components; random walks can never cross between
        them, so peer sampling -- and with it construction progress --
        is confined to the walker's own component.
        """
        out: List[Set[int]] = []
        seen: Set[int] = set()
        for start in self.neighbors:
            if start in seen:
                continue
            component: Set[int] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self.neighbors[node] - component)
            seen |= component
            out.append(component)
        out.sort(key=min)
        return out

    def is_connected(self) -> bool:
        """Whole-graph connectivity check (used by tests)."""
        return len(self.components()) <= 1

    def __len__(self) -> int:
        return len(self.neighbors)

"""A P-Grid peer as an asynchronous protocol node.

This is the message-passing counterpart of the round-based simulator in
:mod:`repro.core.construction`: the same Fig. 2 interaction rules
(split / replicate / refer) and Sec. 4.2 estimators, but driven by
timers, subject to latency, loss and churn, and with every byte
accounted.  Optimistic concurrency handles in-flight races: an exchange
response that no longer matches the initiator's state is discarded, just
as a real implementation would abort a stale handshake.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .._util import RngLike, make_rng
from ..core.estimators import (
    estimate_partition_keys,
    estimate_replica_count,
    estimate_split_fraction,
)
from ..core.probabilities import decision_probabilities
from ..pgrid.bits import Path, ROOT
from ..pgrid.keyspace import KEY_BITS, bit_at
from ..pgrid.liveness import LivenessTracker, RouteRepairPolicy
from ..pgrid.serving import CachePolicy, ResultCache, RouteCache
from . import protocol as P
from .engine import DeadlineTimer, Simulator
from .transport import HEADER_BYTES, Message, Network, REF_BYTES

__all__ = ["PGridNode", "NodeConfig", "QueryOutcome"]


@dataclass
class NodeConfig:
    """Per-node protocol parameters (times in simulated seconds)."""

    n_min: int = 5
    d_max: float = 50.0
    interaction_interval: float = 20.0
    walk_length: int = 6
    max_idle_attempts: int = 4
    query_timeout: float = 30.0
    query_retries: int = 4
    max_refs_per_level: int = 4
    #: Seconds a delete tombstone keeps riding anti-entropy exchanges.
    #: Death certificates must outlive the anti-entropy convergence time
    #: (a few maintenance ticks), but shipping them forever would make
    #: every exchange after a delete-heavy phase pay O(total deletes
    #: ever) in wire bytes.  Classic bounded-staleness trade (Demers-style
    #: death certificates): a replica offline longer than the TTL may
    #: resurrect a deleted key until the next delete or exchange with a
    #: fresher peer.
    tombstone_ttl_s: float = 600.0
    #: Evidence-driven liveness & route repair (see
    #: :mod:`repro.pgrid.liveness`); ``RouteRepairPolicy(enabled=False)``
    #: reproduces the repair-less blind-routing behavior.
    repair: RouteRepairPolicy = field(default_factory=RouteRepairPolicy)
    #: Query-serving front end (:mod:`repro.pgrid.serving`): result/route
    #: caches with write invalidation, in-flight dedup and adaptive
    #: replication.  ``None`` or ``enabled=False`` reproduces the
    #: serving-less protocol bit-for-bit.
    serving: Optional[CachePolicy] = None


@dataclass
class _PendingQuery:
    key: int
    issued_at: float
    attempts: int = 0
    timeouts: int = 0
    done: bool = False
    hops: int = 0
    #: First-hop reference the current attempt left through (liveness
    #: evidence: a timed-out attempt marks it suspect).
    via: Optional[int] = None
    #: Served from the local result cache (no wire traffic at all).
    cached: bool = False
    #: Joined an identical in-flight lookup as a waiter: resolves with
    #: the primary's outcome and zero additional messages.
    shared: bool = False
    #: Route-cache target the current attempt was direct-sent to (a
    #: timeout invalidates the route entry as well as suspecting it).
    direct: Optional[int] = None
    #: Presence flag learned from the answering node (rides QUERY_HIT).
    present: Optional[bool] = None
    #: Lazy attempt timer: re-armed per attempt, disarmed on completion
    #: (one heap entry per pending op -- see ``engine.DeadlineTimer``).
    timer: Optional[DeadlineTimer] = None


@dataclass
class _PendingWrite:
    """Origin-side state of one routed mutation (insert or delete)."""

    op: str
    key: int
    issued_at: float
    attempts: int = 0
    timeouts: int = 0
    done: bool = False
    hops: int = 0
    #: First-hop reference of the current attempt (liveness evidence).
    via: Optional[int] = None
    #: Lazy attempt timer (see ``_PendingQuery.timer``).
    timer: Optional[DeadlineTimer] = None


@dataclass
class _PendingRange:
    """Origin-side state of one range query (sequential traversal)."""

    lo: int
    hi: int
    issued_at: float
    attempts: int = 0
    timeouts: int = 0
    done: bool = False
    parts: int = 0
    chain_hops: int = 0
    #: First-hop reference of the current attempt (liveness evidence).
    via: Optional[int] = None
    keys: Set[int] = field(default_factory=set)
    #: Slice intervals received so far (any attempt -- every attempt
    #: restarts from ``lo`` and keys deduplicate, so all slices are
    #: valid completeness evidence).  Checked before accepting ``done``.
    covered: List[tuple] = field(default_factory=list)
    #: Lazy attempt timer (see ``_PendingQuery.timer``).
    timer: Optional[DeadlineTimer] = None


def _intervals_cover(intervals: List[tuple], lo: int, hi: int) -> bool:
    """True iff the union of half-open ``intervals`` covers ``[lo, hi)``."""
    cursor = lo
    for start, end in sorted(intervals):
        if start > cursor:
            return False
        if end > cursor:
            cursor = end
    return cursor >= hi


@dataclass(frozen=True)
class QueryOutcome:
    """Terminal record of one (point or range) query, as handed to the
    ``on_query_done`` / ``on_range_done`` observer callbacks.

    ``messages`` approximates the wire messages the query caused from
    the origin's viewpoint: routed hops of the final attempt plus, for
    ranges, one result slice per traversed partition.  ``moot`` marks
    queries voided because the *origin* went offline mid-flight -- the
    overlay did not fail them, they could never be answered.
    """

    issued_at: float
    latency: float
    hops: int
    success: bool
    attempts: int
    timeouts: int
    messages: int = 0
    keys_found: int = 0
    moot: bool = False
    #: The matching keys themselves (range queries only; empty for
    #: points).  Box queries fold these across their sub-ranges for the
    #: recall audit (see :mod:`repro.pgrid.mdim`); sorted so observers
    #: see a deterministic tuple.
    found_keys: Tuple[int, ...] = ()


class PGridNode:
    """One simulated peer: state plus message handlers."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        *,
        config: Optional[NodeConfig] = None,
        rng: RngLike = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.config = config or NodeConfig()
        self.rng = make_rng(rng)
        self.online = True
        # P-Grid state
        self.path: Path = ROOT
        self.keys: Set[int] = set()
        #: Death certificates of deleted keys (delete-wins; they ride on
        #: replica syncs and anti-entropy exchanges like keys, and age
        #: out after ``config.tombstone_ttl_s`` -- see _prune_tombstones).
        self.tombstones: Set[int] = set()
        #: When each tombstone was first installed here (TTL bookkeeping;
        #: re-gossip does not refresh it, or certificates would ping-pong
        #: between replicas forever).
        self._tombstone_born: Dict[int, float] = {}
        self.original_keys: Set[int] = set()
        self.outbox: Set[int] = set()
        self.routing: Dict[int, List[int]] = {}
        self.replicas: Set[int] = set()
        # The live unstructured overlay (set when joining); neighbor lists
        # are read from it dynamically because the bootstrap keeps wiring
        # newcomers to existing nodes after our own join completed.
        self.overlay = None
        self.joined = False
        # Evidence-driven liveness of routing references (suspect ->
        # probe -> evict -> replace-from-gossip; see pgrid.liveness).
        self.liveness = LivenessTracker(self.config.repair)
        # Refresh-sweep skip cache: after a sweep that found nothing
        # stale, no reference can become stale while
        # ``now - min(last_confirmed) < confirm_interval`` (float
        # subtraction is monotone in the subtrahend, so the minimum
        # bounds every ref under the sweep's own expression).  Sweeps
        # in that window are skipped outright.  INVARIANT: every
        # mutation that adds/replaces routing refs or lowers a
        # confirmation stamp must reset this to None (add_route,
        # _accept_gossip, _evict_ref, probe cancellation, restore,
        # and the runner's cold-rejoin reset).
        self._route_sweep_min_last: Optional[float] = None
        # construction activity control
        self.constructing = False
        self.idle_strikes = 0
        self._exchange_nonce = 0
        self._inflight_exchange: Optional[tuple[int, str]] = None
        # query bookkeeping
        self._queries: Dict[int, _PendingQuery] = {}
        self._ranges: Dict[int, _PendingRange] = {}
        self._writes: Dict[int, _PendingWrite] = {}
        self._query_seq = 0
        self.query_results: List[tuple[float, float, int, bool]] = []
        self.range_results: List[QueryOutcome] = []
        self.write_results: List[QueryOutcome] = []
        # Optional observers (the message-level scenario backend hooks
        # these): called with (node_id, qid, QueryOutcome) whenever a
        # query reaches a terminal state -- hit, exhausted retries, or
        # voided by the origin going offline.
        self.on_query_done: Optional[Callable[[int, int, QueryOutcome], None]] = None
        self.on_range_done: Optional[Callable[[int, int, QueryOutcome], None]] = None
        self.on_write_done: Optional[Callable[[int, int, QueryOutcome], None]] = None
        # Query-serving front end (pgrid.serving).  ``_serving`` is the
        # active policy or None; an ``enabled=False`` policy behaves
        # exactly like no policy at the protocol level.
        sv = self.config.serving
        self._serving: Optional[CachePolicy] = (
            sv if (sv is not None and sv.enabled) else None
        )
        if self._serving is not None:
            self.result_cache = ResultCache(sv.result_ttl_s, sv.result_capacity)
            self.route_cache = RouteCache(sv.route_ttl_s, sv.route_capacity)
        else:
            self.result_cache = None
            self.route_cache = None
        #: key -> primary qid of the in-flight lookup (dedup joins it).
        self._inflight_by_key: Dict[int, int] = {}
        #: primary qid -> waiter qids resolved with the primary's outcome.
        self._waiters: Dict[int, List[int]] = {}
        #: Queries answered as owner within the current decay window.
        self._served_window = 0
        #: Owner side: helper id -> grant time (adaptive replication).
        self._helpers: Dict[int, float] = {}
        #: Helper side: path str -> [Path, key set, expires_at].
        self._grants: Dict[str, list] = {}
        self.serving_stats: Dict[str, int] = {
            "result_hits": 0,
            "result_misses": 0,
            "dedup_joined": 0,
            "invalidations": 0,
            "route_uses": 0,
            "route_invalidations": 0,
            "grants": 0,
            "revokes": 0,
            "grant_hits": 0,
        }
        #: Audit observer: (node_id, key, cached_present) on every result
        #: cache hit, before it serves (the runner compares the cached
        #: presence against its authoritative durable view).
        self.on_cache_hit: Optional[Callable[[int, int, bool], None]] = None
        network.register(self)

    # -- helpers -----------------------------------------------------------

    def send(self, dst: int, kind: str, payload: dict, *, n_keys: int = 0,
             n_refs: int = 0, category: str = P.MAINTENANCE) -> Optional[str]:
        """Transmit a message through the network (byte-accounted).

        Returns the transport's send-time drop cause (or ``None``).  A
        ``"refused"`` or ``"partition"`` failure is evidence the sender
        really observes -- the connect failed -- so it feeds the
        liveness tracker exactly like a timeout; random loss and
        in-flight drops stay invisible, as on a real wire.
        """
        cause = self.network.send(
            self.node_id, dst, kind, payload, n_keys=n_keys, n_refs=n_refs,
            category=category,
        )
        if cause in ("refused", "partition"):
            self._suspect_ref(dst)
        return cause

    def set_online(self, online: bool, *, warm: bool = False) -> None:
        """Churn hook: toggling availability clears in-flight handshakes.

        Coming back online restarts the probe chain of every suspect
        whose probes were voided by our own absence -- otherwise a
        reference could stay suspect (and routed around) forever.

        ``warm=True`` is the warm-rejoin path after
        :meth:`restore_state`: instead of the cold sponsored join, the
        node resumes with its restored state and immediately initiates
        one anti-entropy exchange with a restored replica to reconcile
        the delta accumulated while down (periodic maintenance finishes
        the job).  Restored routing refs were already marked
        unconfirmed by the restore -- the liveness machine probes them
        before trusting them (see :mod:`repro.pgrid.state`).
        """
        self.online = online
        if not online:
            self._inflight_exchange = None
            return
        if self.config.repair.enabled:
            for ref in sorted(self.liveness.strikes):
                if (
                    self.liveness.strikes[ref] >= 1
                    and ref not in self.liveness.probe_nonce
                ):
                    self._send_probe(ref)
        if warm:
            partners = sorted(self.replicas - {self.node_id})
            if partners:
                partner = partners[self.rng.randrange(len(partners))]
                self._begin_exchange(partner)

    # -- durability (see repro.pgrid.state) ---------------------------------

    def snapshot_state(self) -> dict:
        """Capture this node's durable state as a versioned snapshot
        dict (schema :data:`repro.pgrid.state.SCHEMA`)."""
        from ..pgrid.state import snapshot_node

        return snapshot_node(self, self.sim.now)

    def restore_state(self, snapshot: dict) -> None:
        """Resume from a :meth:`snapshot_state` checkpoint.

        Durable state (keys, outbox, tombstone clocks, routing refs,
        liveness beliefs) is restored per the warm-rejoin contract in
        :mod:`repro.pgrid.state`; transient state (pending operations,
        exchange handshakes, idle strikes) starts empty because it did
        not survive the restart.
        """
        from ..pgrid.state import restore_node

        restore_node(self, snapshot, self.sim.now)
        self.idle_strikes = 0
        self._inflight_exchange = None
        # Restored refs come back unconfirmed/rebased: drop the
        # refresh-sweep skip cache so the next sweep re-evaluates them.
        self._route_sweep_min_last = None
        # Serving state is transient: caches, grants and the served-load
        # window did not survive the process restart.
        if self._serving is not None:
            self.result_cache.clear()
            self.route_cache.clear()
        self._grants.clear()
        self._helpers.clear()
        self._served_window = 0

    def abort_inflight(self) -> None:
        """Restart hook: void every in-flight origin-side operation.

        A process shutdown loses pending query/write/range state; each
        pending entry is finished as ``moot`` so the observers fire (the
        scenario runner pops its per-qid bookkeeping) and the
        attempt-bound timers still queued in the simulator find no
        pending entry when they expire -- no leaked timers, no stale
        attempts burning retry budgets after a warm rejoin.
        """
        for qid, pending in list(self._queries.items()):
            if pending.done:
                # Already resolved as a waiter of an earlier entry in
                # this very loop -- finishing it again would fire the
                # observer twice (double-counted moot query).
                continue
            self._finish_query(qid, pending, pending.hops, False, moot=True)
        for wid, pending in list(self._writes.items()):
            self._finish_write(wid, pending, pending.hops, False, moot=True)
        for qid, pending in list(self._ranges.items()):
            self._finish_range(qid, pending, False, moot=True)

    def add_route(self, level: int, other: int) -> None:
        """Record a complementary-subtree reference at ``level``."""
        if other == self.node_id:
            return
        refs = self.routing.setdefault(level, [])
        if other not in refs:
            refs.append(other)
            del refs[: -self.config.max_refs_per_level]
            self._route_sweep_min_last = None  # new ref may already be stale

    def route_for_key(self, key: int) -> Optional[int]:
        """Next hop for ``key``: a random live-believed reference at the
        first unresolved level (``None`` when responsible or stuck).

        With repair enabled, suspect references are routed around while
        a probe chain decides their fate -- unless every reference at
        the level is suspect, in which case we gamble on one rather
        than dead-end.
        """
        # Per-hop hot path: the first level whose path bit differs from
        # the key's is the highest set bit of one XOR, replacing the
        # per-level bit_at scan.  (strikes holds exactly the suspected
        # references -- note_failure never leaves a zero count -- so an
        # empty dict skips the filter without allocating a copy.)
        path = self.path
        length = path.length
        if length == 0:
            return None  # responsible for everything
        diff = (key >> (KEY_BITS - length)) ^ path.bits
        if diff == 0:
            return None  # responsible
        level = length - diff.bit_length()
        refs = self.routing.get(level)
        if not refs:
            return None
        if self.config.repair.enabled:
            strikes = self.liveness.strikes
            if strikes:
                trusted = [r for r in refs if r not in strikes]
                refs = trusted or refs
        return refs[self.rng.randrange(len(refs))]

    def responsible_for(self, key: int) -> bool:
        """True iff ``key`` lies in this node's partition."""
        return self.path.contains_key(key, KEY_BITS)

    # -- liveness & route repair (pgrid.liveness, evidence-driven) -----------
    #
    # suspect: failure evidence (query timeout, partition-refused send)
    #          -> route around the reference, start a ping probe chain;
    # probe:   unanswered pings strike until ``evict_after``;
    # evict:   drop the reference from every level;
    # replace: anti-entropy exchanges gossip candidate references per
    #          level, refilling depleted levels (the wire analogue of the
    #          data plane's replenishment sweep).

    def _suspect_ref(self, ref: int) -> None:
        """Failure evidence against ``ref``: suspect it and start probing."""
        if not self.config.repair.enabled or ref == self.node_id:
            return
        if not any(ref in refs for refs in self.routing.values()):
            return  # not a routing reference; nothing to repair
        if self.liveness.note_failure(ref) and self.online:
            self._send_probe(ref)

    def _confirm_on_use(self, ref: int) -> None:
        """Forwarding through ``ref``: re-confirm it if it has been
        silent for a while (probing tracks the traffic we actually
        send, not a global scan)."""
        if (
            self.config.repair.enabled
            and self.online
            and self.liveness.needs_confirmation(ref, self.sim.now)
        ):
            self._send_probe(ref)

    def _send_probe(self, ref: int) -> None:
        nonce = self.liveness.begin_probe(ref)
        self.liveness.repair_bytes += HEADER_BYTES
        cause = self.send(ref, P.PING, {"nonce": nonce, "origin": self.node_id})
        if cause in ("refused", "partition"):
            # The connect itself failed: the probe's verdict is in
            # already, no need to wait out the timeout.  (Bounded
            # recursion: each round strikes once, evict_after caps it.)
            self._probe_verdict(ref, nonce)
            return
        self.sim.schedule(
            self.config.repair.probe_timeout_s,
            lambda: self._probe_timeout(ref, nonce),
        )

    def _probe_verdict(self, ref: int, nonce: int) -> None:
        action = self.liveness.probe_expired(ref, nonce)
        if action == "probe":
            self._send_probe(ref)
        elif action == "evict":
            self._evict_ref(ref)

    def _probe_timeout(self, ref: int, nonce: int) -> None:
        if not self.online:
            # We could never have heard the pong: void, don't strike.
            # The ref re-enters the refresh sweep with its old (stale)
            # confirmation, so the sweep skip cache must not stand.
            self.liveness.cancel_probe(ref, nonce)
            self._route_sweep_min_last = None
            return
        self._probe_verdict(ref, nonce)

    def _evict_ref(self, ref: int) -> None:
        """Remove a dead-believed reference from every routing level."""
        # Shrinking the table can only raise the sweep bound, but the
        # skip cache no longer count-guards the ref set -- reset it on
        # any structural change to keep the invariant simple.
        self._route_sweep_min_last = None
        removed = False
        for refs in self.routing.values():
            if ref in refs:
                refs.remove(ref)
                removed = True
        if removed:
            self.liveness.note_evicted(ref, self.sim.now)
        else:
            # Already gone (e.g. displaced by newer references); just
            # clear the tracker state so a gossip re-add starts fresh.
            self.liveness.strikes.pop(ref, None)
            self.liveness.probe_nonce.pop(ref, None)

    def _on_ping(self, msg: Message) -> None:
        # The pong proves liveness and -- Kademlia-style, every RPC
        # carries routing info -- gossips replacement candidates back to
        # the prober, who is probing precisely because it suspects its
        # table.
        gossip = self._gossip_refs()
        n_refs = sum(len(refs) for refs in gossip.values())
        self.liveness.repair_bytes += HEADER_BYTES + n_refs * REF_BYTES
        self.send(
            msg.src,
            P.PONG,
            {
                "nonce": msg.payload["nonce"],
                "path": str(self.path) if self.path.length else "",
                "gossip": gossip,
            },
            n_refs=n_refs,
        )

    def _on_pong(self, msg: Message) -> None:
        # Proof of life is recorded generically in ``receive``; absorb
        # the piggybacked replacement candidates.
        gossip = msg.payload.get("gossip")
        path = msg.payload.get("path", "")
        if gossip and path:
            self._accept_gossip(Path.from_string(path), gossip)

    def refresh_routes(self) -> int:
        """Probe up to ``refresh_probes`` stalest routing references.

        The periodic half of failure detection (the maintenance cadence
        calls this): confirm-on-use only ever probes references traffic
        happens to pick, so rarely-used dead references would linger and
        each cost a query its timeout on discovery.  Returns the number
        of probes launched.
        """
        policy = self.config.repair
        if not policy.enabled or policy.refresh_probes <= 0 or not self.online:
            return 0
        # Hot maintenance sweep: this runs every tick over every routing
        # reference, so ``LivenessTracker.needs_confirmation`` is inlined
        # with the lookups hoisted (same float expressions, same order).
        now = self.sim.now
        interval = policy.confirm_interval_s
        routing = self.routing
        cached = self._route_sweep_min_last
        if cached is not None and now - cached < interval:
            # A previous sweep found nothing stale; while the cached
            # minimum last-confirmation is still fresh, every swept
            # reference is too (confirmations only move lasts forward,
            # and every mutation that could introduce a staler ref
            # resets the cache -- see the invariant at the field).
            return 0
        liveness = self.liveness
        probe_nonce = liveness.probe_nonce
        last_confirmed_get = liveness.last_confirmed.get
        # Level scan order doesn't matter: ``last_confirmed`` is keyed
        # by reference id, so a reference appearing at several levels
        # (possible after exchanges move peers) yields the *same*
        # (last, ref) pair wherever seen, and the sort below totally
        # orders the result.  That makes a per-ref seen-set redundant --
        # duplicates land adjacent after sorting and are skipped there,
        # off the per-reference sweep.
        stale = []
        stale_append = stale.append
        min_last = None
        for refs in routing.values():
            for ref in refs:
                if ref in probe_nonce:
                    continue
                last = last_confirmed_get(ref, 0.0)
                if now - last >= interval:
                    stale_append((last, ref))
                elif min_last is None or last < min_last:
                    min_last = last
        if not stale:
            # Cache the no-op verdict: nothing can go stale before the
            # least-recently-confirmed swept reference does.  (With no
            # sweepable ref at all -- everything in-probe -- there is
            # no bound to cache: a probed ref can re-enter the sweep
            # with an arbitrarily old confirmation.)
            self._route_sweep_min_last = min_last
            return 0
        self._route_sweep_min_last = None
        stale.sort()
        budget = policy.refresh_probes
        launched = 0
        prev = None
        for item in stale:
            if item == prev:
                continue
            prev = item
            self._send_probe(item[1])
            launched += 1
            if launched >= budget:
                break
        return launched

    def _forward_toward(
        self,
        key: int,
        kind: str,
        payload: dict,
        *,
        category: str = P.QUERY_TRAFFIC,
        n_keys: int = 0,
    ) -> Optional[int]:
        """Pick a reference toward ``key`` and put ``payload`` on the wire.

        Returns the reference the message left through (loss is silent
        to the sender, so a lost message still counts as forwarded) or
        ``None`` on a dead end.  With repair enabled, a send-time
        refusal (offline or partitioned destination: the connect
        visibly failed) marks the reference suspect -- usually evicting
        it on the spot via the probe cascade -- and immediately
        re-picks: the paper's lazy *correction on use* applied at the
        wire, bounded by the table's per-level redundancy.
        """
        for _ in range(self.config.max_refs_per_level + 1):
            nxt = self.route_for_key(key)
            if nxt is None:
                return None
            self._confirm_on_use(nxt)
            cause = self.send(nxt, kind, payload, category=category, n_keys=n_keys)
            if not self.config.repair.enabled:
                return nxt  # blind routing: one shot, timeouts judge it
            if cause in (None, "loss", "offline"):
                return nxt
            # refused/partition: try another reference.
        return None

    def _gossip_refs(self) -> dict:
        """Candidate references per level for anti-entropy gossip.

        Only live-believed references travel: gossiping a suspect would
        spread exactly the staleness repair exists to remove.
        """
        policy = self.config.repair
        if not policy.enabled or policy.gossip_refs <= 0:
            return {}
        out = {}
        limit = policy.gossip_refs
        strikes = self.liveness.strikes  # suspected(r) == r in strikes
        routing = self.routing
        for level in sorted(routing):
            refs = routing[level]
            if strikes:
                refs = [r for r in refs if r not in strikes]
            if refs:
                out[level] = refs[:limit]
        return out

    def _accept_gossip(self, their_path: Path, gossip: dict) -> None:
        """Install gossiped candidates into depleted routing levels.

        A candidate at the sender's level ``l`` is known to live under
        the prefix ``their_path[:l] + ~their_path[l]``; placing it for
        *us* means finding where that prefix diverges from our own path.
        Candidates whose known prefix does not diverge from our path are
        skipped (their deeper position is unknown).  Only levels below
        the redundancy bound accept candidates -- gossip replenishes, it
        never displaces a reference we still trust.
        """
        policy = self.config.repair
        if not policy.enabled or not gossip:
            return
        max_refs = self.config.max_refs_per_level
        # Pure int math on (bits, length) pairs: the prefix
        # ``their_path[:l] + ~their_path[l]`` is one shift-and-flip, and
        # the common-prefix length with our path one XOR/bit_length --
        # no intermediate Path objects on the gossip-absorption path.
        my_bits = self.path.bits
        my_len = self.path.length
        their_bits = their_path.bits
        their_len = their_path.length
        for level in sorted(gossip):
            if level >= their_len:
                continue
            p_len = level + 1
            p_bits = (their_bits >> (their_len - p_len)) ^ 1
            n = p_len if p_len < my_len else my_len
            diff = (
                ((my_bits >> (my_len - n)) ^ (p_bits >> (p_len - n))) if n else 0
            )
            if diff == 0:
                # The known prefix does not diverge from our path (it is
                # a prefix of ours, or vice versa): position unknown.
                continue
            mine = n - diff.bit_length()
            refs = self.routing.get(mine)
            if refs is None:
                refs = self.routing.setdefault(mine, [])
            for ref in gossip[level]:
                if len(refs) >= max_refs:
                    break
                if (
                    ref != self.node_id
                    and ref not in refs
                    and not self.liveness.recently_evicted(ref, self.sim.now)
                ):
                    refs.append(ref)
                    self._route_sweep_min_last = None  # may already be stale
                    self.liveness.note_replacement()

    # -- message dispatch ----------------------------------------------------

    def receive(self, message: Message) -> None:
        """Network entry point."""
        if self.config.repair.enabled:
            # Any delivered message is proof of life: refresh the sender
            # and clear whatever suspicion it had accumulated.
            self.liveness.note_alive(message.src, self.sim.now)
        cls = self.__class__
        table = cls.__dict__.get("_kind_dispatch")
        if table is None:
            # Per-class dispatch table (built once, shared by every
            # node): kind -> precomputed ``_on_<kind>`` attribute name.
            # Avoids the per-message f-string formatting of the naive
            # dispatch; resolving through ``getattr`` keeps handlers
            # overridable per instance (tests patch them) and in
            # subclasses.
            table = {
                name[4:]: name for name in dir(cls) if name.startswith("_on_")
            }
            cls._kind_dispatch = table
        name = table.get(message.kind)
        if name is None:
            return  # unknown kinds are ignored (forward compatibility)
        getattr(self, name)(message)

    # -- bootstrap ------------------------------------------------------------

    def _on_join(self, msg: Message) -> None:
        """Bootstrap role: wire the newcomer into the unstructured overlay.

        Idempotent: a retried join (lost reply) re-sends the current
        neighbor list instead of re-wiring.
        """
        overlay = msg.payload["overlay"]
        if msg.src in overlay.neighbors:
            neighbors = overlay.neighbors_of(msg.src)
        else:
            neighbors = overlay.join(msg.src, rng=self.rng)
        self.send(msg.src, P.NEIGHBORS, {"neighbors": neighbors, "overlay": overlay})

    def _on_neighbors(self, msg: Message) -> None:
        self.overlay = msg.payload["overlay"]
        self.joined = True

    @property
    def neighbors(self) -> List[int]:
        """Current unstructured-overlay neighbors (live view)."""
        if self.overlay is None:
            return []
        return self.overlay.neighbors_of(self.node_id)

    # -- random walks -----------------------------------------------------------

    def start_walk(self, purpose: str) -> None:
        """Launch a uniform-sampling random walk (Sec. 3: "a variant of
        random walks")."""
        if not self.neighbors:
            return
        first = self.neighbors[self.rng.randrange(len(self.neighbors))]
        self.send(
            first,
            P.WALK,
            {
                "origin": self.node_id,
                "steps": self.config.walk_length - 1,
                "purpose": purpose,
            },
        )

    def _on_walk(self, msg: Message) -> None:
        steps = msg.payload["steps"]
        if steps <= 0 or not self.neighbors:
            self.send(
                msg.payload["origin"],
                P.WALK_RESULT,
                {"sampled": self.node_id, "purpose": msg.payload["purpose"]},
            )
            return
        nxt = self.neighbors[self.rng.randrange(len(self.neighbors))]
        self.send(
            nxt,
            P.WALK,
            {
                "origin": msg.payload["origin"],
                "steps": steps - 1,
                "purpose": msg.payload["purpose"],
            },
        )

    def _on_walk_result(self, msg: Message) -> None:
        sampled = msg.payload["sampled"]
        purpose = msg.payload["purpose"]
        if purpose == "replicate":
            if self.original_keys:
                self.send(
                    sampled,
                    P.STORE,
                    {"keys": list(self.original_keys)},
                    n_keys=len(self.original_keys),
                )
        elif purpose == "exchange" and sampled != self.node_id:
            self._begin_exchange(sampled)

    # -- replication phase --------------------------------------------------------

    def replicate_keys(self, copies: int, *, _retries: int = 10) -> None:
        """Kick off ``copies`` replication walks for the local key set.

        A node that has not finished joining yet (no overlay neighbors)
        retries shortly -- replication must not be lost to a slow join.
        """
        if not self.neighbors and _retries > 0:
            self.sim.schedule(
                30.0, lambda: self.replicate_keys(copies, _retries=_retries - 1)
            )
            return
        for _ in range(copies):
            self.start_walk("replicate")

    def _on_store(self, msg: Message) -> None:
        self._accept_keys(set(msg.payload["keys"]))

    # -- construction phase ----------------------------------------------------------

    def start_constructing(self) -> None:
        """Enable the periodic interaction timer."""
        self.constructing = True
        self.idle_strikes = 0
        self._schedule_interaction(initial=True)

    def _schedule_interaction(self, initial: bool = False) -> None:
        spread = self.config.interaction_interval
        delay = self.rng.uniform(0.2 * spread, 1.8 * spread)
        if initial:
            delay = self.rng.uniform(0.0, spread)
        self.sim.schedule(delay, self._interaction_tick)

    def _interaction_tick(self) -> None:
        if not self.constructing:
            return
        if not self.online:
            # Keep the timer chain alive through offline periods.
            self._schedule_interaction()
            return
        passive = self.idle_strikes >= self.config.max_idle_attempts
        if not passive:
            self.start_walk("exchange")
        elif self.rng.random() < 0.15:
            # Passive peers mostly wait to be contacted (Sec. 4.2) but
            # keep a slow heartbeat so isolated stragglers cannot
            # deadlock the whole group.
            self.start_walk("exchange")
        self._schedule_interaction()

    def wake(self) -> None:
        """Re-activate after being contacted with fresh information."""
        self.idle_strikes = 0

    def _begin_exchange(self, partner: int) -> None:
        self._exchange_nonce += 1
        self._inflight_exchange = (self._exchange_nonce, str(self.path))
        # One routing reference per level travels with the request so the
        # contacted peer can satisfy rule 4's reference hand-over even
        # when it is the one deciding (lagging-peer case).
        routes = {
            level: refs[0] for level, refs in self.routing.items() if refs
        }
        gossip = self._gossip_refs()
        n_refs = sum(len(refs) for refs in gossip.values())
        self.liveness.repair_bytes += n_refs * REF_BYTES
        # Tombstones travel with every exchange (billed like keys) so
        # deletes propagate through the same anti-entropy that spreads
        # inserts; an empty write path adds zero bytes, and expired
        # certificates are pruned before they ship.
        self._prune_tombstones()
        self.send(
            partner,
            P.EXCHANGE_REQ,
            {
                "path": str(self.path) if self.path.length else "",
                "keys": list(self.keys),
                "tombstones": sorted(self.tombstones),
                "replicas": list(self.replicas),
                "routes": routes,
                "gossip": gossip,
                "nonce": self._exchange_nonce,
            },
            n_keys=len(self.keys) + len(self.tombstones),
            n_refs=n_refs,
        )

    # The partner evaluates the interaction against its own state and
    # replies with a directive for the initiator.

    def _on_exchange_req(self, msg: Message) -> None:
        their_path = Path.from_string(msg.payload["path"])
        their_keys = set(msg.payload["keys"])
        their_replicas = set(msg.payload["replicas"])
        their_routes = msg.payload.get("routes", {})
        their_tombstones = set(msg.payload.get("tombstones", ()))
        self._prune_tombstones()  # the reply ships ours; expire first
        nonce = msg.payload["nonce"]
        # Route-repair gossip rides on every exchange, both directions:
        # their candidates may refill our depleted levels and vice versa.
        self._accept_gossip(their_path, msg.payload.get("gossip") or {})
        reply = self._evaluate_exchange(
            msg.src, their_path, their_keys, their_replicas, their_routes,
            their_tombstones,
        )
        reply["nonce"] = nonce
        reply["expected_path"] = msg.payload["path"]
        gossip = self._gossip_refs()
        n_refs = sum(len(refs) for refs in gossip.values())
        self.liveness.repair_bytes += n_refs * REF_BYTES
        reply["gossip"] = gossip
        self.send(
            msg.src,
            P.EXCHANGE_RESP,
            reply,
            n_keys=len(reply.get("keys", ())) + len(reply.get("tombstones", ())),
            n_refs=n_refs,
        )

    def _evaluate_exchange(
        self,
        initiator: int,
        their_path: Path,
        their_keys: Set[int],
        their_replicas: Set[int],
        their_routes: dict,
        their_tombstones: Set[int] = frozenset(),
    ) -> dict:
        """Apply the Fig. 2 rules from the contacted side.

        Returns the directive sent back to the initiator.  The contacted
        node applies its own half of the interaction immediately.
        """
        # Outbox delivery piggy-backs on every exchange.
        deliver = {k for k in self.outbox if their_path.contains_key(k, KEY_BITS)}
        self.outbox -= deliver

        cpl = self.path.common_prefix_length(their_path)
        if cpl < self.path.length and cpl < their_path.length:
            # Diverged: refer.  Learn each other; recommend a better match.
            self.add_route(cpl, initiator)
            recommendation = self._best_match(their_path, exclude=initiator)
            return {
                "action": "refer",
                "level": cpl,
                "partner_path": str(self.path),
                "recommend": recommendation,
                "keys": list(deliver),
            }
        if self.path == their_path:
            return self._evaluate_same_partition(
                initiator, their_keys, their_replicas, deliver, their_tombstones
            )
        if their_path.length < self.path.length:
            # Initiator lags: it decides against us (rules 3/4).
            return self._evaluate_decide(initiator, their_keys, deliver, their_path)
        # We lag behind the initiator: apply rules 3/4 ourselves, using the
        # initiator as the already-decided peer (its deeper path reveals
        # its side at our level).
        return self._lagging_decide(
            initiator, their_path, their_keys, their_replicas, their_routes, deliver
        )

    def _lagging_decide(
        self,
        initiator: int,
        their_path: Path,
        their_keys: Set[int],
        their_replicas: Set[int],
        their_routes: dict,
        deliver: Set[int],
    ) -> dict:
        """The contacted peer lags behind the initiator and refines its own
        path against it (the message-passing mirror of the round-based
        simulator's "partner undecided" case)."""
        level = self.path.length
        union = self.keys | their_keys
        useful = False
        if self._overloaded(their_keys, their_replicas, union, level):
            probs, minority = self._split_policy(their_keys, their_replicas, union, level)
            partner_side = their_path.bit(level)
            if partner_side == minority:
                side, via = 1 - minority, initiator
            elif self.rng.random() < probs.beta:
                side, via = minority, initiator
            else:
                side = partner_side
                via = their_routes.get(level)
                if via is None:
                    side, via = 1 - partner_side, initiator
            keys_back = self._self_apply_side(side, level, via, their_path)
            deliver |= keys_back
            useful = True
            self.wake()
        else:
            # Catch up on partition content we are missing.
            gained = {
                k
                for k in their_keys
                if self.responsible_for(k) and k not in self.keys
            }
            if gained:
                self.keys |= gained
                useful = True
                self.wake()
        return {
            "action": "noop",
            "partner_path": str(self.path),
            "keys": list(deliver),
            "useful": useful,
        }

    def _self_apply_side(
        self, side: int, level: int, via: Optional[int], their_path: Path
    ) -> Set[int]:
        """Extend own path by ``side``; return displaced keys belonging to
        the initiator's partition (shipped back in the reply), queue the
        rest in the outbox."""
        self.path = self.path.extend(side)
        if via is not None:
            self.add_route(level, via)
        stay = {k for k in self.keys if bit_at(k, level) == side}
        leaving = self.keys - stay
        self.keys = stay
        self.replicas = set()
        self._shed_foreign_tombstones()
        back = {k for k in leaving if their_path.contains_key(k, KEY_BITS)}
        self.outbox |= leaving - back
        return back

    def _shed_foreign_tombstones(self) -> None:
        """Drop tombstones outside the partition after a path change.

        A certificate left behind by a split would otherwise block the
        (now foreign) key from ever passing through ``_accept_keys``.
        """
        if not self.tombstones:
            return
        foreign = [k for k in self.tombstones if not self.responsible_for(k)]
        for key in foreign:
            self.tombstones.discard(key)
            self._tombstone_born.pop(key, None)

    def _evaluate_same_partition(
        self,
        initiator: int,
        their_keys: Set[int],
        their_replicas: Set[int],
        deliver: Set[int],
        their_tombstones: Set[int] = frozenset(),
    ) -> dict:
        level = self.path.length
        # Delete-wins: union the death certificates first, then treat
        # tombstoned keys as nonexistent on both sides of the exchange
        # (an empty write path makes all of this a no-op).
        if their_tombstones or self.tombstones:
            self._note_tombstones(
                k for k in their_tombstones if self.responsible_for(k)
            )
            self.keys -= self.tombstones
            their_keys = their_keys - self.tombstones
        union = self.keys | their_keys
        if self._overloaded(their_keys, their_replicas, union, level):
            probs, minority = self._split_policy(their_keys, their_replicas, union, level)
            if self.rng.random() < probs.alpha:
                # Balanced split: the contacted node takes one side now and
                # instructs the initiator to take the other.
                my_side = self.rng.randrange(2)
                keys_for_them = self._take_side(my_side, initiator)
                self.wake()
                return {
                    "action": "split",
                    "your_side": 1 - my_side,
                    "level": level,
                    "partner_path": str(self.path),
                    "keys": list(deliver | keys_for_them),
                }
            return {
                "action": "again",  # bisection in progress; stay active
                "partner_path": str(self.path),
                "keys": list(deliver),
            }
        # Replicate: reconcile content (anti-entropy).
        missing_here = their_keys - self.keys
        keys_for_them = self.keys - their_keys
        self.keys |= missing_here
        self.replicas.add(initiator)
        self.replicas |= their_replicas - {self.node_id}
        if missing_here or keys_for_them:
            self.wake()
        reply = {
            "action": "replicate",
            "partner_path": str(self.path),
            "replicas": list(self.replicas | {self.node_id}),
            "keys": list(deliver | keys_for_them),
            "useful": bool(missing_here or keys_for_them),
        }
        if self.tombstones:
            reply["tombstones"] = sorted(self.tombstones)
        return reply

    def _evaluate_decide(
        self, initiator: int, their_keys: Set[int], deliver: Set[int], their_path: Path
    ) -> dict:
        """Initiator's path is a proper prefix of ours: rules 3/4."""
        level = their_path.length
        union = self.keys | their_keys
        if not self._overloaded(their_keys, set(), union, level):
            # Not splittable: help the lagging peer catch up instead.
            catch_up = {
                k for k in self.keys if their_path.contains_key(k, KEY_BITS)
            } - their_keys
            return {
                "action": "catch_up",
                "partner_path": str(self.path),
                "keys": list(deliver | catch_up),
            }
        probs, minority = self._split_policy(their_keys, set(), union, level)
        my_side = self.path.bit(level)
        if my_side == minority:
            side = 1 - minority  # rule 3
            via = self.node_id
        elif self.rng.random() < probs.beta:
            side = minority  # rule 4, join the minority
            via = self.node_id
        else:
            side = my_side  # rule 4, same side: share an opposite ref
            via = self._opposite_ref(level)
            if via is None:
                side = 1 - my_side
                via = self.node_id
        return {
            "action": "decide",
            "your_side": side,
            "level": level,
            "counterpart": via,
            "partner_path": str(self.path),
            "keys": list(deliver),
        }

    def _opposite_ref(self, level: int) -> Optional[int]:
        for ref in self.routing.get(level, ()):
            return ref
        return None

    def _best_match(self, target: Path, exclude: int) -> Optional[int]:
        """Prefix-route one step toward ``target``: the reference at our
        divergence level with the target sits in the complementary
        subtree that contains the target's partition."""
        cpl = self.path.common_prefix_length(target)
        if cpl < self.path.length and cpl < target.length:
            refs = [r for r in self.routing.get(cpl, ()) if r != exclude]
            if refs:
                return refs[self.rng.randrange(len(refs))]
        return None

    # -- initiator side: apply the directive ------------------------------------

    def _on_exchange_resp(self, msg: Message) -> None:
        payload = msg.payload
        # Gossiped candidates are fresh world knowledge regardless of
        # whether the handshake itself went stale: accept them first.
        # (A root-path partner stringifies as "<root>" and gossips
        # nothing, since candidates anchor to its path levels.)
        gossip = payload.get("gossip")
        partner_path = payload.get("partner_path", "")
        if gossip and partner_path and set(partner_path) <= {"0", "1"}:
            self._accept_gossip(Path.from_string(partner_path), gossip)
        inflight = self._inflight_exchange
        self._inflight_exchange = None
        # Optimistic concurrency: drop stale responses.
        if inflight is None or inflight[0] != payload.get("nonce"):
            return
        if str(self.path) != payload.get("expected_path", str(self.path)) and (
            self.path.length or payload.get("expected_path")
        ):
            return
        incoming = set(payload.get("keys", ()))
        action = payload["action"]
        if action == "split":
            self._apply_side(payload["your_side"], payload["level"], msg.src, incoming)
            self.idle_strikes = 0
        elif action == "decide":
            self._apply_side(
                payload["your_side"], payload["level"], payload["counterpart"], incoming
            )
            self.idle_strikes = 0
        elif action == "replicate":
            tombs = payload.get("tombstones")
            if tombs:
                # The partner's death certificates win over our content.
                self._note_tombstones(
                    k for k in tombs if self.responsible_for(k)
                )
                self.keys -= self.tombstones
            self._accept_keys(incoming)
            self.replicas |= set(payload.get("replicas", ())) - {self.node_id}
            if payload.get("useful"):
                self.idle_strikes = 0
            else:
                self.idle_strikes += 1
        elif action == "catch_up":
            mine = {k for k in incoming if self.responsible_for(k)}
            grew = bool(mine - self.keys)
            self.keys |= mine
            self.outbox |= incoming - mine
            self.idle_strikes = 0 if grew else self.idle_strikes + 1
        elif action == "again":
            self._accept_keys(incoming)
            self.idle_strikes = 0  # overloaded partition: keep trying
        elif action == "refer":
            self._accept_keys(incoming)
            level = payload["level"]
            if level < self.path.length:
                self.add_route(level, msg.src)
            recommend = payload.get("recommend")
            if recommend is not None and recommend != self.node_id:
                self._begin_exchange(recommend)
                return
            self.idle_strikes += 1
        else:  # noop (possibly a lagging-peer decision on the other side)
            self._accept_keys(incoming)
            if payload.get("useful"):
                self.idle_strikes = 0
            else:
                self.idle_strikes += 1

    def _accept_keys(self, incoming: Set[int]) -> None:
        mine = {k for k in incoming if self.responsible_for(k)}
        if self.tombstones:
            mine -= self.tombstones  # delete-wins: dead keys stay dead
        self.keys |= mine
        self.outbox |= incoming - mine - self.tombstones

    def _apply_side(
        self, side: int, level: int, counterpart: Optional[int], incoming: Set[int]
    ) -> None:
        """Extend the path by ``side`` at ``level`` (split or rules 3/4)."""
        if level != self.path.length:
            return  # stale directive
        self.path = self.path.extend(side)
        if counterpart is not None:
            self.add_route(level, counterpart)
        stay = {k for k in self.keys if bit_at(k, level) == side}
        leaving = self.keys - stay
        self.keys = stay
        self.outbox |= leaving
        self.replicas = set()
        self._shed_foreign_tombstones()
        self._accept_keys(incoming)

    def _take_side(self, side: int, counterpart: int) -> Set[int]:
        """Contacted half of a balanced split: extend own path, return the
        keys that belong to the other side (shipped to the initiator)."""
        level = self.path.length
        self.path = self.path.extend(side)
        self.add_route(level, counterpart)
        stay = {k for k in self.keys if bit_at(k, level) == side}
        leaving = self.keys - stay
        self.keys = stay
        self.replicas = set()
        self._shed_foreign_tombstones()
        return leaving

    # -- overload estimation (Sec. 4.2) -----------------------------------------

    def _overloaded(
        self, their_keys: Set[int], their_replicas: Set[int], union: Set[int], level: int
    ) -> bool:
        if level >= KEY_BITS - 1 or not self.keys or not their_keys:
            return False
        if len(union) <= self.config.d_max / 2.0:
            return False
        d_hat = estimate_partition_keys(self.keys, their_keys)
        if d_hat <= self.config.d_max:
            return False
        r_hat = estimate_replica_count(self.keys, their_keys, self.config.n_min)
        known = float(len(self.replicas | their_replicas | {self.node_id}) + 1)
        evidence = max(r_hat, known) if math.isfinite(r_hat) else r_hat
        return evidence >= 2 * self.config.n_min

    def _split_policy(
        self, their_keys: Set[int], their_replicas: Set[int], union: Set[int], level: int
    ):
        p_hat = estimate_split_fraction(union, level)
        minority = 0 if p_hat <= 0.5 else 1
        q = min(p_hat, 1.0 - p_hat)
        r_hat = estimate_replica_count(self.keys, their_keys, self.config.n_min)
        if math.isfinite(r_hat) and r_hat >= 2 * self.config.n_min:
            q = max(q, self.config.n_min / r_hat)
        m_eff = max(len(union), 1)
        q = min(max(q, 1.0 / (4.0 * m_eff)), 0.5)
        return decision_probabilities(q, m=m_eff), minority

    def initiate_exchange(self, partner: int) -> None:
        """Start one construction/anti-entropy exchange with ``partner``.

        Public entry point for external drivers (the message-level
        scenario backend's maintenance cadence); internally the same
        handshake the periodic interaction timer launches.
        """
        self._begin_exchange(partner)

    # -- queries --------------------------------------------------------------------

    def issue_query(self, key: int) -> int:
        """Originate an exact-match query for ``key``; returns its qid.

        The first attempt runs as a zero-delay simulator event, never
        re-entrantly inside this call: a query the origin can answer
        itself would otherwise complete -- and invoke the observer
        callbacks -- before the caller even learned its qid.

        With serving enabled, a fresh result-cache entry answers
        locally (zero wire traffic; audited via ``on_cache_hit``), and
        a lookup identical to one already in flight joins it as a
        waiter instead of issuing duplicate wire traffic.
        """
        self._query_seq += 1
        qid = (self.node_id << 20) | self._query_seq
        pending = _PendingQuery(key=key, issued_at=self.sim.now)
        self._queries[qid] = pending
        if self._serving is not None:
            present = self.result_cache.get(key, self.sim.now)
            if present is not None:
                self.serving_stats["result_hits"] += 1
                pending.cached = True
                pending.present = present
                if self.on_cache_hit is not None:
                    self.on_cache_hit(self.node_id, key, present)
                self.sim.schedule(
                    0.0, lambda: self._complete_query(qid, 0, True)
                )
                return qid
            self.serving_stats["result_misses"] += 1
            primary = self._inflight_by_key.get(key)
            if primary is not None and primary in self._queries:
                pending.shared = True
                self._waiters.setdefault(primary, []).append(qid)
                self.serving_stats["dedup_joined"] += 1
                return qid
            self._inflight_by_key[key] = qid
        self.sim.schedule(0.0, lambda: self._send_query_attempt(qid))
        return qid

    def _send_query_attempt(self, qid: int) -> None:
        pending = self._queries.get(qid)
        if pending is None or pending.done:
            return
        pending.attempts += 1
        pending.via = None  # evidence belongs to the attempt that used it
        pending.direct = None
        attempt = pending.attempts
        if self._serving is not None and attempt == 1:
            # First attempt may shortcut straight to a remembered
            # responder (rotating across the owner's advertised replica
            # set); a visible connect failure or a timeout falls back to
            # trie routing and drops the route entry.
            target = self.route_cache.pick(pending.key, self.sim.now)
            if target is not None and target != self.node_id:
                self.serving_stats["route_uses"] += 1
                pending.direct = target
                pending.via = target
                cause = self.send(
                    target,
                    P.QUERY,
                    {
                        "key": pending.key,
                        "origin": self.node_id,
                        "qid": qid,
                        "attempt": attempt,
                        "hops": 1,
                    },
                    category=P.QUERY_TRAFFIC,
                )
                if cause in (None, "loss", "offline"):
                    self._arm_query_timer(qid, pending)
                    return
                self.serving_stats["route_invalidations"] += 1
                self.route_cache.invalidate(pending.key)
                pending.direct = None
                pending.via = None
        self._route_query(
            {
                "key": pending.key,
                "origin": self.node_id,
                "qid": qid,
                "attempt": attempt,
                "hops": 0,
            }
        )
        # The deadline belongs to *this* attempt: a dead-end reply that
        # already triggered a retry re-armed the timer, so a stale
        # deadline never burns the retry budget against newer attempts.
        self._arm_query_timer(qid, pending)

    def _arm_query_timer(self, qid: int, pending: _PendingQuery) -> None:
        """(Re-)arm the pending query's lazy attempt timer.

        One :class:`DeadlineTimer` per pending operation replaces the
        schedule-per-attempt idiom: the heap holds at most one entry
        for the op's whole retry chain and never accumulates cancelled
        placeholders (see the ``engine`` module docstring).
        """
        timer = pending.timer
        if timer is None:
            timer = pending.timer = DeadlineTimer(
                self.sim, lambda: self._query_timeout(qid)
            )
        timer.arm(self.sim.now + self.config.query_timeout)

    def _finish_query(
        self,
        qid: int,
        pending: _PendingQuery,
        hops: int,
        success: bool,
        *,
        moot: bool = False,
    ) -> None:
        """Terminal bookkeeping shared by every point-query outcome."""
        pending.done = True
        pending.hops = hops
        if pending.timer is not None:
            pending.timer.disarm()
        self._queries.pop(qid, None)
        latency = self.sim.now - pending.issued_at
        if not moot:
            # Moot queries (origin went offline) are invisible to the
            # experiment-level success statistics, as before.
            self.query_results.append((pending.issued_at, latency, hops, success))
        if self.on_query_done is not None:
            self.on_query_done(
                self.node_id,
                qid,
                QueryOutcome(
                    issued_at=pending.issued_at,
                    latency=latency,
                    hops=hops,
                    success=success,
                    attempts=pending.attempts,
                    timeouts=pending.timeouts,
                    # A waiter shares the primary's wire traffic: its
                    # outcome reports the path length but zero messages,
                    # or the dedup would double-bill every shared hop.
                    messages=0 if pending.shared else hops + (1 if hops else 0),
                    moot=moot,
                ),
            )
        if self._serving is not None:
            if self._inflight_by_key.get(pending.key) == qid:
                del self._inflight_by_key[pending.key]
            waiters = self._waiters.pop(qid, None)
            if waiters:
                # Resolve every waiter exactly once with the primary's
                # outcome -- including the moot path, where the abort
                # loop's done-guard keeps them from resolving twice.
                for wqid in waiters:
                    wpending = self._queries.get(wqid)
                    if wpending is None or wpending.done:
                        continue
                    wpending.present = pending.present
                    self._finish_query(wqid, wpending, hops, success, moot=moot)

    def _query_timeout(self, qid: int) -> None:
        # No attempt guard needed: the lazy timer fires only when the
        # *current* deadline is reached -- every attempt re-arms it, and
        # a superseded deadline chases forward instead of firing.
        pending = self._queries.get(qid)
        if pending is None or pending.done:
            return
        pending.timeouts += 1
        if not self.online:
            # The origin itself went offline: the query is moot, not a
            # failure of the overlay (it could never receive the reply).
            self._finish_query(qid, pending, pending.hops, False, moot=True)
            return
        if pending.via is not None:
            # The attempt died somewhere past our first hop; that hop is
            # the only reference we used ourselves, so it takes the
            # suspicion (an innocent one answers the probe and is
            # cleared).
            self._suspect_ref(pending.via)
        if pending.direct is not None and self._serving is not None:
            # The remembered responder did not answer: routing evidence,
            # the one thing (besides TTL) that kills a route entry.
            self.serving_stats["route_invalidations"] += 1
            self.route_cache.invalidate(pending.key)
            pending.direct = None
        if pending.attempts <= self.config.query_retries:
            self._send_query_attempt(qid)
        else:
            self._finish_query(qid, pending, pending.hops, False)

    def _route_query(self, payload: dict) -> None:
        # Hot per-hop handler: payload fields are hoisted once, and the
        # forward is built as a fresh minimal dict (values shared by
        # reference) instead of a full ``dict(payload)`` copy -- each
        # hop owns its container, so mutating a forward can never
        # corrupt a sibling already on the wire.
        key = payload["key"]
        origin = payload["origin"]
        qid = payload["qid"]
        hops = payload["hops"]
        responsible = self.responsible_for(key)
        grant_present: Optional[bool] = None
        if not responsible and self._serving is not None:
            grant_present = self._grant_presence(key)
        if responsible or grant_present is not None:
            # Reaching an online responsible peer IS query success, the
            # same semantics as the data plane's LookupResult.found --
            # whether the key is stored is a data property, not a
            # routing outcome.  A grant helper answers for the owner's
            # range the same way (adaptive replication).
            reply = {"qid": qid, "hops": hops}
            if self._serving is not None:
                if responsible:
                    self._served_window += 1
                    reply["present"] = key in self.keys
                    # Advertise the current replica set so origin route
                    # caches rotate direct sends across it.
                    reply["targets"] = [self.node_id] + sorted(self._helpers)
                else:
                    self.serving_stats["grant_hits"] += 1
                    reply["present"] = grant_present
                    reply["targets"] = [self.node_id]
            if origin == self.node_id:
                self._complete_query(qid, hops, True, info=reply)
            else:
                self.send(origin, P.QUERY_HIT, reply, category=P.QUERY_TRAFFIC)
            return
        forward = {
            "key": key,
            "origin": origin,
            "qid": qid,
            "attempt": payload.get("attempt", 0),
            "hops": hops + 1,
        }
        used = self._forward_toward(key, P.QUERY, forward)
        if used is None:
            if origin != self.node_id:
                self.send(
                    origin,
                    P.QUERY_MISS,
                    {
                        "qid": qid,
                        "hops": hops,
                        "attempt": payload.get("attempt", 0),
                    },
                    category=P.QUERY_TRAFFIC,
                )
            else:
                # Dead end at the origin itself is locally observed:
                # retry or fail now instead of burning the timeout
                # window (the origin-side twin of the QUERY_MISS path;
                # ranges get this via their own stuck-slice handling).
                self._query_dead_end(qid, payload.get("attempt", 0))
            return
        if origin == self.node_id and hops == 0:
            # Remember the current attempt's first hop: a timeout is
            # failure evidence against it (the only reference the origin
            # knows the attempt used).
            pending = self._queries.get(qid)
            if pending is not None:
                pending.via = used

    def _on_query(self, msg: Message) -> None:
        self._route_query(msg.payload)

    def _on_query_hit(self, msg: Message) -> None:
        self._complete_query(
            msg.payload["qid"], msg.payload["hops"], True,
            info=msg.payload, responder=msg.src,
        )

    def _on_query_miss(self, msg: Message) -> None:
        # A dead-end report lets the origin retry sooner than the timeout.
        self._query_dead_end(msg.payload["qid"], msg.payload.get("attempt"))

    def _query_dead_end(self, qid: int, attempt: Optional[int]) -> None:
        """A routing dead end (remote miss or local no-route) for the
        current attempt: retry immediately or fail."""
        pending = self._queries.get(qid)
        if pending is None or pending.done:
            return
        if attempt is not None and attempt != pending.attempts:
            return  # dead end of a superseded attempt; a newer one is out
        if pending.attempts <= self.config.query_retries:
            self._send_query_attempt(qid)
        else:
            self._finish_query(qid, pending, pending.hops, False)

    def _complete_query(
        self,
        qid: int,
        hops: int,
        success: bool,
        info: Optional[dict] = None,
        responder: Optional[int] = None,
    ) -> None:
        pending = self._queries.get(qid)
        if pending is None or pending.done:
            return
        if (
            success
            and self._serving is not None
            and info is not None
            and "present" in info
        ):
            pending.present = info["present"]
            now = self.sim.now
            if not pending.cached:
                self.result_cache.put(pending.key, info["present"], now)
            if responder is not None:
                targets = [responder] + [
                    t for t in info.get("targets", ())
                    if t != self.node_id and t != responder
                ]
                self.route_cache.put(pending.key, targets, now)
        self._finish_query(qid, pending, hops, success)

    # -- writes (routed inserts/deletes with eager replica sync) -----------------
    #
    # A mutation routes to the responsible partition exactly like a point
    # query (same prefix routing, same attempt-bound timeout/retry and
    # liveness evidence), is applied at the first responsible node
    # reached, fanned out to its known replicas as ``replica_sync``
    # messages, and acknowledged to the origin.  Deletes tombstone the
    # key (delete-wins under anti-entropy; see pgrid.replication) so a
    # stale replica cannot resurrect it.  All write traffic is accounted
    # in its own category (``update_Bps`` in the Fig. 8 split).

    def issue_insert(self, key: int) -> int:
        """Originate an insert for ``key``; returns its write id."""
        return self._issue_write("insert", key)

    def issue_delete(self, key: int) -> int:
        """Originate a delete for ``key``; returns its write id."""
        return self._issue_write("delete", key)

    def _issue_write(self, op: str, key: int) -> int:
        self._query_seq += 1
        wid = (self.node_id << 20) | self._query_seq
        self._writes[wid] = _PendingWrite(op=op, key=key, issued_at=self.sim.now)
        # Zero-delay first attempt, for the same reason as issue_query.
        self.sim.schedule(0.0, lambda: self._send_write_attempt(wid))
        return wid

    def _send_write_attempt(self, wid: int) -> None:
        pending = self._writes.get(wid)
        if pending is None or pending.done:
            return
        pending.attempts += 1
        pending.via = None  # see _send_query_attempt
        attempt = pending.attempts
        self._route_write(
            {
                "op": pending.op,
                "key": pending.key,
                "origin": self.node_id,
                "qid": wid,
                "attempt": attempt,
                "hops": 0,
            }
        )
        # Lazy attempt timer, like _send_query_attempt.
        self._arm_write_timer(wid, pending)

    def _arm_write_timer(self, wid: int, pending: _PendingWrite) -> None:
        """(Re-)arm the pending write's lazy attempt timer (see
        :meth:`_arm_query_timer`)."""
        timer = pending.timer
        if timer is None:
            timer = pending.timer = DeadlineTimer(
                self.sim, lambda: self._write_timeout(wid)
            )
        timer.arm(self.sim.now + self.config.query_timeout)

    def _route_write(self, payload: dict) -> None:
        # Hot per-hop handler: hoisted fields + minimal fresh forward
        # dict, same scheme as _route_query.
        key = payload["key"]
        op = payload["op"]
        origin = payload["origin"]
        qid = payload["qid"]
        hops = payload["hops"]
        # Write traffic passing through (origin, forwarder or owner)
        # invalidates our cached result for the key: the cheapest
        # coherence signal the serving layer gets for free.
        self._serving_invalidate(key)
        if self.responsible_for(key):
            self.apply_mutation(op, key)
            self._sync_replicas(op, key)
            if origin == self.node_id:
                self._complete_write(qid, hops, True)
            else:
                self.send(
                    origin,
                    P.UPDATE_ACK,
                    {"qid": qid, "hops": hops},
                    category=P.UPDATE_TRAFFIC,
                )
            return
        forward = {
            "op": op,
            "key": key,
            "origin": origin,
            "qid": qid,
            "attempt": payload.get("attempt", 0),
            "hops": hops + 1,
        }
        kind = P.INSERT if op == "insert" else P.DELETE
        used = self._forward_toward(
            key, kind, forward, category=P.UPDATE_TRAFFIC, n_keys=1
        )
        if used is None:
            if origin != self.node_id:
                self.send(
                    origin,
                    P.UPDATE_MISS,
                    {
                        "qid": qid,
                        "hops": hops,
                        "attempt": payload.get("attempt", 0),
                    },
                    category=P.UPDATE_TRAFFIC,
                )
            else:
                self._write_dead_end(qid, payload.get("attempt", 0))
            return
        if origin == self.node_id and hops == 0:
            pending = self._writes.get(qid)
            if pending is not None:
                pending.via = used  # liveness evidence, like point queries

    def apply_mutation(self, op: str, key: int) -> None:
        """Apply one mutation to the local store (responsible keys only).

        An insert clears the key's tombstone (the insert is newer
        evidence than the delete that left it); a delete leaves one so
        union-style anti-entropy cannot resurrect the key.
        """
        self._serving_invalidate(key)
        if not self.responsible_for(key):
            return
        if op == "insert":
            self.keys.add(key)
            self.tombstones.discard(key)
            self._tombstone_born.pop(key, None)
        else:
            self.keys.discard(key)
            self._note_tombstones((key,))

    def _note_tombstones(self, keys) -> None:
        """Install death certificates, stamping only the *new* ones."""
        now = self.sim.now
        for key in keys:
            if key not in self.tombstones:
                self.tombstones.add(key)
                self._tombstone_born[key] = now

    def _prune_tombstones(self) -> None:
        """Expire tombstones past their TTL (called where they ship).

        Keeps the per-exchange certificate payload bounded by recent
        delete activity instead of growing with every delete ever made.
        """
        if not self.tombstones:
            return
        ttl = self.config.tombstone_ttl_s
        horizon = self.sim.now - ttl
        expired = [
            key for key in self.tombstones
            if self._tombstone_born.get(key, 0.0) <= horizon
        ]
        for key in expired:
            self.tombstones.discard(key)
            self._tombstone_born.pop(key, None)

    def _sync_replicas(self, op: str, key: int) -> None:
        """Eagerly fan a just-applied mutation out to known replicas.

        Offline or partitioned replicas refuse the connect and simply
        miss the write -- they converge later through anti-entropy
        exchanges (that lag is the measurable replica divergence).
        """
        for rid in sorted(self.replicas):
            if rid != self.node_id:
                self.send(
                    rid,
                    P.REPLICA_SYNC,
                    {"op": op, "keys": [key]},
                    n_keys=1,
                    category=P.UPDATE_TRAFFIC,
                )
        if self._serving is not None and self._helpers:
            # Grant helpers serve our range, so they join the eager
            # fan-out -- grants stay write-coherent, not just TTL-fresh.
            for hid in sorted(self._helpers):
                if hid != self.node_id and hid not in self.replicas:
                    self.send(
                        hid,
                        P.REPLICA_SYNC,
                        {"op": op, "keys": [key]},
                        n_keys=1,
                        category=P.UPDATE_TRAFFIC,
                    )

    def _on_replica_sync(self, msg: Message) -> None:
        op = msg.payload["op"]
        for key in msg.payload["keys"]:
            self.apply_mutation(op, key)
            if self._serving is not None:
                for entry in self._grants.values():
                    if entry[0].contains_key(key, KEY_BITS):
                        if op == "insert":
                            entry[1].add(key)
                        else:
                            entry[1].discard(key)

    def _on_insert(self, msg: Message) -> None:
        self._route_write(msg.payload)

    def _on_delete(self, msg: Message) -> None:
        self._route_write(msg.payload)

    # -- query-serving front end (pgrid.serving) -----------------------------
    #
    # Result caches invalidate on every write signal a node observes
    # (routing a mutation, applying one, hearing a replica sync); route
    # caches invalidate only on routing evidence.  Adaptive replication
    # is owner-driven: the per-window served-query counter crosses
    # ``hot_threshold`` -> grant the range to routing-table neighbours,
    # decays below it -> revoke.  ``serving_tick`` is driven by the
    # scenario runner at the policy's ``decay_interval_s`` cadence.

    def _serving_invalidate(self, key: int) -> None:
        if self._serving is None:
            return
        if self.result_cache.invalidate(key):
            self.serving_stats["invalidations"] += 1

    def _grant_presence(self, key: int) -> Optional[bool]:
        """Presence flag if a live grant covers ``key``, else None."""
        if not self._grants:
            return None
        now = self.sim.now
        for pstr in list(self._grants):
            path, keys, expires = self._grants[pstr]
            if now >= expires:
                del self._grants[pstr]
                continue
            if path.contains_key(key, KEY_BITS):
                return key in keys
        return None

    def _grant_candidates(self) -> List[int]:
        """Helper candidates, deepest routing levels first (closest in
        the trie, so grant traffic stays local), live-believed only."""
        out: List[int] = []
        seen = {self.node_id}
        for level in sorted(self.routing, reverse=True):
            for ref in self.routing[level]:
                if ref in seen or self.liveness.suspected(ref):
                    continue
                seen.add(ref)
                out.append(ref)
        return out

    def serving_tick(self) -> None:
        """One decay-window boundary: examine the served-query counter
        and grant/revoke helper replicas accordingly."""
        sv = self._serving
        if sv is None or not sv.adaptive_replication:
            return
        load = self._served_window
        self._served_window = 0
        if not self.online:
            return
        now = self.sim.now
        if load >= sv.hot_threshold and self.path.length > 0:
            keys = sorted(self.keys)
            for cand in self._grant_candidates():
                if len(self._helpers) >= sv.replica_boost:
                    break
                if cand in self._helpers:
                    continue
                cause = self.send(
                    cand,
                    P.REPLICA_GRANT,
                    {
                        "path": self.path,
                        "keys": keys,
                        "expires": now + sv.grant_ttl_s,
                    },
                    n_keys=len(keys),
                    category=P.UPDATE_TRAFFIC,
                )
                if cause in (None, "loss", "offline"):
                    self._helpers[cand] = now
                    self.serving_stats["grants"] += 1
        elif self._helpers:
            for hid in sorted(self._helpers):
                self.send(
                    hid,
                    P.REPLICA_REVOKE,
                    {"path": self.path},
                    category=P.UPDATE_TRAFFIC,
                )
                self.serving_stats["revokes"] += 1
            self._helpers.clear()

    def _on_replica_grant(self, msg: Message) -> None:
        if self._serving is None:
            return
        payload = msg.payload
        self._grants[str(payload["path"])] = [
            payload["path"],
            set(payload["keys"]),
            payload["expires"],
        ]

    def _on_replica_revoke(self, msg: Message) -> None:
        if self._serving is None:
            return
        self._grants.pop(str(msg.payload["path"]), None)

    def _on_update_ack(self, msg: Message) -> None:
        self._complete_write(msg.payload["qid"], msg.payload["hops"], True)

    def _on_update_miss(self, msg: Message) -> None:
        self._write_dead_end(msg.payload["qid"], msg.payload.get("attempt"))

    def _write_dead_end(self, wid: int, attempt: Optional[int]) -> None:
        pending = self._writes.get(wid)
        if pending is None or pending.done:
            return
        if attempt is not None and attempt != pending.attempts:
            return  # dead end of a superseded attempt; a newer one is out
        if pending.attempts <= self.config.query_retries:
            self._send_write_attempt(wid)
        else:
            self._finish_write(wid, pending, pending.hops, False)

    def _write_timeout(self, wid: int) -> None:
        # Lazy timer: fires only at the current attempt's deadline (see
        # _query_timeout).
        pending = self._writes.get(wid)
        if pending is None or pending.done:
            return
        pending.timeouts += 1
        if not self.online:
            # The origin itself went offline mid-write: moot, like a
            # query whose reply could never be heard.  (The mutation may
            # still have been applied at the owner -- at-least-once
            # semantics, like any retried write protocol.)
            self._finish_write(wid, pending, pending.hops, False, moot=True)
            return
        if pending.via is not None:
            self._suspect_ref(pending.via)  # see _query_timeout
        if pending.attempts <= self.config.query_retries:
            self._send_write_attempt(wid)
        else:
            self._finish_write(wid, pending, pending.hops, False)

    def _complete_write(self, wid: int, hops: int, success: bool) -> None:
        pending = self._writes.get(wid)
        if pending is None or pending.done:
            return
        self._finish_write(wid, pending, hops, success)

    def _finish_write(
        self,
        wid: int,
        pending: _PendingWrite,
        hops: int,
        success: bool,
        *,
        moot: bool = False,
    ) -> None:
        pending.done = True
        if pending.timer is not None:
            pending.timer.disarm()
        self._writes.pop(wid, None)
        outcome = QueryOutcome(
            issued_at=pending.issued_at,
            latency=self.sim.now - pending.issued_at,
            hops=hops,
            success=success,
            attempts=pending.attempts,
            timeouts=pending.timeouts,
            messages=hops + (1 if hops else 0),
            moot=moot,
        )
        if not moot:
            self.write_results.append(outcome)
        if self.on_write_done is not None:
            self.on_write_done(self.node_id, wid, outcome)

    # -- range queries (sequential key-order traversal, Sec. 2.3) ---------------

    def issue_range_query(self, lo: int, hi: int) -> int:
        """Originate a range query over ``[lo, hi)``; returns its qid.

        Implements the *sequential* range algorithm over the trie: the
        query routes to the partition containing ``lo``; each
        responsible node ships its slice of the range back to the
        origin (``range_part``) and forwards the remainder to the next
        partition in key order, until a slice arrives flagged ``done``.
        Each slice carries its interval bounds, and the origin accepts
        ``done`` only when the current attempt's slices cover the whole
        of ``[lo, hi)`` -- a result slice lost on the wire triggers a
        retry instead of a silently incomplete "success".  Dead ends
        (``stuck``) and timeouts trigger whole-range retries too; the
        origin de-duplicates keys across attempts.
        """
        self._query_seq += 1
        qid = (self.node_id << 20) | self._query_seq
        self._ranges[qid] = _PendingRange(lo=lo, hi=hi, issued_at=self.sim.now)
        # Zero-delay first attempt, for the same reason as issue_query.
        self.sim.schedule(0.0, lambda: self._send_range_attempt(qid))
        return qid

    def _send_range_attempt(self, qid: int) -> None:
        pending = self._ranges.get(qid)
        if pending is None or pending.done:
            return
        pending.attempts += 1
        pending.via = None  # see _send_query_attempt
        attempt = pending.attempts
        self._route_range(
            {
                "lo": pending.lo,
                "hi": pending.hi,
                "cursor": pending.lo,
                "origin": self.node_id,
                "qid": qid,
                "attempt": attempt,
                "hops": 0,
            }
        )
        # Lazy attempt timer, like _send_query_attempt.
        self._arm_range_timer(qid, pending)

    def _arm_range_timer(self, qid: int, pending: _PendingRange) -> None:
        """(Re-)arm the pending range query's lazy attempt timer (see
        :meth:`_arm_query_timer`)."""
        timer = pending.timer
        if timer is None:
            timer = pending.timer = DeadlineTimer(
                self.sim, lambda: self._range_timeout(qid)
            )
        timer.arm(self.sim.now + self.config.query_timeout)

    def _route_range(self, payload: dict) -> None:
        # Hot per-hop handler: hoisted fields + minimal fresh forward
        # dicts, same scheme as _route_query.  The stuck paths build
        # the RANGE_PART from the *incoming* payload, so the forward
        # must never alias or mutate it.
        cursor = payload["cursor"]
        origin = payload["origin"]
        hops = payload["hops"]
        if not self.responsible_for(cursor):
            forward = {
                "lo": payload["lo"],
                "hi": payload["hi"],
                "cursor": cursor,
                "origin": origin,
                "qid": payload["qid"],
                "attempt": payload.get("attempt", 0),
                "hops": hops + 1,
            }
            used = self._forward_toward(cursor, P.RANGE_QUERY, forward)
            if used is None:
                self._send_range_part(origin, payload, keys=[], done=False, stuck=True)
                return
            if origin == self.node_id and hops == 0:
                pending = self._ranges.get(payload["qid"])
                if pending is not None:
                    pending.via = used  # liveness evidence, like point queries
            return
        # Responsible for the cursor: ship this partition's slice home,
        # then forward the remainder to the next partition in key order.
        part_hi = self.path.key_range(KEY_BITS)[1]
        hi = payload["hi"]
        upper = min(hi, part_hi)
        matches = sorted(k for k in self.keys if cursor <= k < upper)
        done = part_hi >= hi
        self._send_range_part(
            origin, payload, keys=matches, done=done, stuck=False,
            slice_bounds=(cursor, upper),
        )
        if not done:
            forward = {
                "lo": payload["lo"],
                "hi": hi,
                "cursor": part_hi,
                "origin": origin,
                "qid": payload["qid"],
                "attempt": payload.get("attempt", 0),
                "hops": payload["hops"] + 1,
            }
            if self._forward_toward(part_hi, P.RANGE_QUERY, forward) is None:
                self._send_range_part(origin, payload, keys=[], done=False, stuck=True)

    def _send_range_part(
        self,
        origin: int,
        payload: dict,
        *,
        keys: List[int],
        done: bool,
        stuck: bool,
        slice_bounds: Optional[tuple] = None,
    ) -> None:
        part = {
            "qid": payload["qid"],
            "keys": keys,
            "done": done,
            "stuck": stuck,
            "attempt": payload.get("attempt", 0),
            "hops": payload["hops"],
            "slice": slice_bounds,
        }
        if origin == self.node_id:
            self._absorb_range_part(part)
        else:
            self.send(
                origin, P.RANGE_PART, part, n_keys=len(keys), category=P.QUERY_TRAFFIC
            )

    def _on_range_query(self, msg: Message) -> None:
        self._route_range(msg.payload)

    def _on_range_part(self, msg: Message) -> None:
        self._absorb_range_part(msg.payload)

    def _absorb_range_part(self, payload: dict) -> None:
        qid = payload["qid"]
        pending = self._ranges.get(qid)
        if pending is None or pending.done:
            return
        # Result slices are welcome from any attempt (keys deduplicate
        # and every attempt restarts from lo, so each slice is genuine
        # coverage evidence); only retry *control* is attempt-gated.
        pending.parts += 1
        pending.keys.update(payload["keys"])
        if payload["hops"] > pending.chain_hops:
            pending.chain_hops = payload["hops"]
        if payload.get("slice") is not None:
            pending.covered.append(tuple(payload["slice"]))
        current = payload.get("attempt", pending.attempts) == pending.attempts
        if payload["done"]:
            if _intervals_cover(pending.covered, pending.lo, pending.hi):
                self._finish_range(qid, pending, True)
            elif current:
                # The chain finished but a result slice was lost on the
                # wire: an incomplete answer is a retry, not a success.
                self._retry_or_fail_range(qid, pending)
            # A stale done with a coverage gap proves nothing about the
            # current attempt; let the live attempt decide.
        elif payload["stuck"]:
            if not current:
                return  # dead end of a superseded attempt
            # Dead end mid-traversal: retry early, like a query miss.
            self._retry_or_fail_range(qid, pending)

    def _retry_or_fail_range(self, qid: int, pending: _PendingRange) -> None:
        if pending.attempts <= self.config.query_retries:
            self._send_range_attempt(qid)
        else:
            self._finish_range(qid, pending, False)

    def _range_timeout(self, qid: int) -> None:
        # Lazy timer: fires only at the current attempt's deadline (see
        # _query_timeout).
        pending = self._ranges.get(qid)
        if pending is None or pending.done:
            return
        pending.timeouts += 1
        if not self.online:
            self._finish_range(qid, pending, False, moot=True)
            return
        if pending.via is not None:
            self._suspect_ref(pending.via)  # see _query_timeout
        if pending.attempts <= self.config.query_retries:
            self._send_range_attempt(qid)
        else:
            self._finish_range(qid, pending, False)

    def _finish_range(
        self, qid: int, pending: _PendingRange, success: bool, *, moot: bool = False
    ) -> None:
        pending.done = True
        if pending.timer is not None:
            pending.timer.disarm()
        self._ranges.pop(qid, None)
        outcome = QueryOutcome(
            issued_at=pending.issued_at,
            latency=self.sim.now - pending.issued_at,
            hops=pending.chain_hops,
            success=success,
            attempts=pending.attempts,
            timeouts=pending.timeouts,
            messages=pending.parts + pending.chain_hops,
            keys_found=len(pending.keys),
            moot=moot,
            found_keys=tuple(sorted(pending.keys)),
        )
        if not moot:
            self.range_results.append(outcome)
        if self.on_range_done is not None:
            self.on_range_done(self.node_id, qid, outcome)

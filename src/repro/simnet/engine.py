"""Discrete-event simulation core.

A minimal, fast event loop: events are ``(time, seq, callback)`` triples
in a binary heap; ``seq`` breaks ties deterministically so simulations
are exactly reproducible given a seed.  Time is a float in *seconds* of
simulated wall-clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..exceptions import SimulationError

__all__ = ["Simulator"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Owning shard under a sharded kernel (:mod:`repro.simnet.shard`);
    #: the single-heap simulator stores but ignores it.
    shard: int = field(default=0, compare=False)


class Simulator:
    """The simulated clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("five seconds in"))
        sim.run_until(60.0)
    """

    def __init__(self):
        self._queue: List[_Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._pending_peak = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders).

        Bounded: cancelled placeholders never exceed half the queue --
        :meth:`cancel` compacts the heap beyond that ratio, so workloads
        that schedule-and-cancel heavily (timeout patterns under churn)
        cannot grow the heap without bound.
        """
        return len(self._queue)

    @property
    def pending_live(self) -> int:
        """Queued events that will actually run (placeholders excluded)."""
        return len(self._queue) - self._cancelled

    @property
    def pending_cancelled(self) -> int:
        """Cancelled placeholders still sitting in the heap."""
        return self._cancelled

    @property
    def pending_peak(self) -> int:
        """High-water mark of :attr:`pending` over the run.

        The scale benchmarks assert this stays proportional to the
        population instead of guessing at heap health from the outside.
        """
        return self._pending_peak

    @property
    def compactions(self) -> int:
        """How many times the heap was compacted (see :meth:`cancel`)."""
        return self._compactions

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        shard: Optional[int] = None,
    ) -> _Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns a handle whose ``cancelled`` attribute can be set through
        :meth:`cancel`.  Negative delays are rejected -- the simulator
        never travels back in time.  ``shard`` names the event's owning
        shard under a sharded kernel; the single-heap simulator accepts
        and records it (so callers can be shard-annotated unconditionally)
        but execution ignores it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(
            time=self._now + delay, seq=self._seq, callback=callback,
            shard=self._resolve_shard(shard),
        )
        self._seq += 1
        self._push(event)
        return event

    def _resolve_shard(self, shard: Optional[int]) -> int:
        """Map an optional shard tag to the event's owning shard (the
        sharded kernel defaults to the currently executing shard)."""
        return 0 if shard is None else shard

    def _push(self, event: _Event) -> None:
        """Enqueue one event (the sharded kernel reroutes this)."""
        heapq.heappush(self._queue, event)
        if len(self._queue) > self._pending_peak:
            self._pending_peak = len(self._queue)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        shard: Optional[int] = None,
    ) -> _Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, shard=shard)

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event.

        The placeholder stays in the heap (an O(n) removal per cancel
        would make cancel-heavy workloads quadratic) and is skipped when
        popped; once cancelled placeholders exceed half the queue the
        heap is compacted in one O(n) pass, keeping :attr:`pending`
        proportional to the number of *live* events.
        """
        if not event.cancelled:
            event.cancelled = True
            self._cancelled += 1
            pending = self.pending
            if self._cancelled * 2 > pending and pending > 8:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled placeholders and re-heapify the live events."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._compactions += 1

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        """Run events in order until the clock passes ``end_time``.

        ``max_events`` guards against runaway event storms in tests.
        """
        budget = max_events if max_events is not None else float("inf")
        while self._queue and budget > 0:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._cancelled -= 1
                continue
            if head.time > end_time:
                break
            self.step()
            budget -= 1
        if budget <= 0:
            raise SimulationError(
                f"event budget exhausted at t={self._now:.1f}s "
                f"({self._processed} events processed)"
            )
        self._now = max(self._now, end_time)

    def run_all(self, *, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        budget = max_events
        while self.step():
            budget -= 1
            if budget <= 0:
                raise SimulationError("event budget exhausted in run_all")

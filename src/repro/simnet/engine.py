"""Discrete-event simulation core: the kernel fast-path contract.

A minimal, fast event loop.  Time is a float in *seconds* of simulated
wall-clock.  This docstring is the **fast-path contract** -- the
invariants every handler, transport and scenario runner must preserve
so that report digests stay byte-identical across kernel changes.

Event layout
------------
The heap holds ``(time, seq, event)`` tuples, where ``event`` is a
``__slots__`` :class:`_Event` handle.  ``seq`` is a single global
counter assigned at schedule time, so

* heap comparisons are pure C tuple comparisons that never reach the
  event object (``seq`` is unique -- no tie can fall through to it);
* ties at equal ``time`` break by schedule order, deterministically.

Execution order is therefore exactly global ``(time, seq)`` order --
the same contract the sharded kernel (:mod:`repro.simnet.shard`)
preserves across per-shard heaps and staging inboxes.

Lazy deadline timers
--------------------
Timeout/retry patterns (query, write, range attempts in
:mod:`repro.simnet.node`) must **not** schedule one heap entry per
attempt and cancel or abandon the stale ones: that grows the heap with
placeholders that live a full timeout window.  Instead they keep one
:class:`DeadlineTimer` per pending operation:

* every attempt *re-arms* the same timer with its new absolute
  deadline (``arm`` stores the deadline; at most one heap entry is
  ever outstanding per timer);
* when the underlying event fires early -- the deadline has since
  moved -- the timer silently reschedules itself at the current
  deadline (via :meth:`Simulator.schedule_at`, which places events at
  the **exact** absolute float, so the eventual firing time is
  bit-identical to scheduling at attempt time);
* a disarmed timer (operation completed) fires into a no-op.

Timers draw no randomness, so arming/rescheduling them never perturbs
any RNG stream.

What keeps digests stable
-------------------------
Handlers may be added, removed or reordered *in source*, but a change
is digest-neutral only if it preserves, for every event that survives
it:

1. **relative schedule order** -- ``seq`` is monotonic in schedule
   order; removing events (e.g. replacing per-attempt timers with one
   lazy timer) keeps the relative order of all remaining events, while
   *reordering* two ``schedule`` calls can swap same-time execution;
2. **exact event times** -- times must be computed by the same float
   expressions (never algebraically rearranged); absolute deadlines go
   through :meth:`Simulator.schedule_at` verbatim;
3. **RNG draw order** -- every stream must see the same draws in the
   same sequence; draws may not move across an event boundary or
   behind a data-dependent branch that can flip.

``tests/data/regen_message_digests.py --check`` verifies all three
empirically against the committed digests and golden traces.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..exceptions import SimulationError

__all__ = ["Simulator", "DeadlineTimer"]


class _Event:
    """Schedule handle: lean ``__slots__`` layout, no ordering methods
    (the heap orders ``(time, seq, event)`` tuples and never compares
    events)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "shard")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], shard: int):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Owning shard under a sharded kernel (:mod:`repro.simnet.shard`);
        #: the single-heap simulator stores but ignores it.
        self.shard = shard


#: Heap entry: ``(time, seq, event)``.
_Entry = Tuple[float, int, _Event]


class Simulator:
    """The simulated clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("five seconds in"))
        sim.run_until(60.0)
    """

    def __init__(self):
        self._queue: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._pending_peak = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders).

        Bounded: cancelled placeholders never exceed half the queue --
        :meth:`cancel` compacts the heap beyond that ratio, so workloads
        that schedule-and-cancel heavily (timeout patterns under churn)
        cannot grow the heap without bound.
        """
        return len(self._queue)

    @property
    def pending_live(self) -> int:
        """Queued events that will actually run (placeholders excluded)."""
        return len(self._queue) - self._cancelled

    @property
    def pending_cancelled(self) -> int:
        """Cancelled placeholders still sitting in the heap."""
        return self._cancelled

    @property
    def pending_peak(self) -> int:
        """High-water mark of :attr:`pending` over the run.

        The scale benchmarks assert this stays proportional to the
        population instead of guessing at heap health from the outside.
        """
        return self._pending_peak

    @property
    def compactions(self) -> int:
        """How many times the heap was compacted (see :meth:`cancel`)."""
        return self._compactions

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        shard: Optional[int] = None,
    ) -> _Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns a handle whose ``cancelled`` attribute can be set through
        :meth:`cancel`.  Negative delays are rejected -- the simulator
        never travels back in time.  ``shard`` names the event's owning
        shard under a sharded kernel; the single-heap simulator accepts
        and records it (so callers can be shard-annotated unconditionally)
        but execution ignores it.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = _Event(self._now + delay, seq, callback, self._resolve_shard(shard))
        self._push(event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        shard: Optional[int] = None,
    ) -> _Event:
        """Schedule ``callback`` at an **exact** absolute simulated time.

        The event's time is ``time`` itself, not ``now + (time - now)``
        -- the distinction matters to :class:`DeadlineTimer`, whose
        rescheduled firings must land on the bit-identical float the
        deadline was computed as.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = _Event(time, seq, callback, self._resolve_shard(shard))
        self._push(event)
        return event

    def _resolve_shard(self, shard: Optional[int]) -> int:
        """Map an optional shard tag to the event's owning shard (the
        sharded kernel defaults to the currently executing shard)."""
        return 0 if shard is None else shard

    def _push(self, event: _Event) -> None:
        """Enqueue one event (the sharded kernel reroutes this)."""
        queue = self._queue
        heapq.heappush(queue, (event.time, event.seq, event))
        if len(queue) > self._pending_peak:
            self._pending_peak = len(queue)

    def cancel(self, event: _Event) -> None:
        """Cancel a scheduled event.

        The placeholder stays in the heap (an O(n) removal per cancel
        would make cancel-heavy workloads quadratic) and is skipped when
        popped; once cancelled placeholders exceed half the queue the
        heap is compacted in one O(n) pass, keeping :attr:`pending`
        proportional to the number of *live* events.
        """
        if not event.cancelled:
            event.cancelled = True
            self._cancelled += 1
            pending = self.pending
            if self._cancelled * 2 > pending and pending > 8:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled placeholders and re-heapify the live events."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._compactions += 1

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            event.callback()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        """Run events in order until the clock passes ``end_time``.

        ``max_events`` guards against runaway event storms in tests.
        """
        budget = max_events if max_events is not None else float("inf")
        queue = self._queue
        pop = heapq.heappop
        while queue and budget > 0:
            head = queue[0]
            event = head[2]
            if event.cancelled:
                pop(queue)
                self._cancelled -= 1
                continue
            if head[0] > end_time:
                break
            pop(queue)
            self._now = head[0]
            event.callback()
            self._processed += 1
            budget -= 1
        if budget <= 0:
            raise SimulationError(
                f"event budget exhausted at t={self._now:.1f}s "
                f"({self._processed} events processed)"
            )
        self._now = max(self._now, end_time)

    def run_all(self, *, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        budget = max_events
        while self.step():
            budget -= 1
            if budget <= 0:
                raise SimulationError("event budget exhausted in run_all")


class DeadlineTimer:
    """One lazy, re-armable deadline (see the module docstring).

    Replaces the schedule-per-attempt/cancel-or-abandon timeout idiom:
    the owner keeps one timer per pending operation, re-arms it with
    each attempt's absolute deadline, and disarms it on completion.  At
    most one heap entry is outstanding per timer, and the heap never
    accumulates cancelled placeholders on these paths.

    The callback runs only when the *current* deadline is reached; an
    event that fires after the deadline moved reschedules itself at the
    exact stored float (digest-stable, see :meth:`Simulator.schedule_at`)
    and a disarmed timer's event fires into a no-op.
    """

    __slots__ = ("_sim", "_callback", "_deadline", "_scheduled")

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._deadline: Optional[float] = None
        self._scheduled = False

    @property
    def armed(self) -> bool:
        """True while a deadline is set (the callback will eventually run)."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """The current absolute deadline, or ``None`` when disarmed."""
        return self._deadline

    def arm(self, deadline: float) -> None:
        """Set (or move) the absolute deadline.

        Scheduling happens at most once per outstanding event: moving
        the deadline only stores the new float -- the in-flight event
        reschedules itself when it fires early.  Deadlines may only
        move forward (a retry's deadline is always later than the
        attempt it supersedes).
        """
        self._deadline = deadline
        if not self._scheduled:
            self._scheduled = True
            self._sim.schedule_at(deadline, self._fire)

    def disarm(self) -> None:
        """Void the timer: the outstanding event (if any) will no-op."""
        self._deadline = None

    def _fire(self) -> None:
        self._scheduled = False
        deadline = self._deadline
        if deadline is None:
            return  # disarmed: the operation completed
        if deadline > self._sim.now:
            # Superseded: the deadline moved while this event was in
            # flight.  Chase it at the exact stored float.
            self._scheduled = True
            self._sim.schedule_at(deadline, self._fire)
            return
        self._deadline = None
        self._callback()

"""Wire protocol constants for the simulated P-Grid deployment.

Message kinds, phase names and default protocol timers live here so the
node implementation and the tests share one vocabulary.
"""

from __future__ import annotations

__all__ = [
    "JOIN",
    "NEIGHBORS",
    "WALK",
    "WALK_RESULT",
    "STORE",
    "EXCHANGE_REQ",
    "EXCHANGE_RESP",
    "QUERY",
    "QUERY_HIT",
    "QUERY_MISS",
    "RANGE_QUERY",
    "RANGE_PART",
    "INSERT",
    "DELETE",
    "UPDATE_ACK",
    "UPDATE_MISS",
    "REPLICA_SYNC",
    "REPLICA_GRANT",
    "REPLICA_REVOKE",
    "PING",
    "PONG",
    "VOTE_REQ",
    "VOTE_RESP",
    "MAINTENANCE",
    "QUERY_TRAFFIC",
    "UPDATE_TRAFFIC",
]

# -- message kinds ---------------------------------------------------------

JOIN = "join"  #: newcomer -> bootstrap: request neighbors
NEIGHBORS = "neighbors"  #: bootstrap -> newcomer: unstructured-overlay links
WALK = "walk"  #: random-walk step (uniform peer sampling)
WALK_RESULT = "walk_result"  #: walk terminal -> origin: sampled peer id
STORE = "store"  #: replication-phase key copy
EXCHANGE_REQ = "exchange_req"  #: construction interaction request
EXCHANGE_RESP = "exchange_resp"  #: construction interaction response
QUERY = "query"  #: exact-match query being routed
QUERY_HIT = "query_hit"  #: responsible peer -> origin
QUERY_MISS = "query_miss"  #: routing dead-end -> origin
RANGE_QUERY = "range_query"  #: range query traversing partitions in key order
RANGE_PART = "range_part"  #: partition result slice -> origin (``done``/``stuck``)
INSERT = "insert"  #: key insert being routed to the responsible partition
DELETE = "delete"  #: key delete being routed (tombstoned at the owner)
UPDATE_ACK = "update_ack"  #: responsible peer -> origin: mutation applied
UPDATE_MISS = "update_miss"  #: routing dead-end -> origin (mutation retries)
REPLICA_SYNC = "replica_sync"  #: owner -> replicas: eager mutation fan-out
REPLICA_GRANT = "replica_grant"  #: hot owner -> helper: serve my range (adaptive replication)
REPLICA_REVOKE = "replica_revoke"  #: owner -> helper: load decayed, stop serving
PING = "ping"  #: liveness probe of a suspect routing reference
PONG = "pong"  #: probe answer (proof of life)
VOTE_REQ = "vote_req"  #: index-initiation vote flood (Sec. 4.1)
VOTE_RESP = "vote_resp"  #: aggregated vote reply

# -- traffic categories (Fig. 8 split, plus the write path) -------------------

MAINTENANCE = "maintenance"
QUERY_TRAFFIC = "queries"
UPDATE_TRAFFIC = "updates"

"""Churn: peers leave and rejoin on a renewal process (Sec. 5.1).

The paper's final experiment phase has "each peer independently decide to
go offline 1-5 minutes every 5-10 minutes", producing considerable churn
the overlay must absorb.  :class:`ChurnProcess` reproduces exactly that
schedule on the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .._util import RngLike, make_rng
from ..exceptions import SimulationError
from .engine import Simulator

__all__ = ["ChurnProcess"]


@dataclass
class ChurnConfig:
    """Churn timing parameters, in seconds (paper defaults in minutes)."""

    min_offline: float = 60.0
    max_offline: float = 300.0
    min_online: float = 300.0
    max_online: float = 600.0

    def validate(self) -> None:
        if not 0 < self.min_offline <= self.max_offline:
            raise SimulationError("invalid offline interval")
        if not 0 < self.min_online <= self.max_online:
            raise SimulationError("invalid online interval")


class ChurnProcess:
    """Drives one node's on/off availability.

    ``set_online`` is called with True/False at each transition; the
    process starts in the online state and alternates uniformly sampled
    online/offline periods until ``stop()`` or ``until`` is reached.
    """

    def __init__(
        self,
        sim: Simulator,
        set_online: Callable[[bool], None],
        *,
        config: Optional[ChurnConfig] = None,
        until: Optional[float] = None,
        rng: RngLike = None,
    ):
        self.sim = sim
        self.set_online = set_online
        self.config = config or ChurnConfig()
        self.config.validate()
        self.until = until
        self.rng = make_rng(rng)
        self.active = False
        self.transitions = 0

    def start(self) -> None:
        """Begin alternating periods (first transition after one online
        period)."""
        self.active = True
        self._schedule_offline()

    def stop(self) -> None:
        """Stop scheduling further transitions (node stays as-is)."""
        self.active = False

    def _expired(self) -> bool:
        return self.until is not None and self.sim.now >= self.until

    def _schedule_offline(self) -> None:
        delay = self.rng.uniform(self.config.min_online, self.config.max_online)
        self.sim.schedule(delay, self._go_offline)

    def _go_offline(self) -> None:
        if not self.active or self._expired():
            return
        self.set_online(False)
        self.transitions += 1
        delay = self.rng.uniform(self.config.min_offline, self.config.max_offline)
        self.sim.schedule(delay, self._go_online)

    def _go_online(self) -> None:
        if not self.active:
            return
        self.set_online(True)
        self.transitions += 1
        if not self._expired():
            self._schedule_offline()

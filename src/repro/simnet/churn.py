"""Churn: peers leave and rejoin on a renewal process (Sec. 5.1).

The paper's final experiment phase has "each peer independently decide to
go offline 1-5 minutes every 5-10 minutes", producing considerable churn
the overlay must absorb.  :class:`ChurnProcess` reproduces exactly that
schedule on the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from .._util import RngLike, make_rng
from ..exceptions import SimulationError
from .engine import Simulator

__all__ = ["ChurnConfig", "ChurnProcess", "start_churn"]


@dataclass
class ChurnConfig:
    """Churn timing parameters, in seconds (paper defaults in minutes)."""

    min_offline: float = 60.0
    max_offline: float = 300.0
    min_online: float = 300.0
    max_online: float = 600.0

    @classmethod
    def from_minutes(
        cls,
        min_offline: float = 1.0,
        max_offline: float = 5.0,
        min_online: float = 5.0,
        max_online: float = 10.0,
    ) -> "ChurnConfig":
        """The paper's schedule expressed in minutes (Sec. 5.1 defaults:
        "offline 1-5 minutes every 5-10 minutes")."""
        return cls(
            min_offline=min_offline * 60.0,
            max_offline=max_offline * 60.0,
            min_online=min_online * 60.0,
            max_online=max_online * 60.0,
        )

    def validate(self) -> None:
        if not 0 < self.min_offline <= self.max_offline:
            raise SimulationError("invalid offline interval")
        if not 0 < self.min_online <= self.max_online:
            raise SimulationError("invalid online interval")


class ChurnProcess:
    """Drives one node's on/off availability.

    ``set_online`` is called with True/False at each transition; the
    process starts in the online state and alternates uniformly sampled
    online/offline periods until ``stop()`` or ``until`` is reached.
    """

    def __init__(
        self,
        sim: Simulator,
        set_online: Callable[[bool], None],
        *,
        config: Optional[ChurnConfig] = None,
        until: Optional[float] = None,
        rng: RngLike = None,
    ):
        self.sim = sim
        self.set_online = set_online
        self.config = config or ChurnConfig()
        self.config.validate()
        self.until = until
        self.rng = make_rng(rng)
        self.active = False
        self.transitions = 0

    def start(self, *, stagger: bool = False) -> None:
        """Begin alternating periods (first transition after one online
        period).

        With ``stagger`` the first online period is drawn from
        ``[0, max_online]`` instead of ``[min_online, max_online]`` --
        the stationary-renewal approximation that prevents a whole
        population started at the same instant from taking its first
        offline period in one synchronized wave.
        """
        self.active = True
        self._schedule_offline(stagger=stagger)

    def stop(self) -> None:
        """Stop scheduling further transitions (node stays as-is)."""
        self.active = False

    def _expired(self) -> bool:
        return self.until is not None and self.sim.now >= self.until

    def _schedule_offline(self, stagger: bool = False) -> None:
        lo = 0.0 if stagger else self.config.min_online
        delay = self.rng.uniform(lo, self.config.max_online)
        self.sim.schedule(delay, self._go_offline)

    def _go_offline(self) -> None:
        if not self.active or self._expired():
            return
        self.set_online(False)
        self.transitions += 1
        delay = self.rng.uniform(self.config.min_offline, self.config.max_offline)
        self.sim.schedule(delay, self._go_online)

    def _go_online(self) -> None:
        if not self.active:
            return
        self.set_online(True)
        self.transitions += 1
        if not self._expired():
            self._schedule_offline()


def start_churn(
    sim: Simulator,
    set_online_callbacks: Iterable[Callable[[bool], None]],
    *,
    config: Optional[ChurnConfig] = None,
    until: Optional[float] = None,
    stagger: bool = False,
    rng: RngLike = None,
) -> List[ChurnProcess]:
    """Attach one started :class:`ChurnProcess` per callback.

    The shared orchestration behind the Sec. 5 experiment's churn phase
    and the scenario engine's churn phases
    (:mod:`repro.scenarios.runner`): each target gets an independent
    renewal process seeded from one master stream, so a whole
    population's churn stays reproducible from a single seed.
    ``stagger`` spreads the population's first offline periods (see
    :meth:`ChurnProcess.start`).
    """
    rand = make_rng(rng)
    config = config or ChurnConfig()
    procs: List[ChurnProcess] = []
    for callback in set_online_callbacks:
        proc = ChurnProcess(
            sim,
            callback,
            config=config,
            until=until,
            rng=make_rng(rand.randrange(2**31)),
        )
        procs.append(proc)
        proc.start(stagger=stagger)
    return procs

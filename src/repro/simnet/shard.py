"""Sharded simulation kernel: barrier-synchronized per-shard event heaps.

The message backend tops out around N=4096 on the single event loop of
:class:`~repro.simnet.engine.Simulator` (ROADMAP open item 1).  This
module provides the two halves of the scale story:

* :class:`ShardedSimulator` -- a conservative parallel-discrete-event
  kernel *inside one process*: the keyspace (trie regions, via
  :class:`ShardPlan`) is partitioned across shards, each shard owns an
  event heap, and cross-shard messages whose delivery time falls beyond
  the current barrier window are **staged** into the destination shard's
  inbox and flushed at the next deterministic time barrier.  The
  conservative lookahead is the per-link latency floor
  (:meth:`~repro.simnet.transport.LatencyModel.floor`): when the floor
  is at least one lookahead window, *every* cross-shard delivery lands
  at or beyond the next barrier, which is exactly the classic
  null-message-free conservative PDES contract.
* :func:`derive_shard_streams` + :class:`ShardCodec` -- the worker-mode
  half (see :func:`repro.scenarios.message_runner.run_sharded_scenario`):
  per-shard RNG seeds derived from the scenario's existing master stream
  tree, and a versioned serialization of protocol messages / shard
  results for the worker processes.

Determinism
-----------
:class:`ShardedSimulator` executes events in **globally merged
``(time, seq)`` order**: ``seq`` is a single global counter (inherited
from :class:`Simulator`), staging preserves each event's original
``(time, seq)``, and the pop loop always selects the minimum over all
shard heads within the open window.  Any event with a time inside the
current window is guaranteed to sit in a heap (only events at or beyond
the next barrier are ever staged), so the execution order -- and with it
every callback sequence and every shared-RNG draw -- is byte-identical
to the single-heap :class:`Simulator`.  That is what makes the
``shards=1`` and ``shards=8`` report digests of the same
:class:`~repro.scenarios.spec.ScenarioSpec` identical, and it holds for
*any* positive lookahead: a lookahead below the latency floor merely
stages fewer events (more get pushed directly), never reorders them.
"""

from __future__ import annotations

import heapq
import math
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .._util import make_rng
from ..exceptions import SimulationError
from .engine import Simulator, _Entry, _Event
from .transport import Message

__all__ = [
    "DEFAULT_MIN_LOOKAHEAD_S",
    "ShardPlan",
    "ShardedSimulator",
    "ShardCodec",
    "derive_shard_streams",
]

#: Lower bound on the barrier window: latency models with a zero floor
#: (log-normal) would otherwise degenerate to one barrier per event.
#: Correctness is lookahead-independent (see the module docstring), so
#: this is purely a window-granularity choice.
DEFAULT_MIN_LOOKAHEAD_S = 0.01


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of node ids to shards by trie region.

    Built from the overlay's paths: a node whose path covers the
    keyspace interval starting at ``bits / 2**length`` belongs to the
    shard owning that point -- contiguous trie regions land on the same
    shard, so intra-region traffic (replica sync, most routing hops at
    deep levels) stays shard-local.  Ids the plan never saw (peers
    joining after construction) fall back to ``id % n_shards``; any
    assignment is *correct* (the kernel's determinism does not depend on
    placement, see the module docstring), placement only shifts how much
    traffic crosses shards.
    """

    n_shards: int
    assignment: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.n_shards < 1:
            raise SimulationError(f"need at least one shard, got {self.n_shards}")

    @classmethod
    def from_paths(cls, paths: Mapping[int, object], n_shards: int) -> "ShardPlan":
        """Partition by each node's trie position (``path.bits/length``)."""
        assignment: Dict[int, int] = {}
        for pid in sorted(paths):
            path = paths[pid]
            length = path.length
            frac = (path.bits / (1 << length)) if length else 0.0
            assignment[pid] = min(n_shards - 1, int(frac * n_shards))
        return cls(n_shards=n_shards, assignment=assignment)

    def shard_of(self, node_id: int) -> int:
        shard = self.assignment.get(node_id)
        if shard is None:
            return node_id % self.n_shards
        return shard

    def populations(self) -> List[int]:
        """Assigned node count per shard (diagnostics)."""
        counts = [0] * self.n_shards
        for shard in self.assignment.values():
            counts[shard] += 1
        return counts


class ShardedSimulator(Simulator):
    """Per-shard event heaps merged at deterministic time barriers.

    Drop-in for :class:`Simulator`: same ``schedule`` / ``cancel`` /
    ``run_until`` surface, same event budgets, same ``events_processed``
    accounting.  Every event belongs to a shard -- explicitly via
    ``schedule(..., shard=...)`` (the transport tags deliveries with the
    destination's shard) or inherited from the shard whose event is
    currently executing (node-local timers stay on the node's shard;
    runner control events stay on shard 0).

    Time advances in barrier windows of ``lookahead`` seconds.  Within a
    window each shard's events run from its own heap, merged in global
    ``(time, seq)`` order; an event scheduled *across* shards with a
    time at or beyond the next barrier is staged into the destination's
    inbox and flushed when the barrier is crossed.  Empty windows are
    skipped in O(1): the barrier jumps straight to the window containing
    the earliest pending event.
    """

    def __init__(self, n_shards: int, *, lookahead: float = DEFAULT_MIN_LOOKAHEAD_S):
        super().__init__()
        if n_shards < 1:
            raise SimulationError(f"need at least one shard, got {n_shards}")
        if lookahead <= 0:
            raise SimulationError(f"lookahead must be positive, got {lookahead}")
        self.n_shards = n_shards
        self.lookahead = lookahead
        self._heaps: List[List[_Entry]] = [[] for _ in range(n_shards)]
        self._staged: List[List[_Entry]] = [[] for _ in range(n_shards)]
        self._staged_count = 0
        self._current_shard = 0
        #: End of the currently open barrier window.
        self._barrier = 0.0
        #: Barrier crossings (windows actually opened; empty ones skip).
        self.barriers = 0
        #: Events that crossed shards through an inbox (vs direct push).
        self.cross_shard_staged = 0

    # -- accounting ---------------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(len(h) for h in self._heaps) + self._staged_count

    @property
    def current_shard(self) -> int:
        """Shard whose event is executing (0 outside any event)."""
        return self._current_shard

    @property
    def staged_pending(self) -> int:
        """Cross-shard events awaiting the next barrier flush."""
        return self._staged_count

    # -- scheduling ---------------------------------------------------------

    def _resolve_shard(self, shard: Optional[int]) -> int:
        if shard is None:
            return self._current_shard
        if not 0 <= shard < self.n_shards:
            raise SimulationError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        return shard

    def _push(self, event: _Event) -> None:
        # The conservative-staging rule: only a *cross-shard* event that
        # cannot run in the open window goes through the inbox.  An
        # event inside the window is pushed straight into its heap, so
        # the merged pop below always sees every in-window event.
        entry = (event.time, event.seq, event)
        if event.shard != self._current_shard and event.time >= self._barrier:
            self._staged[event.shard].append(entry)
            self._staged_count += 1
            self.cross_shard_staged += 1
        else:
            heapq.heappush(self._heaps[event.shard], entry)
        total = self.pending
        if total > self._pending_peak:
            self._pending_peak = total

    def _compact(self) -> None:
        for shard in range(self.n_shards):
            heap = [e for e in self._heaps[shard] if not e[2].cancelled]
            heapq.heapify(heap)
            self._heaps[shard] = heap
            self._staged[shard] = [
                e for e in self._staged[shard] if not e[2].cancelled
            ]
        self._staged_count = sum(len(inbox) for inbox in self._staged)
        self._cancelled = 0
        self._compactions += 1

    # -- the merged pop loop ------------------------------------------------

    def _peek_shard(self, shard: int) -> Optional[_Entry]:
        """Live head of one shard's heap (drops cancelled placeholders)."""
        heap = self._heaps[shard]
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return head
        return None

    def _flush_staged(self) -> None:
        for shard in range(self.n_shards):
            inbox = self._staged[shard]
            if not inbox:
                continue
            self._staged[shard] = []
            heap = self._heaps[shard]
            for entry in inbox:
                if entry[2].cancelled:
                    self._cancelled -= 1
                    continue
                heapq.heappush(heap, entry)
        self._staged_count = 0

    def _advance_barrier(self) -> bool:
        """Cross the barrier: flush inboxes, open the window containing
        the earliest pending event.  False when nothing is pending."""
        self._flush_staged()
        earliest: Optional[float] = None
        for shard in range(self.n_shards):
            head = self._peek_shard(shard)
            if head is not None and (earliest is None or head[0] < earliest):
                earliest = head[0]
        if earliest is None:
            return False
        # Jump straight to the window containing the earliest event
        # instead of stepping one lookahead at a time -- long idle gaps
        # (drain tails) cost one barrier, not thousands.
        self._barrier = (math.floor(earliest / self.lookahead) + 1) * self.lookahead
        while self._barrier <= earliest:  # float-edge guard
            self._barrier += self.lookahead
        self.barriers += 1
        return True

    def _pop_next(self, end_time: Optional[float] = None) -> Optional[_Entry]:
        """The globally earliest live event, advancing barriers as
        needed; ``None`` when drained or the next event is past
        ``end_time``."""
        while True:
            best_shard = -1
            best_time = 0.0
            best_seq = 0
            barrier = self._barrier
            for shard in range(self.n_shards):
                head = self._peek_shard(shard)
                if head is None or head[0] >= barrier:
                    continue
                time, seq = head[0], head[1]
                if (
                    best_shard < 0
                    or time < best_time
                    or (time == best_time and seq < best_seq)
                ):
                    best_shard, best_time, best_seq = shard, time, seq
            if best_shard >= 0:
                if end_time is not None and best_time > end_time:
                    return None
                return heapq.heappop(self._heaps[best_shard])
            if not self._advance_barrier():
                return None

    def _execute(self, entry: _Entry) -> None:
        event = entry[2]
        self._now = entry[0]
        self._current_shard = event.shard
        event.callback()
        self._processed += 1

    def step(self) -> bool:
        entry = self._pop_next()
        if entry is None:
            return False
        self._execute(entry)
        return True

    def run_until(self, end_time: float, *, max_events: Optional[int] = None) -> None:
        budget = max_events if max_events is not None else float("inf")
        while budget > 0:
            entry = self._pop_next(end_time)
            if entry is None:
                break
            self._execute(entry)
            budget -= 1
        if budget <= 0:
            raise SimulationError(
                f"event budget exhausted at t={self._now:.1f}s "
                f"({self._processed} events processed)"
            )
        self._now = max(self._now, end_time)


# -- worker-mode support ----------------------------------------------------


def derive_shard_streams(root_seed: int, n_shards: int) -> List[int]:
    """Per-shard RNG seeds from the scenario's shard stream root.

    The root is the *final* draw of the scenario master chain
    (:meth:`repro.scenarios.base.ScenarioRunnerBase.shard_stream_root`),
    so deriving any number of shard streams can never shift a stream an
    existing golden trace depends on.  Each shard's seed is one
    ``randrange`` off a master seeded with the root -- the same
    one-master-many-streams idiom the scenario runner itself uses.
    """
    if n_shards < 1:
        raise SimulationError(f"need at least one shard, got {n_shards}")
    master = make_rng(root_seed)
    return [master.randrange(2**31) for _ in range(n_shards)]


class ShardCodec:
    """Versioned serialization for the worker protocol.

    Workers return their shard's results (and may forward protocol
    :class:`~repro.simnet.transport.Message` objects) as bytes; the
    parent decodes.  Message envelopes get an explicit field-by-field
    schema so a codec mismatch fails loudly instead of resurfacing as a
    corrupted simulation; arbitrary payloads (report dicts) ride pickled
    at a pinned protocol version, so parent and worker agree regardless
    of interpreter defaults.
    """

    #: Pinned pickle protocol (parent and workers must agree).
    PROTOCOL = 4
    #: Envelope schema version, checked on decode.
    VERSION = 1

    @classmethod
    def encode(cls, obj: object) -> bytes:
        return pickle.dumps((cls.VERSION, obj), protocol=cls.PROTOCOL)

    @classmethod
    def decode(cls, data: bytes) -> object:
        version, obj = pickle.loads(data)
        if version != cls.VERSION:
            raise SimulationError(
                f"shard codec version mismatch: got {version}, "
                f"expected {cls.VERSION}"
            )
        return obj

    @classmethod
    def encode_message(cls, message: Message) -> bytes:
        return cls.encode(
            {
                "src": message.src,
                "dst": message.dst,
                "kind": message.kind,
                "payload": message.payload,
                "size_bytes": message.size_bytes,
                "category": message.category,
            }
        )

    @classmethod
    def decode_message(cls, data: bytes) -> Message:
        fields = cls.decode(data)
        if not isinstance(fields, dict):
            raise SimulationError("shard codec: not a message envelope")
        try:
            return Message(
                src=fields["src"],
                dst=fields["dst"],
                kind=fields["kind"],
                payload=fields["payload"],
                size_bytes=fields["size_bytes"],
                category=fields["category"],
            )
        except KeyError as exc:  # pragma: no cover - defensive
            raise SimulationError(f"shard codec: missing field {exc}") from None

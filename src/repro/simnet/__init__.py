"""Discrete-event message-level network simulator (the PlanetLab substitute).

The paper validates its system on ~300 PlanetLab nodes (Sec. 5).  This
package provides the substrate that lets us run the *same protocol logic*
under controlled, reproducible networking conditions:

``engine``
    Event loop (simulated clock, scheduling).
``transport``
    Message delivery with configurable latency models, loss, and
    per-category byte accounting.
``topology``
    The pre-existing unstructured overlay (random graph) used for
    bootstrap, random walks and vote flooding.
``vote``
    The decentralized decision to start indexing (Sec. 4.1).
``churn``
    On/off availability process (peers offline 1-5 min every 5-10 min).
``node``/``protocol``
    P-Grid peers as asynchronous message handlers: replication,
    construction interactions, queries.
``stats``
    Time-binned series: online population, bandwidth by category,
    query latency -- exactly the series of Figs. 7, 8 and 9.
``experiment``
    The five-phase timeline driver reproducing the Sec. 5 deployment.
``shard``
    Sharded simulation kernel: per-shard event heaps merged at
    deterministic time barriers (conservative lookahead = per-link
    latency floor), plus the worker-mode protocol pieces (shard plans,
    per-shard RNG streams, message codec) behind the N=65,536 scale
    runs.
"""

from . import churn, engine, experiment, node, protocol, shard, stats, topology, transport, vote  # noqa: F401

"""The full Sec. 5 experiment: join, replicate, construct, query, churn.

Reproduces the paper's PlanetLab timeline on the simulated network:

===============  ==========================  ==========================
phase            paper schedule              driver default (minutes)
===============  ==========================  ==========================
join             t .. t+100 min              0 .. 100
replicate        t+75 .. t+100 min           75 .. 100
construct        t+100 .. t+300 min          100 .. 300
query            t+300 .. t+475 min          300 .. 475
churn (+query)   t+475 .. t+525 min          475 .. 525
===============  ==========================  ==========================

The driver collects exactly the series of Figs. 7/8/9 plus the Sec. 5.2
summary statistics (load-balance deviation vs. the Algorithm-1 reference,
mean path length, query hops, replication factor, success rates).

This module is the *message-level* stress driver: every byte crosses the
simulated wire.  For declarative, data-plane-level stress experiments
(churn regimes, flash crowds, mass joins/leaves, query mixes at
N=4096), use the scenario engine instead --
:mod:`repro.scenarios` compiles :class:`~repro.scenarios.spec.ScenarioSpec`
phases onto the same :class:`~repro.simnet.engine.Simulator` and shares
this module's churn orchestration (:func:`repro.simnet.churn.start_churn`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .._util import RngLike, ensure_monotonic, make_rng, mean
from ..core.deviation import load_balance_deviation
from ..core.reference import reference_partition
from ..exceptions import SimulationError
from ..workloads.datasets import workload_keys
from . import protocol as P
from .churn import ChurnConfig, ChurnProcess, start_churn
from .engine import Simulator
from .node import NodeConfig, PGridNode
from .stats import StatsCollector
from .topology import UnstructuredOverlay
from .transport import LogNormalLatency, Network

__all__ = ["ExperimentConfig", "ExperimentReport", "run_experiment"]

_MIN = 60.0  # seconds per simulated minute


@dataclass
class ExperimentConfig:
    """Knobs of the full-system experiment (times in minutes)."""

    peers: int = 296
    keys_per_peer: int = 10
    distribution: str = "A"
    n_min: int = 5
    d_max: Optional[float] = None  # default: 10 * n_min (figure captions)
    join_end: float = 75.0
    replicate_start: float = 75.0
    construct_start: float = 100.0
    query_start: float = 300.0
    churn_start: float = 475.0
    end: float = 525.0
    query_interval: Tuple[float, float] = (1.0, 2.0)  # minutes between queries
    interaction_interval: float = 20.0  # seconds
    loss_rate: float = 0.01
    latency_median: float = 0.12
    seed: int = 20050830

    def resolved_d_max(self) -> float:
        return self.d_max if self.d_max is not None else 10.0 * self.n_min

    @classmethod
    def compressed(cls, peers: int = 80, seed: int = 23, **overrides) -> "ExperimentConfig":
        """The CI-scale five-phase timeline (~5x compressed minutes).

        The canonical smoke configuration shared by the figure suite's
        ``REPRO_FAST`` mode and the example tests: same phase structure,
        110 simulated minutes instead of 525.
        """
        params = dict(
            peers=peers,
            join_end=10.0,
            replicate_start=10.0,
            construct_start=20.0,
            query_start=60.0,
            churn_start=90.0,
            end=110.0,
            seed=seed,
        )
        params.update(overrides)
        return cls(**params)

    def validate(self) -> None:
        if self.peers < 10:
            raise SimulationError("experiment needs at least 10 peers")
        ensure_monotonic(
            [
                0.0,
                self.join_end,
                self.replicate_start,
                self.construct_start,
                self.query_start,
                self.churn_start,
                self.end,
            ],
            what="phases",
        )


@dataclass
class ExperimentReport:
    """Everything the Sec. 5 evaluation reports."""

    config: ExperimentConfig
    population: List[Tuple[float, int]]  # Fig. 7
    maintenance_bandwidth: List[Tuple[float, float]]  # Fig. 8 (Bps)
    query_bandwidth: List[Tuple[float, float]]  # Fig. 8 (Bps)
    latency: List[Tuple[float, float, float]]  # Fig. 9 (min, avg, std)
    deviation: float  # Sec. 5.2: 0.39 on PlanetLab
    mean_path_length: float  # ~6
    mean_query_hops: float  # ~3
    replication_factor: float  # ~5
    success_rate_static: float  # before churn
    success_rate_churn: float  # 95-100% during churn
    messages_sent: int
    messages_dropped: int
    peak_construction_bandwidth_per_peer: float  # ~250 Bps in the paper

    def summary_rows(self) -> List[Tuple[str, float]]:
        """The in-text statistics as printable rows."""
        return [
            ("load-balance deviation", self.deviation),
            ("mean path length", self.mean_path_length),
            ("mean query hops", self.mean_query_hops),
            ("replication factor", self.replication_factor),
            ("query success (static)", self.success_rate_static),
            ("query success (churn)", self.success_rate_churn),
            ("peak construction Bps/peer", self.peak_construction_bandwidth_per_peer),
        ]


def run_experiment(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Run the five-phase experiment and return the report."""
    config = config or ExperimentConfig()
    config.validate()
    rand = make_rng(config.seed)
    sim = Simulator()
    stats = StatsCollector(bin_seconds=_MIN)
    network = Network(
        sim,
        latency=LogNormalLatency(median=config.latency_median),
        loss_rate=config.loss_rate,
        rng=rand,
        stats=stats,
    )
    overlay = UnstructuredOverlay()
    node_config = NodeConfig(
        n_min=config.n_min,
        d_max=config.resolved_d_max(),
        interaction_interval=config.interaction_interval,
    )

    peer_keys = workload_keys(
        config.distribution, config.peers, config.keys_per_peer, seed=rand
    )
    nodes: Dict[int, PGridNode] = {}
    for i in range(config.peers):
        node = PGridNode(
            i, sim, network, config=node_config, rng=make_rng(rand.randrange(2**31))
        )
        node.original_keys = set(peer_keys[i])
        node.keys = set(peer_keys[i])
        nodes[i] = node

    # -- phase 1: staggered joins via the bootstrap node -------------------
    overlay.join(0, rng=rand)
    nodes[0].overlay = overlay
    nodes[0].joined = True
    def make_join(node):
        def do_join():
            if node.joined:
                return
            node.send(0, P.JOIN, {"overlay": overlay})
            sim.schedule(45.0, do_join)  # retry until the join sticks

        return do_join

    for i in range(1, config.peers):
        join_at = rand.uniform(0.0, config.join_end * _MIN)
        sim.schedule(join_at, make_join(nodes[i]))

    # -- phase 2: replication (after every peer has joined) -----------------
    copies = max(config.n_min - 1, 0)
    rep_lo = max(config.replicate_start, config.join_end) * _MIN + 30.0
    rep_hi = max(config.construct_start * _MIN - 30.0, rep_lo + 1.0)
    for node in nodes.values():
        at = rand.uniform(rep_lo, rep_hi)

        def do_replicate(node=node):
            node.replicate_keys(copies)

        sim.schedule(at, do_replicate)

    # -- phase 3: construction ---------------------------------------------------
    for node in nodes.values():
        at = config.construct_start * _MIN + rand.uniform(0.0, 60.0)
        sim.schedule(at, node.start_constructing)

    def stop_constructing():
        for node in nodes.values():
            node.constructing = False

    sim.schedule(config.query_start * _MIN, stop_constructing)

    # -- phase 4: queries -----------------------------------------------------------
    lo_q, hi_q = config.query_interval

    def schedule_query(node: PGridNode):
        delay = rand.uniform(lo_q * _MIN, hi_q * _MIN)

        def fire():
            if sim.now >= config.end * _MIN:
                return
            if node.online and node.original_keys:
                keys = list(node.original_keys)
                node.issue_query(keys[rand.randrange(len(keys))])
            schedule_query(node)

        sim.schedule(delay, fire)

    def start_queries():
        for node in nodes.values():
            schedule_query(node)

    sim.schedule(config.query_start * _MIN, start_queries)

    # -- phase 5: churn (shared orchestration with the scenario engine) ----
    churners: List[ChurnProcess] = []

    def begin_churn():
        churners.extend(
            start_churn(
                sim,
                [node.set_online for node in nodes.values()],
                config=ChurnConfig(),
                until=config.end * _MIN,
                rng=rand,
            )
        )

    sim.schedule(config.churn_start * _MIN, begin_churn)

    # -- population sampling -----------------------------------------------------------

    def sample_population():
        # A peer "participates" once it has joined the overlay and is online.
        count = sum(1 for node in nodes.values() if node.joined and node.online)
        stats.record_population(sim.now, count)
        if sim.now < config.end * _MIN:
            sim.schedule(_MIN, sample_population)

    sim.schedule(0.0, sample_population)

    # -- run --------------------------------------------------------------------------------
    sim.run_until(config.end * _MIN, max_events=50_000_000)

    # -- harvest query stats into the collector -----------------------------------------------
    for node in nodes.values():
        for issued_at, latency, hops, success in node.query_results:
            stats.record_query(issued_at, latency, hops, success)

    # -- final structural measurements ----------------------------------------------------------
    all_keys = sorted({k for keys in peer_keys for k in keys})
    reference = reference_partition(
        all_keys, config.peers, d_max=config.resolved_d_max(), n_min=config.n_min
    )
    paths = [node.path for node in nodes.values()]
    deviation = load_balance_deviation(paths, reference)
    by_path: Dict[str, int] = {}
    for node in nodes.values():
        by_path[str(node.path)] = by_path.get(str(node.path), 0) + 1
    replication = len(nodes) / max(len(by_path), 1)

    churn_start_s = config.churn_start * _MIN
    peak_bps = stats.peak_bandwidth(P.MAINTENANCE)

    return ExperimentReport(
        config=config,
        population=stats.population_series(),
        maintenance_bandwidth=stats.bandwidth_series(P.MAINTENANCE),
        query_bandwidth=stats.bandwidth_series(P.QUERY_TRAFFIC),
        latency=stats.latency_series(),
        deviation=deviation,
        mean_path_length=mean([p.length for p in paths]),
        mean_query_hops=stats.mean_hops(),
        replication_factor=replication,
        success_rate_static=stats.success_rate(0.0, churn_start_s),
        success_rate_churn=stats.success_rate(churn_start_s, config.end * _MIN),
        messages_sent=network.messages_sent,
        messages_dropped=network.messages_dropped,
        peak_construction_bandwidth_per_peer=peak_bps / config.peers,
    )

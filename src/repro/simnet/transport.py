"""Message transport: latency models, loss, and byte accounting.

PlanetLab links are heterogeneous and heavily loaded; the paper's
absolute latency numbers mostly reflect that (Sec. 5.2).  We model links
with pluggable latency distributions (log-normal by default -- heavy
tailed like measured wide-area RTTs), optional uniform message loss, and
hard drops to offline nodes (churn).

Every message carries a size in bytes and a *category* ("maintenance" or
"query" in the paper's Fig. 8) so aggregate bandwidth can be binned over
time by :mod:`repro.simnet.stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from .._util import RngLike, make_rng
from ..exceptions import SimulationError
from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .node import SimNode
    from .stats import StatsCollector

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerLinkLatency",
    "Message",
    "Network",
    "HEADER_BYTES",
    "KEY_BYTES",
    "REF_BYTES",
]

#: Fixed per-message overhead (headers, framing) in bytes.
HEADER_BYTES = 100

#: Wire size of one data key (the paper moves key *references*).
KEY_BYTES = 20

#: Wire size of one gossiped routing reference (a peer id + level tag).
REF_BYTES = 8


class LatencyModel:
    """Base class: one-way delay sampler in seconds."""

    def sample(self, rng) -> float:
        raise NotImplementedError

    def sample_link(self, src: int, dst: int, rng) -> float:
        """Delay for one message on the ``src -> dst`` link.

        The default ignores the endpoints (one shared distribution);
        :class:`PerLinkLatency` overrides this to give every link its
        own deterministic base delay.
        """
        return self.sample(rng)

    def floor(self) -> float:
        """Greatest lower bound on any link's delay, in seconds.

        The sharded kernel (:mod:`repro.simnet.shard`) uses this as its
        conservative lookahead: no cross-shard message can arrive sooner
        than the floor, so barrier windows of that width never reorder
        deliveries.  Unbounded-below models (log-normal) return 0.0 and
        the kernel falls back to its minimum window.
        """
        return 0.0


@dataclass
class ConstantLatency(LatencyModel):
    """Fixed delay -- useful for deterministic tests."""

    delay: float = 0.05

    def sample(self, rng) -> float:
        return self.delay

    def floor(self) -> float:
        return self.delay


@dataclass
class UniformLatency(LatencyModel):
    """Uniform delay in ``[lo, hi]`` seconds."""

    lo: float = 0.02
    hi: float = 0.3

    def sample(self, rng) -> float:
        return rng.uniform(self.lo, self.hi)

    def floor(self) -> float:
        return self.lo


@dataclass
class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay, median ``median`` seconds, shape ``sigma``.

    Matches the qualitative latency profile of shared wide-area testbeds:
    most messages are quick, a tail is very slow.
    """

    median: float = 0.12
    sigma: float = 0.8
    cap: float = 30.0

    def sample(self, rng) -> float:
        value = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return min(value, self.cap)


def _mix32(value: int) -> int:
    """A small deterministic 32-bit integer mixer (no Python ``hash``,
    which is randomized per process)."""
    value &= 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 0x45D9F3B) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 0x45D9F3B) & 0xFFFFFFFF
    value ^= value >> 16
    return value


@dataclass
class PerLinkLatency(LatencyModel):
    """Heterogeneous links: a fixed per-link base delay plus jitter.

    PlanetLab-style testbeds pair fast LAN-ish links with slow
    intercontinental ones; a single shared distribution hides that each
    *pair* of nodes keeps its characteristic RTT across messages.  Each
    undirected link gets a base delay drawn deterministically (a seeded
    integer mix of the endpoint ids -- stable across runs and Python
    processes) from ``[lo, hi]``; an optional ``jitter`` model adds a
    per-message component on top.  ``overrides`` pins specific links,
    keyed by the (unordered) endpoint pair.
    """

    lo: float = 0.02
    hi: float = 0.2
    jitter: Optional[LatencyModel] = None
    seed: int = 0
    overrides: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def link_delay(self, src: int, dst: int) -> float:
        """The deterministic base delay of the ``{src, dst}`` link."""
        a, b = (src, dst) if src <= dst else (dst, src)
        pinned = self.overrides.get((a, b))
        if pinned is None:
            pinned = self.overrides.get((b, a))  # either key order pins
        if pinned is not None:
            return pinned
        h = _mix32(a * 2654435761 + b * 40503 + self.seed * 1013904223)
        return self.lo + (self.hi - self.lo) * (h / 2**32)

    def sample(self, rng) -> float:
        # Without endpoints there is no link identity; fall back to a
        # uniform draw over the base-delay range.
        return self.lo + (self.hi - self.lo) * rng.random()

    def sample_link(self, src: int, dst: int, rng) -> float:
        delay = self.link_delay(src, dst)
        if self.jitter is not None:
            delay += self.jitter.sample(rng)
        return delay

    def floor(self) -> float:
        # Pinned links may undercut [lo, hi]; jitter only ever adds its
        # own floor on top of the base delay.
        base = min([self.lo, *self.overrides.values()])
        if self.jitter is not None:
            base += self.jitter.floor()
        return base


@dataclass(slots=True)
class Message:
    """One message on the wire (lean ``slots`` layout: one instance per
    send is the kernel's dominant allocation)."""

    src: int
    dst: int
    kind: str
    payload: dict
    size_bytes: int
    category: str = "maintenance"


class Network:
    """Delivers messages between registered nodes via the simulator.

    ``loss_rate`` drops messages uniformly at random (silently); sends
    to a node that is *already* offline are refused at send time (the
    TCP connect fails -- :meth:`send` returns ``"refused"`` so the
    sender's liveness bookkeeping can react), while a node going
    offline after the send still drops the message at delivery,
    invisible to the sender; while a partition is installed
    (:meth:`set_partitions`) messages crossing a partition boundary are
    refused too (``"partition"``).  All traffic is reported to the
    optional stats collector, and the network keeps its own
    operational accounting:

    * ``messages_dropped`` with a per-cause breakdown
      (``drops_offline`` / ``drops_loss`` / ``drops_partition``),
    * ``inflight`` / ``inflight_peak`` -- messages currently on the wire
      and the run's high-water mark,
    * ``link_bytes`` -- *offered* bytes per directed ``(src, dst)``
      link, counted at send time like the stats collector's category
      totals (drops included -- compare against ``delivered`` for
      carried load),
    * ``delivered`` -- messages handled per destination node (the
      message-level notion of per-peer load).
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: RngLike = None,
        stats: "StatsCollector | None" = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.latency = latency or LogNormalLatency()
        self.loss_rate = loss_rate
        self.rng = make_rng(rng)
        self.stats = stats
        self.nodes: Dict[int, "SimNode"] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.drops_offline = 0
        self.drops_loss = 0
        self.drops_partition = 0
        self.inflight = 0
        self.inflight_peak = 0
        self.link_bytes: Dict[Tuple[int, int], int] = {}
        self.delivered: Dict[int, int] = {}
        self._partition_of: Optional[Dict[int, int]] = None
        #: Shard lookup (node id -> shard) under a sharded kernel; when
        #: set, deliveries are scheduled onto the destination's shard
        #: and boundary-crossing traffic is accounted below.
        self.shard_of: Optional[Callable[[int], int]] = None
        self.cross_shard_messages = 0
        self.cross_shard_bytes = 0

    def register(self, node: "SimNode") -> None:
        """Attach a node; its ``node_id`` becomes its address."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    # -- network partitions -------------------------------------------------

    def set_partitions(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages between different groups are dropped.

        ``groups`` lists disjoint sets of node ids; a node absent from
        every group forms its own singleton partition (it can reach
        nothing and nothing reaches it).  Messages already on the wire
        when the partition appears still arrive -- only new sends are
        filtered, like a real cut severing links, not queues.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id in mapping:
                    raise SimulationError(
                        f"node {node_id} appears in more than one partition group"
                    )
                mapping[node_id] = index
        self._partition_of = mapping

    def heal_partitions(self) -> None:
        """Remove the installed partition; all links work again."""
        self._partition_of = None

    def _partitioned(self, src: int, dst: int) -> bool:
        mapping = self._partition_of
        if mapping is None:
            return False
        return mapping.get(src, -1 - src) != mapping.get(dst, -1 - dst)

    # -- sending ------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict,
        *,
        n_keys: int = 0,
        n_refs: int = 0,
        category: str = "maintenance",
    ) -> Optional[str]:
        """Queue a message for delivery.

        ``n_keys`` contributes ``KEY_BYTES`` each to the wire size, on
        top of the fixed header -- the paper's bandwidth unit is data
        keys moved, ours is bytes, related by this constant.  ``n_refs``
        likewise bills gossiped routing references at ``REF_BYTES``.

        Returns the *send-time* drop cause (``"offline"`` sender,
        ``"refused"`` destination, ``"partition"``, ``"loss"``) or
        ``None`` when the message made it onto the wire.  Refusals and
        partition failures are locally observable -- the sender's
        connect fails, like a TCP RST from a departed peer or a severed
        link -- so callers may feed them to their liveness bookkeeping.
        Random loss stays silent, and a destination that goes offline
        *after* the send still drops at delivery time, invisible to the
        sender, which only ever learns about it through timeouts.
        """
        # Hot path: most messages carry no keys or refs, so the size
        # collapses to the precomputed header constant.
        if n_keys or n_refs:
            size = HEADER_BYTES + n_keys * KEY_BYTES + n_refs * REF_BYTES
        else:
            size = HEADER_BYTES
        message = Message(src, dst, kind, payload, size, category)
        self.messages_sent += 1
        stats = self.stats
        if stats is not None:
            stats.record_bytes(self.sim.now, category, size)
        link = (src, dst)
        link_bytes = self.link_bytes
        link_bytes[link] = link_bytes.get(link, 0) + size
        nodes = self.nodes
        sender = nodes.get(src)
        if sender is not None and not sender.online:
            # A node that just went offline cannot transmit.
            self.messages_dropped += 1
            self.drops_offline += 1
            return "offline"
        if self._partitioned(src, dst):
            self.messages_dropped += 1
            self.drops_partition += 1
            return "partition"
        receiver = nodes.get(dst)
        if receiver is not None and not receiver.online:
            # The connect is refused outright (the peer's port is
            # closed); messages already in flight when a node dies still
            # drop silently at delivery below.
            self.messages_dropped += 1
            self.drops_offline += 1
            return "refused"
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.messages_dropped += 1
            self.drops_loss += 1
            return "loss"
        delay = self.latency.sample_link(src, dst, self.rng)
        self.inflight += 1
        if self.inflight > self.inflight_peak:
            self.inflight_peak = self.inflight
        shard_of = self.shard_of
        dst_shard = None
        if shard_of is not None:
            # Delivery executes on the destination's shard; a message
            # crossing a shard boundary is the staged-at-the-barrier
            # traffic the scale benchmarks account for.
            dst_shard = shard_of(dst)
            if shard_of(src) != dst_shard:
                self.cross_shard_messages += 1
                self.cross_shard_bytes += size
        self.sim.schedule(delay, lambda: self._deliver(message), shard=dst_shard)
        return None

    def _deliver(self, message: Message) -> None:
        self.inflight -= 1
        node = self.nodes.get(message.dst)
        if node is None or not node.online:
            self.messages_dropped += 1
            self.drops_offline += 1
            return
        self.delivered[message.dst] = self.delivered.get(message.dst, 0) + 1
        node.receive(message)

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return sum(1 for node in self.nodes.values() if node.online)

"""Message transport: latency models, loss, and byte accounting.

PlanetLab links are heterogeneous and heavily loaded; the paper's
absolute latency numbers mostly reflect that (Sec. 5.2).  We model links
with pluggable latency distributions (log-normal by default -- heavy
tailed like measured wide-area RTTs), optional uniform message loss, and
hard drops to offline nodes (churn).

Every message carries a size in bytes and a *category* ("maintenance" or
"query" in the paper's Fig. 8) so aggregate bandwidth can be binned over
time by :mod:`repro.simnet.stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, TYPE_CHECKING

from .._util import RngLike, make_rng
from ..exceptions import SimulationError
from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .node import SimNode
    from .stats import StatsCollector

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Message",
    "Network",
    "HEADER_BYTES",
    "KEY_BYTES",
]

#: Fixed per-message overhead (headers, framing) in bytes.
HEADER_BYTES = 100

#: Wire size of one data key (the paper moves key *references*).
KEY_BYTES = 20


class LatencyModel:
    """Base class: one-way delay sampler in seconds."""

    def sample(self, rng) -> float:
        raise NotImplementedError


@dataclass
class ConstantLatency(LatencyModel):
    """Fixed delay -- useful for deterministic tests."""

    delay: float = 0.05

    def sample(self, rng) -> float:
        return self.delay


@dataclass
class UniformLatency(LatencyModel):
    """Uniform delay in ``[lo, hi]`` seconds."""

    lo: float = 0.02
    hi: float = 0.3

    def sample(self, rng) -> float:
        return rng.uniform(self.lo, self.hi)


@dataclass
class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay, median ``median`` seconds, shape ``sigma``.

    Matches the qualitative latency profile of shared wide-area testbeds:
    most messages are quick, a tail is very slow.
    """

    median: float = 0.12
    sigma: float = 0.8
    cap: float = 30.0

    def sample(self, rng) -> float:
        value = self.median * math.exp(rng.gauss(0.0, self.sigma))
        return min(value, self.cap)


@dataclass
class Message:
    """One message on the wire."""

    src: int
    dst: int
    kind: str
    payload: dict
    size_bytes: int
    category: str = "maintenance"


class Network:
    """Delivers messages between registered nodes via the simulator.

    ``loss_rate`` drops messages uniformly at random; messages to offline
    nodes are always dropped (churn).  All traffic is reported to the
    optional stats collector.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng: RngLike = None,
        stats: "StatsCollector | None" = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.latency = latency or LogNormalLatency()
        self.loss_rate = loss_rate
        self.rng = make_rng(rng)
        self.stats = stats
        self.nodes: Dict[int, "SimNode"] = {}
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, node: "SimNode") -> None:
        """Attach a node; its ``node_id`` becomes its address."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: dict,
        *,
        n_keys: int = 0,
        category: str = "maintenance",
    ) -> None:
        """Queue a message for delivery.

        ``n_keys`` contributes ``KEY_BYTES`` each to the wire size, on
        top of the fixed header -- the paper's bandwidth unit is data
        keys moved, ours is bytes, related by this constant.
        """
        size = HEADER_BYTES + n_keys * KEY_BYTES
        message = Message(
            src=src, dst=dst, kind=kind, payload=payload, size_bytes=size,
            category=category,
        )
        self.messages_sent += 1
        if self.stats is not None:
            self.stats.record_bytes(self.sim.now, category, size)
        sender = self.nodes.get(src)
        if sender is not None and not sender.online:
            # A node that just went offline cannot transmit.
            self.messages_dropped += 1
            return
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.messages_dropped += 1
            return
        delay = self.latency.sample(self.rng)
        self.sim.schedule(delay, lambda: self._deliver(message))

    def _deliver(self, message: Message) -> None:
        node = self.nodes.get(message.dst)
        if node is None or not node.online:
            self.messages_dropped += 1
            return
        node.receive(message)

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return sum(1 for node in self.nodes.values() if node.online)

"""Time-binned measurement series for the Sec. 5 figures.

Figures 7-9 plot, over a ~500 minute experiment: the number of
participating peers, aggregate bandwidth split into maintenance and
query traffic, and query latency (average and standard deviation).
:class:`StatsCollector` accumulates exactly those series in fixed-width
time bins (one minute by default, like the paper's plots).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .._util import mean, std

__all__ = ["StatsCollector", "QueryRecord"]


@dataclass
class QueryRecord:
    """Outcome of one query issued during the experiment."""

    issued_at: float
    latency: float
    hops: int
    success: bool


class StatsCollector:
    """Accumulates per-bin counters during a simulation run.

    Byte accounting is the per-message hot path (one
    :meth:`record_bytes` per send), so it accumulates into flat
    per-category bin arrays indexed by bin number instead of nested
    defaultdicts; :attr:`bytes_by_category` materializes the classic
    ``{category: {bin: bytes}}`` view on demand (cached between
    records).  Zero-padded bins are skipped in the view -- a recorded
    message is never smaller than the fixed header, so a genuinely
    recorded bin can never hold zero bytes and the view's key set
    matches the nested-dict scheme exactly.
    """

    def __init__(self, bin_seconds: float = 60.0):
        self.bin_seconds = bin_seconds
        self._category_bins: Dict[str, List[int]] = {}
        self._bytes_view: Dict[str, Dict[int, int]] = {}
        self._bytes_view_dirty = False
        self.population_samples: Dict[int, int] = {}
        self.queries: List[QueryRecord] = []

    # -- recording ----------------------------------------------------------

    def _bin(self, t: float) -> int:
        return int(t // self.bin_seconds)

    @property
    def bytes_by_category(self) -> Dict[str, Dict[int, int]]:
        """``{category: {bin: bytes}}`` view of the flat bin arrays."""
        if self._bytes_view_dirty:
            self._bytes_view = {
                category: {b: v for b, v in enumerate(bins) if v}
                for category, bins in self._category_bins.items()
            }
            self._bytes_view_dirty = False
        return self._bytes_view

    def record_bytes(self, t: float, category: str, size: int) -> None:
        """Attribute ``size`` bytes of ``category`` traffic to time ``t``."""
        b = int(t // self.bin_seconds)
        bins = self._category_bins.get(category)
        if bins is None:
            bins = self._category_bins[category] = []
        if b >= len(bins):
            bins.extend([0] * (b + 1 - len(bins)))
        bins[b] += size
        self._bytes_view_dirty = True

    def record_population(self, t: float, online: int) -> None:
        """Record the online peer count at time ``t`` (last sample per bin
        wins)."""
        self.population_samples[self._bin(t)] = online

    def record_query(
        self, issued_at: float, latency: float, hops: int, success: bool
    ) -> None:
        """Record a finished (or timed-out) query."""
        self.queries.append(
            QueryRecord(issued_at=issued_at, latency=latency, hops=hops, success=success)
        )

    # -- series extraction -----------------------------------------------------

    def minutes(self) -> List[float]:
        """Bin start times in minutes (sorted)."""
        bins = set(self.population_samples)
        for per_bin in self.bytes_by_category.values():
            bins.update(per_bin)
        return [b * self.bin_seconds / 60.0 for b in sorted(bins)]

    def population_series(self) -> List[Tuple[float, int]]:
        """Fig. 7: (minute, online peers)."""
        return [
            (b * self.bin_seconds / 60.0, count)
            for b, count in sorted(self.population_samples.items())
        ]

    def bandwidth_series(self, category: str) -> List[Tuple[float, float]]:
        """Fig. 8: (minute, bytes/second) for one traffic category."""
        per_bin = self.bytes_by_category.get(category, {})
        return [
            (b * self.bin_seconds / 60.0, size / self.bin_seconds)
            for b, size in sorted(per_bin.items())
        ]

    def latency_series(
        self, window_bins: int = 10
    ) -> List[Tuple[float, float, float]]:
        """Fig. 9: (minute, avg latency, latency stddev) over sliding bins.

        Only successful queries carry a meaningful latency; failures are
        reported through :meth:`success_rate` instead.
        """
        by_bin: Dict[int, List[float]] = defaultdict(list)
        for q in self.queries:
            if q.success:
                by_bin[self._bin(q.issued_at)].append(q.latency)
        out = []
        for b in sorted(by_bin):
            window: List[float] = []
            for w in range(b - window_bins + 1, b + 1):
                window.extend(by_bin.get(w, ()))
            if window:
                out.append((b * self.bin_seconds / 60.0, mean(window), std(window)))
        return out

    # -- aggregates ---------------------------------------------------------------

    def success_rate(self, t_from: float = 0.0, t_to: float = math.inf) -> float:
        """Fraction of successful queries issued within ``[t_from, t_to)``."""
        window = [q for q in self.queries if t_from <= q.issued_at < t_to]
        if not window:
            return float("nan")
        return sum(q.success for q in window) / len(window)

    def mean_hops(self, t_from: float = 0.0, t_to: float = math.inf) -> float:
        """Average hop count of successful queries in the window."""
        window = [
            q for q in self.queries if q.success and t_from <= q.issued_at < t_to
        ]
        if not window:
            return float("nan")
        return mean(q.hops for q in window)

    def peak_bandwidth(self, category: str) -> float:
        """Maximum per-bin bytes/second for a category."""
        series = self.bandwidth_series(category)
        return max((bps for _, bps in series), default=0.0)

"""Decentralized initiation of the indexing process (Sec. 4.1).

Any peer that locally decides a (re-)index would be useful floods a vote
request over the pre-existing unstructured overlay.  Replies carry each
peer's vote plus piggy-backed resource information (local storage offered
and data volume to index); they flow back along the flooding tree and are
aggregated en route to bound bandwidth.  The initiator then derives the
global parameters (``d_max`` from the average data volume and desired
``n_min``, Sec. 4.2) and floods the go/no-go decision.

This module implements the vote as a synchronous computation over the
overlay graph with explicit message accounting -- the initiation protocol
is orthogonal to the (asynchronous) index-construction process, as the
paper notes, so simulating its latency adds nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from .._util import RngLike, make_rng
from ..exceptions import SimulationError
from .topology import UnstructuredOverlay

__all__ = ["VoteOutcome", "PeerVote", "run_vote", "derived_parameters"]


@dataclass
class PeerVote:
    """One peer's reply to the vote request."""

    peer_id: int
    in_favor: bool
    local_keys: int
    storage_offered: int


@dataclass
class VoteOutcome:
    """Aggregated result of the initiation vote."""

    initiator: int
    yes: int
    no: int
    total_keys: int
    total_storage: int
    peers_reached: int
    messages: int

    @property
    def passed(self) -> bool:
        """Simple majority of reached peers."""
        return self.yes > self.no

    @property
    def avg_keys_per_peer(self) -> float:
        """``d_avg`` -- drives the ``d_max`` parameter (Sec. 4.2)."""
        if self.peers_reached == 0:
            return 0.0
        return self.total_keys / self.peers_reached


def run_vote(
    overlay: UnstructuredOverlay,
    initiator: int,
    vote_fn: Callable[[int], PeerVote],
    *,
    alive: Optional[Set[int]] = None,
) -> VoteOutcome:
    """Flood a vote from ``initiator`` and aggregate the replies.

    ``vote_fn(peer_id)`` produces each reached peer's vote.  The flood
    builds a BFS spanning tree over (alive) overlay edges; each edge
    carries one request and one aggregated reply, and the final decision
    flood costs one more message per edge of the tree -- all counted.
    """
    if initiator not in overlay.neighbors:
        raise SimulationError(f"initiator {initiator} is not part of the overlay")
    if alive is not None and initiator not in alive:
        raise SimulationError("initiator is offline")

    # BFS flood (requests).
    parent: Dict[int, Optional[int]] = {initiator: None}
    order: List[int] = [initiator]
    frontier = [initiator]
    messages = 0
    while frontier:
        nxt: List[int] = []
        for node in frontier:
            for neigh in overlay.neighbors_of(node):
                if alive is not None and neigh not in alive:
                    continue
                messages += 1  # request sent (duplicates are suppressed
                # by the receiver but still cost bandwidth)
                if neigh not in parent:
                    parent[neigh] = node
                    order.append(neigh)
                    nxt.append(neigh)
        frontier = nxt

    # Aggregate replies bottom-up along the spanning tree.
    votes = {pid: vote_fn(pid) for pid in order}
    yes = sum(1 for v in votes.values() if v.in_favor)
    no = len(votes) - yes
    total_keys = sum(v.local_keys for v in votes.values())
    total_storage = sum(v.storage_offered for v in votes.values())
    messages += len(order) - 1  # one aggregated reply per tree edge
    messages += len(order) - 1  # decision flood back down the tree

    return VoteOutcome(
        initiator=initiator,
        yes=yes,
        no=no,
        total_keys=total_keys,
        total_storage=total_storage,
        peers_reached=len(order),
        messages=messages,
    )


def derived_parameters(outcome: VoteOutcome, n_min: int) -> dict:
    """Global indexing parameters announced with the go decision.

    Sec. 4.2: ``d_max = d_avg * n_min * 2``, so that leaves settle with
    between ``n_min`` and ``2 n_min`` replicas under perfect balancing.
    """
    if n_min < 1:
        raise SimulationError(f"n_min must be >= 1, got {n_min}")
    d_avg = outcome.avg_keys_per_peer
    return {
        "n_min": n_min,
        "d_max": 2.0 * d_avg * n_min,
        "replication_copies": n_min - 1,
    }

"""Plain-text tables for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "print_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, title: str = ""
) -> None:
    """Print :func:`format_table` output (flushes so pytest -s shows it)."""
    print("\n" + format_table(headers, rows, title=title), flush=True)


def format_series(series: Sequence[tuple], *, every: int = 1) -> str:
    """Compact one-line rendering of a (x, y, ...) series."""
    points = [series[i] for i in range(0, len(series), max(every, 1))]
    return " ".join(
        "(" + ", ".join(_fmt(v) for v in point) + ")" for point in points
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)

"""Figure 3: numerical solution for ``alpha''(p)``.

The paper plots the second derivative of the balanced-split probability
over the alpha-regime ``p in (0, 1 - ln 2)`` to show where sampling-error
corrections matter most.  Our exact reconstruction shows the curvature
spanning roughly an order of magnitude across the regime and exploding
toward the regime boundary ``p* = 1 - ln 2`` (where ``p'(alpha) -> 0.079``
as ``alpha -> 1``); see EXPERIMENTS.md for the comparison discussion.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.probabilities import P_STAR, alpha_of_p, alpha_second_derivative

__all__ = ["alpha_curvature_curve", "rows"]


def alpha_curvature_curve(
    *, points: int = 26, lo: float = 0.02, hi: float = P_STAR - 0.005
) -> List[Tuple[float, float, float]]:
    """Sample ``(p, alpha(p), alpha''(p))`` over the alpha-regime."""
    out = []
    for i in range(points):
        p = lo + (hi - lo) * i / (points - 1)
        out.append((p, alpha_of_p(p), alpha_second_derivative(p)))
    return out


def rows() -> List[Tuple[float, float, float]]:
    """Printable rows for the bench harness."""
    return alpha_curvature_curve()

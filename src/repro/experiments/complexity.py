"""Sec. 4.3: construction complexity -- sequential vs parallel.

The claim: both approaches move ``O(N log N)``-class total traffic, but
the standard maintenance model *serializes* its joins (latency ~ total
messages) while the parallel construction completes in ``O(log^2 N)``
rounds.  This harness sweeps the population size and reports both
measures so the latency gap and its growth are visible.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from .._util import env_seed, scaled
from ..baselines.sequential import compare_constructions
from ..workloads.datasets import uniform_keys

__all__ = ["latency_sweep"]


def latency_sweep(
    populations: Tuple[int, ...] = (64, 128, 256, 512)
) -> List[Tuple[int, int, float, int, float, float]]:
    """Rows: (n, seq messages, seq latency, par rounds, speedup, log2^2 n)."""
    seed = env_seed()
    rows = []
    for n in populations:
        n_eff = scaled(n, minimum=32)
        peer_keys = uniform_keys(n_eff, 10, seed=seed + n_eff)
        cmp = compare_constructions(peer_keys, n_min=5, d_max=50, rng=seed + 1)
        rows.append(
            (
                n_eff,
                cmp.sequential_messages,
                cmp.sequential_latency,
                cmp.parallel_latency_rounds,
                cmp.latency_speedup,
                math.log2(n_eff) ** 2,
            )
        )
    return rows

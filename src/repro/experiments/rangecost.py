"""Sec. 6: range query cost -- in-network trie vs hash-DHT + PHT.

The paper argues qualitatively that uniform-hashing overlays with an
additional index on top pay "multiple overlay network queries" per range
while the data-oriented trie answers in-network.  This harness measures
both systems on identical data: message/hop counts per range width.
"""

from __future__ import annotations

from typing import List, Tuple

from .._util import env_seed, make_rng, scaled
from ..baselines.hashdht import HashDHT, PrefixHashTree
from ..pgrid.keyspace import float_to_key
from ..pgrid.network import PGridNetwork
from ..workloads.distributions import distribution

__all__ = ["range_cost_sweep"]

#: Fractional range widths swept.
WIDTHS = [0.01, 0.05, 0.1, 0.25, 0.5]


def range_cost_sweep(
    *,
    n_nodes: int = 128,
    n_keys: int = 2000,
    label: str = "U",
    queries_per_width: int = 10,
) -> List[Tuple[float, float, float, float]]:
    """Rows: (width, P-Grid messages, PHT hops, cost ratio).

    Both systems index the same ``n_keys`` keys over ``n_nodes`` nodes
    with comparable leaf capacities; costs are averaged over
    ``queries_per_width`` random ranges of each width.
    """
    seed = env_seed()
    rand = make_rng(seed)
    n_nodes = scaled(n_nodes, minimum=16)
    keys = distribution(label).sample_keys(n_keys, rng=rand)
    leaf_capacity = max(2 * n_keys // n_nodes, 8)

    net = PGridNetwork.ideal(
        keys, n_nodes, d_max=leaf_capacity, n_min=2, rng=seed + 1
    )
    dht = HashDHT(n_nodes, rng=seed + 2)
    pht = PrefixHashTree(dht, leaf_capacity=leaf_capacity)
    pht.build(keys)

    rows = []
    for width in WIDTHS:
        pgrid_costs = []
        pht_costs = []
        for q in range(queries_per_width):
            start = rand.uniform(0.0, 1.0 - width)
            lo = float_to_key(start)
            hi = float_to_key(min(start + width, 0.999999999))
            res = net.range_query(lo, hi, rng=seed + 100 + q)
            cost = pht.range_query(lo, hi)
            assert res.keys == cost.keys, "both systems must agree on results"
            pgrid_costs.append(res.messages)
            pht_costs.append(cost.hops)
        pgrid_mean = sum(pgrid_costs) / len(pgrid_costs)
        pht_mean = sum(pht_costs) / len(pht_costs)
        rows.append(
            (width, pgrid_mean, pht_mean, pht_mean / max(pgrid_mean, 1e-9))
        )
    return rows

"""Figures 7-9 and the Sec. 5.2 statistics: the full-system run.

One PlanetLab-style experiment (296 peers, five phases over 525
simulated minutes) drives all three figures plus the in-text summary
numbers, so the run is computed once per process and cached.

``REPRO_SCALE`` shrinks the population; ``REPRO_FAST=1`` additionally
compresses the timeline to the shared
:meth:`~repro.simnet.experiment.ExperimentConfig.compressed` smoke
configuration (useful for CI-style runs).  For churn/skew stress
beyond the paper's fixed five-phase timeline, see the declarative
scenario engine (:mod:`repro.scenarios`) -- its ``paper-sec51-churn``
library entry reproduces this experiment's churn window on the
data-plane overlay at N=4096.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Tuple

from .._util import env_seed, scaled
from ..simnet.experiment import ExperimentConfig, ExperimentReport, run_experiment

__all__ = [
    "system_report",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "summary_rows",
]


def _fast() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


@lru_cache(maxsize=1)
def system_report() -> ExperimentReport:
    """The cached full-system run."""
    if _fast():
        config = ExperimentConfig.compressed(
            peers=scaled(80, minimum=20), seed=env_seed()
        )
    else:
        config = ExperimentConfig(peers=scaled(296, minimum=20), seed=env_seed())
    return run_experiment(config)


def fig7_rows(every: int = 25) -> List[Tuple[float, int]]:
    """(minute, participating peers), sampled every ``every`` minutes."""
    series = system_report().population
    return [series[i] for i in range(0, len(series), every)]


def fig8_rows(every: int = 25) -> List[Tuple[float, float, float]]:
    """(minute, maintenance Bps, query Bps)."""
    report = system_report()
    maint = dict(report.maintenance_bandwidth)
    query = dict(report.query_bandwidth)
    minutes = sorted(set(maint) | set(query))
    series = [(m, maint.get(m, 0.0), query.get(m, 0.0)) for m in minutes]
    return [series[i] for i in range(0, len(series), every)]


def fig9_rows(every: int = 20) -> List[Tuple[float, float, float]]:
    """(minute, avg query latency s, latency std s)."""
    series = system_report().latency
    return [series[i] for i in range(0, len(series), max(every, 1))]


def summary_rows() -> List[Tuple[str, float, str]]:
    """Sec. 5.2 statistics with the paper's values alongside."""
    report = system_report()
    paper = {
        "load-balance deviation": "0.39 (sim 0.38)",
        "mean path length": "slightly below 6",
        "mean query hops": "~3 (half the path)",
        "replication factor": "5",
        "query success (static)": "~1.0",
        "query success (churn)": "0.95-1.00",
        "peak construction Bps/peer": "~250",
    }
    return [
        (name, value, paper.get(name, ""))
        for name, value in report.summary_rows()
    ]

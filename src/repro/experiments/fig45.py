"""Figures 4 and 5: accuracy and cost of the five partitioning models.

Reproduces Sec. 3.3's numerical simulation: ``N = 1000`` peers, sample
size ``m = 10``, the load fraction swept over ``p in {0.05 .. 0.5}``, and
(by default a reduced number of) repetitions of each of

* MVA -- mean-value model, exact ``p``;
* SAM -- mean-value model, sampled ``p``;
* AEP -- discrete simulation, sampled ``p``;
* COR -- discrete simulation, corrected probabilities;
* AUT -- discrete autonomous partitioning.

Figure 4 reports the mean of ``n0(t*) - N p`` (the systematic deviation
sampling introduces, which COR removes); Figure 5 the mean total number
of interactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from .._util import env_reps, env_seed, make_rng, mean, scaled
from ..core.bisection import simulate_aep, simulate_aut
from ..core.mva import run_mva, run_sam

__all__ = ["ModelSweep", "run_sweep", "P_GRID", "MODELS"]

#: The p values swept in Figs. 4/5.
P_GRID = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]

#: Model names in paper order.
MODELS = ["MVA", "SAM", "AEP", "COR", "AUT"]


@dataclass
class ModelSweep:
    """Results of the five-model sweep."""

    n: int
    m: int
    reps: int
    deviation: Dict[str, List[float]]  # Fig. 4 series, per model
    interactions: Dict[str, List[float]]  # Fig. 5 series, per model

    def fig4_rows(self):
        """Rows (p, MVA, SAM, AEP, COR, AUT) of mean deviation."""
        for i, p in enumerate(P_GRID):
            yield (p, *(self.deviation[m][i] for m in MODELS))

    def fig5_rows(self):
        """Rows (p, MVA, SAM, AEP, COR, AUT) of mean interactions."""
        for i, p in enumerate(P_GRID):
            yield (p, *(self.interactions[m][i] for m in MODELS))


@lru_cache(maxsize=4)
def run_sweep(
    *, n: int = 1000, m: int = 10, reps: int | None = None, seed: int | None = None
) -> ModelSweep:
    """Run the Sec. 3.3 numerical simulation.

    ``reps`` defaults to 30 (paper: 100); override with ``REPRO_REPS``.
    """
    n = scaled(n, minimum=100)
    reps = reps if reps is not None else env_reps(30)
    seed = seed if seed is not None else env_seed()
    deviation: Dict[str, List[float]] = {name: [] for name in MODELS}
    interactions: Dict[str, List[float]] = {name: [] for name in MODELS}

    for p in P_GRID:
        mva_traj = run_mva(n, p)
        deviation["MVA"].append(mva_traj.deviation)
        interactions["MVA"].append(mva_traj.interactions)

        sam_runs = [run_sam(n, p, m=m, rng=seed + 1000 + r) for r in range(reps)]
        deviation["SAM"].append(mean(t.deviation for t in sam_runs))
        interactions["SAM"].append(mean(t.interactions for t in sam_runs))

        aep_runs = [simulate_aep(n, p, m=m, rng=seed + 2000 + r) for r in range(reps)]
        deviation["AEP"].append(mean(o.deviation for o in aep_runs))
        interactions["AEP"].append(mean(o.interactions for o in aep_runs))

        cor_runs = [
            simulate_aep(n, p, m=m, corrected=True, rng=seed + 3000 + r)
            for r in range(reps)
        ]
        deviation["COR"].append(mean(o.deviation for o in cor_runs))
        interactions["COR"].append(mean(o.interactions for o in cor_runs))

        aut_runs = [simulate_aut(n, p, m=m, rng=seed + 4000 + r) for r in range(reps)]
        deviation["AUT"].append(mean(o.deviation for o in aut_runs))
        interactions["AUT"].append(mean(o.interactions for o in aut_runs))

    return ModelSweep(
        n=n, m=m, reps=reps, deviation=deviation, interactions=interactions
    )

"""Per-figure experiment harnesses (the code behind ``benchmarks/``).

Every module regenerates one of the paper's tables or figures and
returns plain data structures plus printable rows, so the benchmarks can
both measure runtime and display paper-style output:

===========  ==================================================
``fig3``     alpha''(p) curvature curve
``fig45``    the five partitioning models: accuracy and cost
``fig6``     construction sweeps (panels a-f)
``fig789``   the full-system PlanetLab-style run
``complexity``  sequential vs parallel construction (Sec. 4.3)
``rangecost``   trie range queries vs hash-DHT + PHT (Sec. 6)
``ablations``   sample size / correction ablations
===========  ==================================================

Scaling: ``REPRO_REPS`` overrides repetition counts, ``REPRO_SCALE``
multiplies population sizes, ``REPRO_SEED`` fixes the global seed.
"""

from . import ablations, complexity, fig3, fig45, fig6, fig789, rangecost, reporting  # noqa: F401

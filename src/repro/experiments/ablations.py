"""Design-choice ablations beyond the paper's own figures.

* ``correction_ablation`` -- how the Eq. (9)/(10) bias corrections and
  the sample size ``m`` interact (extends Fig. 4's m = 10 snapshot; the
  paper notes "even very small samples lead to the same results" for
  load balance, while the *systematic shift* does depend on m);
* ``replication_floor_ablation`` -- the ``n_min`` floor of Algorithm 1
  inside the decentralized split policy (DESIGN.md calls this the
  "decentralized analogue of lines 6-10"): with the floor disabled,
  highly skewed splits starve one side of replicas.
"""

from __future__ import annotations

from typing import List, Tuple

from .._util import env_reps, env_seed, mean, std
from ..core.bisection import simulate_aep
from ..core.construction import ConstructionConfig, construct_overlay
from ..core.deviation import load_balance_deviation
from ..core.reference import reference_partition
from ..workloads.datasets import flatten, workload_keys

__all__ = ["correction_ablation", "replication_floor_ablation"]


def correction_ablation(
    *,
    p: float = 0.4,
    n: int = 1000,
    sample_sizes: Tuple[int, ...] = (1, 2, 5, 10, 25, 50),
    reps: int | None = None,
) -> List[Tuple[int, float, float, float, float]]:
    """Rows: (m, AEP bias, AEP std, COR bias, COR std)."""
    reps = reps if reps is not None else env_reps(20)
    seed = env_seed()
    rows = []
    for m in sample_sizes:
        plain = [
            simulate_aep(n, p, m=m, rng=seed + 10 * m + r).deviation
            for r in range(reps)
        ]
        corr = [
            simulate_aep(n, p, m=m, corrected=True, rng=seed + 10 * m + r).deviation
            for r in range(reps)
        ]
        rows.append((m, mean(plain), std(plain), mean(corr), std(corr)))
    return rows


def replication_floor_ablation(
    *, n: int = 256, label: str = "P1.0", reps: int | None = None
) -> List[Tuple[str, float, float]]:
    """Rows: (variant, deviation, min replicas across populated leaves).

    Variants: the full split policy vs. one with very aggressive target
    fractions (tiny sample floor), approximating "no n_min floor".
    """
    reps = reps if reps is not None else env_reps(3)
    seed = env_seed()
    rows = []
    for name, strategy in (("theory", "theory"), ("uncorrected", "uncorrected")):
        devs = []
        min_repl = []
        for r in range(reps):
            peer_keys = workload_keys(label, n, 10, seed=seed + r)
            reference = reference_partition(
                sorted(set(flatten(peer_keys))), n, d_max=50, n_min=5
            )
            result = construct_overlay(
                peer_keys,
                ConstructionConfig(n_min=5, d_max=50, strategy=strategy),
                rng=seed + 100 + r,
            )
            devs.append(load_balance_deviation(result.paths, reference))
            by_path = {}
            for peer in result.peers:
                by_path[peer.path] = by_path.get(peer.path, 0) + 1
            min_repl.append(min(by_path.values()))
        rows.append((name, mean(devs), mean(min_repl)))
    return rows

"""Figure 6: load balancing and cost of the full construction (Sec. 4.4).

Six panels over the six key distributions (U, P0.5, P1.0, P1.5, N, A):

(a) deviation vs population size ``n in {256, 512, 1024}``;
(b) deviation vs replication target ``n_min in {5, 10, 15, 20, 25}``;
(c) deviation vs storage bound ("sample size") ``d_max in {10,20,30} n_min``;
(d) theoretically derived probability functions vs the straw-man
    heuristics;
(e) bilateral interactions per peer (same runs as panel a);
(f) data keys moved per peer (same runs as panel a).

Paper defaults: ``n_min = 5``, ``d_max = 10 n_min``, 10 keys/peer and 10
repetitions; our default is ``REPRO_REPS`` (2) repetitions to keep bench
time in minutes -- the variance across repetitions is small (the paper's
own Fig. 6(a) error discussion).  Runs are cached per configuration so
panels (a)/(e)/(f) share work.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from .._util import env_reps, env_seed, mean, scaled, std
from ..core.construction import ConstructionConfig, construct_overlay
from ..core.deviation import load_balance_deviation
from ..core.reference import reference_partition
from ..workloads.datasets import flatten, workload_keys

__all__ = [
    "DISTRIBUTION_LABELS",
    "SweepPoint",
    "construction_point",
    "panel_a",
    "panel_b",
    "panel_c",
    "panel_d",
    "panel_e",
    "panel_f",
]

#: Paper order of the evaluated distributions.
DISTRIBUTION_LABELS = ["U", "P0.5", "P1.0", "P1.5", "N", "A"]

#: Default populations of panel (a).
POPULATIONS = [256, 512, 1024]


@dataclass(frozen=True)
class SweepPoint:
    """Averaged measurements for one configuration."""

    label: str
    n: int
    n_min: int
    d_max_factor: float
    strategy: str
    deviation: float
    deviation_std: float
    interactions_per_peer: float
    bandwidth_per_peer: float
    mean_path: float
    replication: float


@lru_cache(maxsize=None)
def construction_point(
    label: str,
    n: int,
    n_min: int = 5,
    d_max_factor: float = 10.0,
    strategy: str = "theory",
    reps: int | None = None,
) -> SweepPoint:
    """Run (and cache) ``reps`` constructions for one configuration."""
    reps = reps if reps is not None else env_reps(2)
    seed = env_seed()
    n = scaled(n, minimum=4 * n_min)
    d_max = d_max_factor * n_min
    devs: List[float] = []
    inter: List[float] = []
    bw: List[float] = []
    paths: List[float] = []
    repl: List[float] = []
    for r in range(reps):
        peer_keys = workload_keys(label, n, 10, seed=seed + 17 * r)
        reference = reference_partition(
            sorted(set(flatten(peer_keys))), n, d_max=d_max, n_min=n_min
        )
        result = construct_overlay(
            peer_keys,
            ConstructionConfig(n_min=n_min, d_max=d_max, strategy=strategy),
            rng=seed + 1000 + r,
        )
        devs.append(load_balance_deviation(result.paths, reference))
        inter.append(result.bilateral_interactions_per_peer)
        bw.append(result.bandwidth_keys_per_peer)
        paths.append(result.mean_path_length())
        repl.append(result.replication_factor())
    return SweepPoint(
        label=label,
        n=n,
        n_min=n_min,
        d_max_factor=d_max_factor,
        strategy=strategy,
        deviation=mean(devs),
        deviation_std=std(devs),
        interactions_per_peer=mean(inter),
        bandwidth_per_peer=mean(bw),
        mean_path=mean(paths),
        replication=mean(repl),
    )


def panel_a(populations: Tuple[int, ...] = (256, 512, 1024)):
    """Fig. 6(a): rows (distribution, dev@n1, dev@n2, dev@n3)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        rows.append(
            (label, *(construction_point(label, n).deviation for n in populations))
        )
    return rows


def panel_b(n: int = 256, n_mins: Tuple[int, ...] = (5, 10, 15, 20, 25)):
    """Fig. 6(b): rows (distribution, dev@n_min...)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        rows.append(
            (
                label,
                *(
                    construction_point(label, n, n_min=n_min).deviation
                    for n_min in n_mins
                ),
            )
        )
    return rows


def panel_c(n: int = 256, factors: Tuple[float, ...] = (10.0, 20.0, 30.0)):
    """Fig. 6(c): rows (distribution, dev@d_max-factor...)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        rows.append(
            (
                label,
                *(
                    construction_point(label, n, d_max_factor=f).deviation
                    for f in factors
                ),
            )
        )
    return rows


def panel_d(n: int = 256, n_mins: Tuple[int, ...] = (5, 10)):
    """Fig. 6(d): rows (distribution-n_min, theory, heuristic)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        for n_min in n_mins:
            theory = construction_point(label, n, n_min=n_min).deviation
            heur = construction_point(
                label, n, n_min=n_min, strategy="heuristic"
            ).deviation
            rows.append((f"{label}-{n_min}", theory, heur))
    return rows


def panel_e(populations: Tuple[int, ...] = (256, 512, 1024)):
    """Fig. 6(e): rows (distribution, interactions/peer at each n)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        rows.append(
            (
                label,
                *(
                    construction_point(label, n).interactions_per_peer
                    for n in populations
                ),
            )
        )
    return rows


def panel_f(populations: Tuple[int, ...] = (256, 512, 1024)):
    """Fig. 6(f): rows (distribution, keys moved/peer at each n)."""
    rows = []
    for label in DISTRIBUTION_LABELS:
        rows.append(
            (
                label,
                *(
                    construction_point(label, n).bandwidth_per_peer
                    for n in populations
                ),
            )
        )
    return rows

"""Tests for key-space encodings."""

import random

import pytest

from repro.exceptions import DomainError
from repro.pgrid import keyspace as ks


class TestFloatKeys:
    def test_round_trip_order(self):
        xs = [0.0, 0.1, 0.25, 0.5, 0.999999]
        keys = [ks.float_to_key(x) for x in xs]
        assert keys == sorted(keys)
        back = [ks.key_to_float(k) for k in keys]
        for x, y in zip(xs, back):
            assert y == pytest.approx(x, abs=2**-50)

    def test_bounds(self):
        assert ks.float_to_key(0.0) == 0
        with pytest.raises(DomainError):
            ks.float_to_key(1.0)
        with pytest.raises(DomainError):
            ks.float_to_key(-0.1)
        with pytest.raises(DomainError):
            ks.key_to_float(ks.MAX_KEY)

    def test_key_bits_consistency(self):
        assert ks.MAX_KEY == 1 << ks.KEY_BITS


class TestStringKeys:
    def test_lexicographic_monotone(self):
        words = ["", "a", "aa", "ab", "b", "ba", "zebra", "zzzz"]
        keys = [ks.string_to_key(w) for w in words]
        assert keys == sorted(keys)

    def test_case_insensitive(self):
        assert ks.string_to_key("Apple") == ks.string_to_key("apple")

    def test_unknown_characters_do_not_raise(self):
        ks.string_to_key("hello-world_42")

    def test_long_strings_truncate_below_precision(self):
        a = ks.string_to_key("a" * 100)
        b = ks.string_to_key("a" * 100 + "zz")
        assert a == b  # beyond key precision

    def test_rejects_degenerate_alphabet(self):
        with pytest.raises(DomainError):
            ks.string_to_key("abc", alphabet="x")

    def test_out_of_alphabet_clamps_to_nearest_rank(self):
        # '{' is the code point after 'z', '!' sits below the leading
        # blank: both clamp onto the nearest in-alphabet character.
        assert ks.string_to_key("{") == ks.string_to_key("z")
        assert ks.string_to_key("!") == ks.string_to_key(" ")

    def test_monotone_property_on_arbitrary_text(self):
        """Round-trip monotonicity property: encoding any string equals
        encoding its clamped normalization, and lexicographic order of
        normalized strings implies (non-strict) key order."""
        alphabet = ks.DEFAULT_ALPHABET

        def norm(text: str) -> str:
            out = []
            for ch in text.lower():
                if ch in alphabet:
                    out.append(ch)
                else:
                    out.append(min(alphabet, key=lambda a: abs(ord(a) - ord(ch))))
            return "".join(out)

        rng = random.Random(20050830)
        charset = alphabet + "ABCXYZ0129-_!{}~"
        words = [
            "".join(rng.choice(charset) for _ in range(rng.randrange(0, 12)))
            for _ in range(300)
        ]
        for w in words:
            assert ks.string_to_key(w) == ks.string_to_key(norm(w))
        pairs = sorted((norm(w), ks.string_to_key(w)) for w in words)
        keys = [key for _, key in pairs]
        assert keys == sorted(keys)


class TestScalarCodec:
    def test_float_matches_module_function(self):
        codec = ks.ScalarCodec()
        for x in (0.0, 0.125, 0.5, 0.999):
            assert codec.encode(x) == ks.float_to_key(x)
            assert codec.encode((x,)) == ks.float_to_key(x)
        assert codec.decode(codec.encode(0.25)) == (0.25,)

    def test_string_matches_module_function(self):
        codec = ks.ScalarCodec()
        assert codec.encode("zebra") == ks.string_to_key("zebra")

    def test_rejects_multi_attribute_points(self):
        with pytest.raises(DomainError):
            ks.ScalarCodec().encode((0.1, 0.2))

    def test_protocol_fields(self):
        codec = ks.ScalarCodec()
        assert codec.dims == 1
        assert codec.name == "scalar"


class TestBitHelpers:
    def test_bit_at_msb_first(self):
        key = 1 << (ks.KEY_BITS - 1)  # 100...0
        assert ks.bit_at(key, 0) == 1
        assert ks.bit_at(key, 1) == 0

    def test_bit_at_range_checked(self):
        with pytest.raises(DomainError):
            ks.bit_at(0, ks.KEY_BITS)
        with pytest.raises(DomainError):
            ks.bit_at(0, -1)

    def test_key_prefix(self):
        key = ks.float_to_key(0.75)  # bits 11000...
        assert ks.key_prefix(key, 2) == 3
        assert ks.key_prefix(key, 0) == 0
        with pytest.raises(DomainError):
            ks.key_prefix(key, ks.KEY_BITS + 1)

    def test_prefix_agrees_with_bits(self):
        key = ks.float_to_key(0.3141592)
        for length in range(1, 10):
            prefix = ks.key_prefix(key, length)
            bits = [(prefix >> (length - 1 - i)) & 1 for i in range(length)]
            assert bits == [ks.bit_at(key, i) for i in range(length)]

"""Tests for the unstructured overlay, random walks, churn and votes."""

import statistics

import pytest

from repro.exceptions import SimulationError
from repro.simnet.churn import ChurnConfig, ChurnProcess
from repro.simnet.engine import Simulator
from repro.simnet.topology import UnstructuredOverlay
from repro.simnet.vote import PeerVote, derived_parameters, run_vote


class TestOverlay:
    def test_joins_connect_graph(self):
        overlay = UnstructuredOverlay(degree=3)
        for i in range(50):
            overlay.join(i, rng=i)
        assert len(overlay) == 50
        assert overlay.is_connected()

    def test_duplicate_join_rejected(self):
        overlay = UnstructuredOverlay()
        overlay.join(0)
        with pytest.raises(SimulationError):
            overlay.join(0)

    def test_leave_removes_edges(self):
        overlay = UnstructuredOverlay(degree=2)
        for i in range(10):
            overlay.join(i, rng=i)
        victim_neighbors = overlay.neighbors_of(3)
        overlay.leave(3)
        for n in victim_neighbors:
            assert 3 not in overlay.neighbors_of(n)

    def test_walk_reaches_far_nodes(self):
        overlay = UnstructuredOverlay(degree=4)
        for i in range(100):
            overlay.join(i, rng=i)
        ends = {overlay.random_walk(0, length=10, rng=s) for s in range(200)}
        assert len(ends) > 30  # walks spread over the graph

    def test_walk_roughly_uniform(self):
        overlay = UnstructuredOverlay(degree=5)
        for i in range(30):
            overlay.join(i, rng=i)
        counts = {}
        for s in range(3000):
            end = overlay.random_walk(s % 30, length=12, rng=s)
            counts[end] = counts.get(end, 0) + 1
        # No node should dominate the sample.
        assert max(counts.values()) < 3000 * 0.15

    def test_walk_respects_alive_filter(self):
        overlay = UnstructuredOverlay(degree=3)
        for i in range(20):
            overlay.join(i, rng=i)
        alive = set(range(10))
        for s in range(50):
            end = overlay.random_walk(0, length=8, rng=s, alive=alive)
            assert end in alive or end == 0


class TestPartitionBehavior:
    """Topology-level partitions: what a severed bootstrap graph does."""

    def split_overlay(self):
        # Two islands bridged only by node 4: {0,1,2,3,4} -- {4,5,6,7}.
        overlay = UnstructuredOverlay()
        overlay.neighbors = {
            0: {1, 2},
            1: {0, 3},
            2: {0, 3},
            3: {1, 2, 4},
            4: {3, 5},
            5: {4, 6, 7},
            6: {5, 7},
            7: {5, 6},
        }
        return overlay

    def test_components_of_connected_graph(self):
        overlay = self.split_overlay()
        assert overlay.is_connected()
        assert overlay.components() == [set(range(8))]

    def test_bridge_departure_partitions_the_graph(self):
        overlay = self.split_overlay()
        overlay.leave(4)
        assert not overlay.is_connected()
        assert overlay.components() == [{0, 1, 2, 3}, {5, 6, 7}]

    def test_walks_cannot_cross_a_partition(self):
        overlay = self.split_overlay()
        overlay.leave(4)
        for seed in range(60):
            assert overlay.random_walk(0, length=20, rng=seed) in {0, 1, 2, 3}
            assert overlay.random_walk(7, length=20, rng=seed) in {5, 6, 7}

    def test_offline_bridge_confines_live_walks(self):
        # The bridge stays in the graph but offline: alive-filtered
        # walks (how peer sampling really behaves under churn) are
        # confined exactly like a structural partition.
        overlay = self.split_overlay()
        alive = set(range(8)) - {4}
        for seed in range(60):
            end = overlay.random_walk(1, length=20, rng=seed, alive=alive)
            assert end in {0, 1, 2, 3}

    def test_empty_overlay_has_no_components(self):
        assert UnstructuredOverlay().components() == []
        assert UnstructuredOverlay().is_connected()


class TestChurn:
    def test_alternates_online_offline(self):
        sim = Simulator()
        transitions = []
        proc = ChurnProcess(
            sim, lambda on: transitions.append(on),
            config=ChurnConfig(min_offline=10, max_offline=20,
                               min_online=30, max_online=60),
            rng=1,
        )
        proc.start()
        sim.run_until(600.0)
        assert transitions[:4] == [False, True, False, True]

    def test_duty_cycle_matches_parameters(self):
        # offline 1-5 min every 5-10 min => offline fraction ~ 3/(3+7.5).
        sim = Simulator()
        state = {"online": True, "since": 0.0, "off_time": 0.0}

        def toggle(on):
            now = sim.now
            if not on:
                state["since"] = now
            else:
                state["off_time"] += now - state["since"]
            state["online"] = on

        proc = ChurnProcess(sim, toggle, rng=7)
        proc.start()
        horizon = 100_000.0
        sim.run_until(horizon)
        frac = state["off_time"] / horizon
        assert 0.15 < frac < 0.45

    def test_until_stops_scheduling(self):
        sim = Simulator()
        transitions = []
        proc = ChurnProcess(sim, lambda on: transitions.append((sim.now, on)),
                            until=500.0, rng=2)
        proc.start()
        sim.run_until(5000.0)
        off_after = [t for t, on in transitions if not on and t > 800.0]
        assert off_after == []

    def test_stop(self):
        sim = Simulator()
        transitions = []
        proc = ChurnProcess(sim, lambda on: transitions.append(on), rng=3)
        proc.start()
        proc.stop()
        sim.run_until(10_000.0)
        assert transitions == []

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            ChurnConfig(min_offline=0).validate()


class TestVote:
    def _overlay(self, n=30):
        overlay = UnstructuredOverlay(degree=4)
        for i in range(n):
            overlay.join(i, rng=i)
        return overlay

    def test_reaches_all_peers(self):
        overlay = self._overlay()
        outcome = run_vote(
            overlay, 0, lambda pid: PeerVote(pid, True, 10, 100)
        )
        assert outcome.peers_reached == 30
        assert outcome.passed
        assert outcome.yes == 30

    def test_majority_decision(self):
        overlay = self._overlay()
        outcome = run_vote(
            overlay, 0,
            lambda pid: PeerVote(pid, pid % 3 == 0, 10, 100),
        )
        assert not outcome.passed

    def test_aggregates_resources(self):
        overlay = self._overlay()
        outcome = run_vote(
            overlay, 0, lambda pid: PeerVote(pid, True, 10, 50)
        )
        assert outcome.total_keys == 300
        assert outcome.avg_keys_per_peer == pytest.approx(10.0)

    def test_message_accounting(self):
        overlay = self._overlay()
        outcome = run_vote(overlay, 0, lambda pid: PeerVote(pid, True, 1, 1))
        edges = sum(len(v) for v in overlay.neighbors.values()) // 2
        # Requests cost one message per (directed) reachable edge; replies
        # and the decision flood one per tree edge each.
        assert outcome.messages >= edges

    def test_offline_peers_excluded(self):
        overlay = self._overlay()
        alive = set(range(0, 30, 2))
        outcome = run_vote(
            overlay, 0, lambda pid: PeerVote(pid, True, 1, 1), alive=alive
        )
        assert outcome.peers_reached <= len(alive)

    def test_derived_parameters(self):
        overlay = self._overlay()
        outcome = run_vote(overlay, 0, lambda pid: PeerVote(pid, True, 10, 1))
        params = derived_parameters(outcome, n_min=5)
        assert params["d_max"] == pytest.approx(100.0)
        assert params["replication_copies"] == 4

    def test_invalid_initiator(self):
        overlay = self._overlay()
        with pytest.raises(SimulationError):
            run_vote(overlay, 999, lambda pid: PeerVote(pid, True, 1, 1))

"""Multi-dimensional keyspace: z-order codec, box decomposition, scenarios.

Three layers:

* **Codec properties**: quantize/interleave round trips for d in
  {2, 3, 4}, prefix containment (a z-trie node's cell block is an
  axis-aligned box, so prefix membership implies box membership), and
  the litmax/bigmin decomposition invariants -- exact decompositions
  (checked against brute-force cell enumeration on SMALL boxes; exact
  splitting is intractable for wide boxes at 2^26 cells per dimension)
  and the budgeted over-cover guarantee.
* **Workload/spec plumbing**: ``KeyDistribution.sample_points`` (the
  scalar fast path must consume the RNG exactly like ``sample_floats``),
  ``QueryMix.box_spans`` validation through ``ScenarioSpec.validate``.
* **Scenario acceptance**: the two library mdim scenarios replay
  byte-identically per backend, report ``box_recall == 1.0`` on the
  quiet ``geo-box-serving`` run, and never exceed the codec's split
  budget.
"""

import json
import random

import pytest

from repro.exceptions import DomainError, SimulationError
from repro.pgrid.keyspace import KEY_BITS, MAX_KEY
from repro.pgrid.mdim import DEFAULT_SPLIT_BUDGET, ZOrderCodec
from repro.scenarios import (
    Phase,
    QueryMix,
    ScenarioSpec,
    run_scenario,
    scenario,
    slice_spec,
)
from repro.workloads.distributions import UniformDistribution
from repro.workloads.queries import QuerySampler


def brute_force_cells(codec, lo_cells, hi_cells):
    """Every key in the box, by direct cell enumeration (small boxes)."""
    cells = [range(lo, hi + 1) for lo, hi in zip(lo_cells, hi_cells)]
    out = set()

    def rec(prefix):
        j = len(prefix)
        if j == codec.dims:
            out.add(codec.interleave(prefix) << codec.pad_bits)
            return
        for q in cells[j]:
            rec(prefix + (q,))

    rec(())
    return out


def keys_of_ranges(ranges, pad_bits):
    """All cell-aligned keys covered by half-open key ranges."""
    step = 1 << pad_bits
    out = set()
    for lo, hi in ranges:
        out.update(range(lo, hi, step))
    return out


def random_small_box(codec, rng, max_side=8):
    lo_cells, hi_cells = [], []
    for _ in range(codec.dims):
        lo = rng.randrange(codec.cells_per_dim - max_side)
        lo_cells.append(lo)
        hi_cells.append(lo + rng.randrange(1, max_side))
    return tuple(lo_cells), tuple(hi_cells)


class TestZOrderCodec:
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_round_trip_cells(self, dims):
        codec = ZOrderCodec(dims=dims)
        rng = random.Random(dims)
        for _ in range(200):
            point = tuple(rng.random() for _ in range(dims))
            key = codec.encode(point)
            assert 0 <= key < MAX_KEY
            cells = codec.cells_of(key)
            assert cells == tuple(codec.quantize(x) for x in point)
            # The decoded representative lands back in the same cell.
            assert codec.cells_of(codec.encode(codec.decode(key))) == cells

    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_interleave_bijective(self, dims):
        codec = ZOrderCodec(dims=dims)
        rng = random.Random(100 + dims)
        for _ in range(200):
            cells = tuple(
                rng.randrange(codec.cells_per_dim) for _ in range(dims)
            )
            assert codec.deinterleave(codec.interleave(cells)) == cells

    def test_geometry_fields(self):
        codec = ZOrderCodec(dims=2)
        assert codec.bits_per_dim == KEY_BITS // 2 == 26
        assert codec.pad_bits == KEY_BITS - 2 * 26 == 1
        assert codec.name == "z2"
        three = ZOrderCodec(dims=3)
        assert three.bits_per_dim == 17
        assert three.pad_bits == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(DomainError):
            ZOrderCodec(dims=0)
        with pytest.raises(DomainError):
            ZOrderCodec(dims=KEY_BITS + 1)
        with pytest.raises(DomainError):
            ZOrderCodec(dims=2, split_budget=0)

    def test_encode_rejects_out_of_domain(self):
        codec = ZOrderCodec(dims=2)
        with pytest.raises(DomainError):
            codec.encode((0.5, 1.0))
        with pytest.raises(DomainError):
            codec.encode((0.5,))

    @pytest.mark.parametrize("dims", [2, 3])
    def test_prefix_containment_implies_box_containment(self, dims):
        """Every key sharing a z-trie node's prefix lies in the node's
        axis-aligned cell box -- the property that makes prefix routing
        serve box queries at all."""
        codec = ZOrderCodec(dims=dims)
        rng = random.Random(7 + dims)
        for _ in range(50):
            cells = tuple(
                rng.randrange(codec.cells_per_dim) for _ in range(dims)
            )
            key = codec.interleave(cells) << codec.pad_bits
            depth = rng.randrange(1, dims * codec.bits_per_dim)
            # The node's box: per-dimension bounds from fixing the top
            # depth interleaved bits and freeing the rest.
            lo_cells, hi_cells = [], []
            for j in range(dims):
                fixed = max(0, (depth - j + dims - 1) // dims)
                free = codec.bits_per_dim - fixed
                lo = (cells[j] >> free) << free
                lo_cells.append(lo)
                hi_cells.append(lo + (1 << free) - 1)
            # Sample keys with the same interleaved prefix.
            width = dims * codec.bits_per_dim
            prefix = codec.interleave(cells) >> (width - depth)
            for _ in range(20):
                suffix = rng.randrange(1 << (width - depth))
                other = ((prefix << (width - depth)) | suffix) << codec.pad_bits
                got = codec.cells_of(other)
                assert all(
                    lo_cells[j] <= got[j] <= hi_cells[j] for j in range(dims)
                ), "prefix sibling escaped the node's box"
            assert codec.box_contains(key, tuple(lo_cells), tuple(hi_cells))


class TestBoxDecomposition:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_exact_cover_on_small_boxes(self, dims):
        """Unbudgeted decomposition covers exactly the box's cells."""
        codec = ZOrderCodec(dims=dims, split_budget=10**9)
        rng = random.Random(31 + dims)
        for _ in range(12):
            lo_cells, hi_cells = random_small_box(codec, rng, max_side=6)
            ranges = codec.box_ranges(lo_cells, hi_cells)
            assert ranges == sorted(ranges)
            # Disjoint, merged, half-open.
            for (alo, ahi), (blo, bhi) in zip(ranges, ranges[1:]):
                assert alo < ahi
                assert ahi < blo  # adjacent ranges would have merged
            covered = keys_of_ranges(ranges, codec.pad_bits)
            assert covered == brute_force_cells(codec, lo_cells, hi_cells)

    def test_split_count_bounded_by_box_perimeter(self):
        """Litmax/bigmin bound: an exact 2-D decomposition of an
        axis-aligned box needs O(side) ranges -- for small boxes, never
        more than 4 * (width + height) and never fewer than 1."""
        codec = ZOrderCodec(dims=2, split_budget=10**9)
        rng = random.Random(53)
        for _ in range(20):
            lo_cells, hi_cells = random_small_box(codec, rng, max_side=32)
            ranges = codec.box_ranges(lo_cells, hi_cells)
            w = hi_cells[0] - lo_cells[0] + 1
            h = hi_cells[1] - lo_cells[1] + 1
            assert 1 <= len(ranges) <= 4 * (w + h)

    @pytest.mark.parametrize("budget", [1, 2, 4, 8, 16])
    def test_budget_respected_and_never_undercovers(self, budget):
        codec = ZOrderCodec(dims=2, split_budget=budget)
        exact = ZOrderCodec(dims=2, split_budget=10**9)
        rng = random.Random(budget)
        for _ in range(10):
            lo_cells, hi_cells = random_small_box(codec, rng, max_side=8)
            ranges = codec.box_ranges(lo_cells, hi_cells)
            assert 1 <= len(ranges) <= budget
            # Over-cover is allowed (recall stays 1.0), under-cover not.
            # Tight budgets emit huge enclosing intervals, so check by
            # membership instead of enumerating the covered keys.
            for key in brute_force_cells(exact, lo_cells, hi_cells):
                assert any(lo <= key < hi for lo, hi in ranges)

    def test_budget_fast_on_huge_boxes(self):
        """Wide boxes (intractable exactly) still decompose instantly
        under a budget -- the property the scenarios rely on."""
        codec = ZOrderCodec(dims=2, split_budget=DEFAULT_SPLIT_BUDGET)
        lo_cells, hi_cells = codec.box_cells((0.1, 0.2), (0.4, 0.9))
        ranges = codec.box_ranges(lo_cells, hi_cells)
        assert 1 <= len(ranges) <= DEFAULT_SPLIT_BUDGET

    def test_box_cells_excludes_aligned_upper_bound(self):
        codec = ZOrderCodec(dims=2)
        lo_cells, hi_cells = codec.box_cells((0.0, 0.0), (0.5, 0.5))
        assert lo_cells == (0, 0)
        # Half-open [0, 0.5) must not include the cell starting at 0.5.
        assert hi_cells == (codec.cells_per_dim // 2 - 1,) * 2


class TestSamplePoints:
    def test_scalar_fast_path_matches_sample_floats(self):
        dist = UniformDistribution()
        a = dist.sample_points(50, 1, random.Random(9))
        b = [(x,) for x in dist.sample_floats(50, random.Random(9))]
        assert a == b

    def test_multi_dim_chunks(self):
        dist = UniformDistribution()
        pts = dist.sample_points(40, 3, random.Random(9))
        assert len(pts) == 40
        assert all(len(p) == 3 for p in pts)
        assert all(0.0 <= x < 1.0 for p in pts for x in p)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(DomainError):
            UniformDistribution().sample_points(4, 0, random.Random(1))


class TestSpecPlumbing:
    def test_box_spans_requires_mdim_codec(self):
        with pytest.raises(DomainError):
            QuerySampler(range_weight=1.0, box_spans=(0.1, 0.1))
        spec = ScenarioSpec(
            name="x",
            phases=(
                Phase(
                    name="p",
                    duration_s=10.0,
                    mix=QueryMix(range_weight=1.0, box_spans=(0.1, 0.1)),
                ),
            ),
        )
        with pytest.raises(SimulationError):
            spec.validate()

    def test_box_spans_arity_checked_against_codec(self):
        spec = ScenarioSpec(
            name="x",
            phases=(
                Phase(
                    name="p",
                    duration_s=10.0,
                    mix=QueryMix(range_weight=1.0, box_spans=(0.1, 0.1, 0.1)),
                ),
            ),
            codec=ZOrderCodec(dims=2),
        )
        with pytest.raises(SimulationError):
            spec.validate()

    def test_mdim_spec_validates_and_scales(self):
        spec = scenario("geo-box-serving", n_peers=64, duration_scale=0.1)
        assert spec.codec == ZOrderCodec(dims=2)
        spec.validate()

    def test_worker_sharding_refuses_mdim_codecs(self):
        spec = scenario("geo-box-serving", n_peers=64, duration_scale=0.1)
        with pytest.raises(SimulationError):
            slice_spec(spec, 0, 4, seed=1)


class TestMdimScenarios:
    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for name in ("geo-box-serving", "correlated-hotspot-2d"):
            spec = scenario(name, n_peers=64, seed=5, duration_scale=0.05)
            for backend in ("dataplane", "message"):
                out[(name, backend)] = run_scenario(spec, backend=backend)
        return out

    @pytest.mark.parametrize("name", ["geo-box-serving", "correlated-hotspot-2d"])
    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_mdim_section_present_and_bounded(self, reports, name, backend):
        m = reports[(name, backend)].mdim
        assert m is not None
        assert m["dims"] == 2
        assert m["boxes"] > 0
        assert m["ranges_per_box_max"] <= m["split_budget"]
        assert len(m["selectivity_per_dim"]) == 2

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_quiet_geo_serving_has_perfect_recall(self, reports, backend):
        """Acceptance: no churn/writes/maintenance -> every box query
        must return exactly the oracle's keys."""
        m = reports[("geo-box-serving", backend)].mdim
        assert m["recall_expected"] > 0
        assert m["box_recall"] == 1.0
        assert m["box_success_rate"] == 1.0

    def test_skewed_spans_show_in_selectivity(self, reports):
        m = reports[("correlated-hotspot-2d", "dataplane")].mdim
        sel = m["selectivity_per_dim"]
        # box_spans=(0.10, 0.004): dimension 0 is ~25x wider.
        assert sel[0] > 10 * sel[1]

    @pytest.mark.parametrize("name", ["geo-box-serving", "correlated-hotspot-2d"])
    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_deterministic_replay(self, name, backend):
        def one():
            spec = scenario(name, n_peers=48, seed=3, duration_scale=0.04)
            return run_scenario(spec, backend=backend).to_json()

        assert one() == one()

    def test_scalar_reports_carry_no_mdim_section(self):
        spec = scenario("uniform-baseline", n_peers=32, seed=2, duration_scale=0.05)
        report = run_scenario(spec)
        assert report.mdim is None
        assert "mdim" not in json.loads(report.to_json())

"""Tests for the discrete-event simulation core."""

import pytest

from repro.exceptions import SimulationError
from repro.simnet.engine import DeadlineTimer, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run_all()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run_all()
        assert log == [1, 2]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [5.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(2.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run_all()
        assert log == [("outer", 1.0), ("inner", 3.0)]

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run_all()
        assert seen == [4.0]


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("in"))
        sim.schedule(10.0, lambda: log.append("out"))
        sim.run_until(5.0)
        assert log == ["in"]
        assert sim.now == 5.0
        sim.run_until(20.0)
        assert log == ["in", "out"]

    def test_event_budget_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.001, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run_until(1e9, max_events=1000)

    def test_cancel(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        sim.cancel(handle)
        sim.run_all()
        assert log == []

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_all()
        assert sim.events_processed == 5


class TestHeapCompaction:
    def test_pending_bounded_under_cancel_churn(self):
        # Timeout-style workloads schedule an event and cancel it almost
        # every time; the heap must compact cancelled placeholders away
        # instead of growing linearly with churn.
        sim = Simulator()
        live = [sim.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for i in range(10_000):
            handle = sim.schedule(1.0 + i * 1e-3, lambda: None)
            sim.cancel(handle)
            # Invariant: cancelled placeholders never exceed half the queue
            # (plus the handful below the compaction floor).
            assert sim.pending <= 2 * (len(live) + 1) + 8
        assert sim.pending <= 2 * (len(live) + 1) + 8
        sim.run_all()
        assert sim.events_processed == len(live)

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        keep = sim.schedule(2.0, lambda: None)
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        sim.cancel(handle)  # double-cancel must not corrupt the counter
        sim.run_all()
        assert sim.events_processed == 1
        assert sim.pending == 0
        assert keep.cancelled is False

    def test_cancelled_events_still_skipped_in_run_until(self):
        sim = Simulator()
        log = []
        first = sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.cancel(first)
        sim.run_until(5.0)
        assert log == ["b"]


class TestObservableHeapStats:
    """The scale bench's heap-health audit channel."""

    def test_pending_live_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle = sim.schedule(3.0, lambda: None)
        sim.cancel(handle)
        assert sim.pending_live == 2
        assert sim.pending_cancelled == 1
        assert sim.pending == sim.pending_live + sim.pending_cancelled

    def test_pending_peak_tracks_high_water_mark(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(1.0 + i, lambda: None)
        assert sim.pending_peak == 5
        sim.run_all()
        assert sim.pending == 0
        assert sim.pending_peak == 5  # peak survives the drain

    def test_compactions_counter_increments(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1000.0, lambda: None)
        assert sim.compactions == 0
        for i in range(200):
            sim.cancel(sim.schedule(1.0 + i * 1e-3, lambda: None))
        assert sim.compactions > 0
        assert sim.pending_cancelled * 2 <= sim.pending + 2

    def test_counters_start_at_zero(self):
        sim = Simulator()
        assert sim.pending_live == 0
        assert sim.pending_cancelled == 0
        assert sim.pending_peak == 0
        assert sim.compactions == 0


class TestDeadlineTimer:
    """Lazy-timer semantics: the schedule-then-supersede-heavy timeout
    idiom must neither fire stale deadlines nor touch the cancel path."""

    def test_fires_at_the_armed_deadline(self):
        sim = Simulator()
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.arm(5.0)
        sim.run_all()
        assert fired == [5.0]
        assert not timer.armed

    def test_superseded_deadline_is_a_no_op_then_rearms(self):
        # The retry pattern: each attempt moves the deadline forward.
        # The single in-flight event fires early, sees the moved
        # deadline, and chases it -- the callback runs once, at the
        # *latest* deadline only.
        sim = Simulator()
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.arm(5.0)
        timer.arm(9.0)  # supersedes before the 5.0 event fires
        sim.run_until(6.0)
        assert fired == []  # the stale fire at 5.0 no-opped
        sim.run_all()
        assert fired == [9.0]

    def test_disarmed_timer_never_fires(self):
        sim = Simulator()
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        timer.arm(5.0)
        timer.disarm()
        sim.run_all()
        assert fired == []
        assert timer.deadline is None

    def test_callback_never_runs_twice_per_arm(self):
        # Supersede storm: many re-arms, one outstanding event, exactly
        # one callback -- the waiter can never be resolved twice.
        sim = Simulator()
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))
        for i in range(50):
            timer.arm(1.0 + i * 0.5)
        sim.run_all()
        assert fired == [1.0 + 49 * 0.5]

    def test_rearm_from_the_callback_schedules_the_next_cycle(self):
        # Completion handlers re-arm the same timer for the next
        # attempt; each cycle fires exactly once.
        sim = Simulator()
        fired = []
        timer = DeadlineTimer(sim, lambda: fired.append(sim.now))

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.arm(sim.now + 2.0)

        timer._callback = chain
        timer.arm(1.0)
        sim.run_all()
        assert fired == [1.0, 3.0, 5.0]

    def test_lazy_timers_never_touch_the_cancel_path(self):
        # The point of the lazy scheme: a supersede-heavy workload keeps
        # pending_cancelled at 0 and at most one heap entry per timer --
        # no cancelled placeholders for the compactor to chew through.
        sim = Simulator()
        timers = [DeadlineTimer(sim, lambda: None) for _ in range(8)]
        for round_ in range(100):
            for timer in timers:
                timer.arm(1.0 + round_ * 0.1)
            assert sim.pending <= len(timers)
        assert sim.pending_cancelled == 0
        sim.run_all()
        assert sim.pending_cancelled == 0
        assert sim.compactions == 0

"""Tests for the full decentralized construction process."""

import pytest

from repro.core.construction import (
    ConstructionConfig,
    construct_overlay,
)
from repro.core.deviation import load_balance_deviation
from repro.core.reference import reference_partition
from repro.exceptions import ConstructionError, DomainError
from repro.workloads.datasets import flatten, workload_keys


@pytest.fixture(scope="module")
def uniform_run():
    pk = workload_keys("U", peers=128, keys_per_peer=10, seed=5)
    res = construct_overlay(pk, ConstructionConfig(n_min=5, d_max=50, seed=11))
    return pk, res


@pytest.fixture(scope="module")
def skewed_run():
    pk = workload_keys("P1.0", peers=128, keys_per_peer=10, seed=5)
    res = construct_overlay(pk, ConstructionConfig(n_min=5, d_max=50, seed=11))
    return pk, res


class TestStructuralInvariants:
    def test_storage_consistency(self, uniform_run):
        _, res = uniform_run
        assert res.storage_is_consistent()

    def test_routing_consistency(self, uniform_run):
        _, res = uniform_run
        assert res.routing_is_consistent()

    def test_no_keys_lost(self, uniform_run):
        pk, res = uniform_run
        assert res.undeliverable_keys == 0
        assert res.distinct_keys() == set(flatten(pk))

    def test_skewed_storage_and_routing(self, skewed_run):
        _, res = skewed_run
        assert res.storage_is_consistent()
        assert res.routing_is_consistent()
        assert res.undeliverable_keys == 0

    def test_every_peer_has_full_routing_depth(self, uniform_run):
        _, res = uniform_run
        # Every level of every peer's path must carry at least one ref
        # (referential integrity of the recursive bisections).
        for peer in res.peers:
            for level in range(peer.path.length):
                assert peer.routing.get(level), (
                    f"peer {peer.peer_id} missing refs at level {level}"
                )

    def test_outboxes_empty_after_construction(self, uniform_run):
        _, res = uniform_run
        assert all(not peer.outbox for peer in res.peers)


class TestLoadBalancing:
    def test_deviation_in_paper_band_uniform(self, uniform_run):
        pk, res = uniform_run
        ref = reference_partition(sorted(set(flatten(pk))), 128, d_max=50, n_min=5)
        dev = load_balance_deviation(res.paths, ref)
        assert dev < 0.8  # paper reports ~0.1-0.5

    def test_deviation_in_paper_band_skewed(self, skewed_run):
        pk, res = skewed_run
        ref = reference_partition(sorted(set(flatten(pk))), 128, d_max=50, n_min=5)
        dev = load_balance_deviation(res.paths, ref)
        assert dev < 1.0

    def test_skew_produces_deeper_tree(self, uniform_run, skewed_run):
        _, res_u = uniform_run
        _, res_p = skewed_run
        assert res_p.mean_path_length() > res_u.mean_path_length()

    def test_replication_factor_reasonable(self, uniform_run):
        _, res = uniform_run
        assert 2.0 <= res.replication_factor() <= 20.0


class TestCostAccounting:
    def test_interactions_positive_and_bounded(self, uniform_run):
        _, res = uniform_run
        assert 0 < res.bilateral_interactions <= res.interactions

    def test_bandwidth_includes_replication(self, uniform_run):
        _, res = uniform_run
        assert res.bandwidth_keys > res.replication_keys_moved > 0

    def test_rounds_bounded(self, uniform_run):
        _, res = uniform_run
        assert 0 < res.rounds < 400

    def test_per_peer_properties(self, uniform_run):
        _, res = uniform_run
        assert res.interactions_per_peer == pytest.approx(
            res.interactions / res.n
        )
        assert res.bandwidth_keys_per_peer == pytest.approx(
            res.bandwidth_keys / res.n
        )


class TestConfig:
    def test_default_d_max_derivation(self):
        cfg = ConstructionConfig(n_min=5)
        assert cfg.resolved_d_max() == 50.0
        cfg2 = ConstructionConfig(n_min=5, d_max=77)
        assert cfg2.resolved_d_max() == 77.0

    def test_validation_rejects_bad_values(self):
        with pytest.raises(DomainError):
            ConstructionConfig(n_min=0).validate()
        with pytest.raises(DomainError):
            ConstructionConfig(strategy="nope").validate()
        with pytest.raises(DomainError):
            ConstructionConfig(sample_size=0).validate()
        with pytest.raises(DomainError):
            ConstructionConfig(max_idle_attempts=0).validate()

    def test_rejects_tiny_population(self):
        with pytest.raises(ConstructionError):
            construct_overlay([[1]] * 4, ConstructionConfig(n_min=5))

    def test_deterministic_given_seed(self):
        pk = workload_keys("U", peers=32, keys_per_peer=10, seed=2)
        cfg = ConstructionConfig(n_min=3, d_max=30)
        a = construct_overlay(pk, cfg, rng=9)
        b = construct_overlay(pk, cfg, rng=9)
        assert [p.path for p in a.peers] == [p.path for p in b.peers]
        assert a.interactions == b.interactions


class TestStrategies:
    def test_heuristic_strategy_degrades_balance(self):
        pk = workload_keys("P1.0", peers=128, keys_per_peer=10, seed=5)
        ref = reference_partition(sorted(set(flatten(pk))), 128, d_max=50, n_min=5)
        devs = {}
        for strategy in ("theory", "heuristic"):
            runs = []
            for seed in range(3):
                res = construct_overlay(
                    pk, ConstructionConfig(n_min=5, d_max=50, strategy=strategy), rng=seed
                )
                runs.append(load_balance_deviation(res.paths, ref))
            devs[strategy] = sum(runs) / len(runs)
        # Fig. 6(d): the theoretically derived functions beat the straw-man.
        assert devs["theory"] < devs["heuristic"]

    def test_uncorrected_strategy_runs(self):
        pk = workload_keys("U", peers=64, keys_per_peer=10, seed=3)
        res = construct_overlay(
            pk, ConstructionConfig(n_min=5, d_max=50, strategy="uncorrected"), rng=1
        )
        assert res.storage_is_consistent()

    def test_sample_size_limits_estimation(self):
        pk = workload_keys("U", peers=64, keys_per_peer=10, seed=3)
        res = construct_overlay(
            pk, ConstructionConfig(n_min=5, d_max=50, sample_size=2), rng=1
        )
        assert res.storage_is_consistent()

"""Tests for the discrete bisection simulators (AEP/COR/AUT)."""

import math
import statistics

import pytest

from repro.core.bisection import simulate_aep, simulate_aut
from repro.core.probabilities import t_star_interactions
from repro.exceptions import DomainError

LN2 = math.log(2.0)


class TestAEPDiscrete:
    def test_counts_conserved(self):
        out = simulate_aep(500, 0.4, rng=1)
        assert out.n0 + out.n1 == 500

    def test_referential_integrity_invariant(self):
        # The paper's key practical property: every decided peer holds a
        # reference to the opposite partition, in every run.
        for seed in range(10):
            out = simulate_aep(300, 0.35, m=10, rng=seed)
            assert out.referential_integrity

    @pytest.mark.parametrize("p", [0.1, 0.3, 0.5])
    def test_achieves_fraction_on_average(self, p):
        runs = [simulate_aep(1000, p, rng=seed) for seed in range(20)]
        mean_frac = statistics.mean(r.achieved_fraction for r in runs)
        assert mean_frac == pytest.approx(p, abs=0.03)

    def test_cost_matches_theory_beta_regime(self):
        runs = [simulate_aep(1000, 0.5, rng=seed) for seed in range(10)]
        mean_cost = statistics.mean(r.interactions for r in runs)
        assert mean_cost == pytest.approx(1000 * LN2, rel=0.1)

    def test_cost_matches_theory_alpha_regime(self):
        runs = [simulate_aep(1000, 0.1, rng=seed) for seed in range(10)]
        mean_cost = statistics.mean(r.interactions for r in runs)
        assert mean_cost == pytest.approx(t_star_interactions(0.1, 1000), rel=0.15)

    def test_sampling_bias_and_correction(self):
        # Discrete analogue of Fig. 4: AEP with sampled p drifts, COR does not.
        plain = [simulate_aep(1000, 0.4, m=5, rng=s) for s in range(25)]
        corr = [simulate_aep(1000, 0.4, m=5, corrected=True, rng=s) for s in range(25)]
        bias_plain = abs(statistics.mean(r.deviation for r in plain))
        bias_corr = abs(statistics.mean(r.deviation for r in corr))
        assert bias_corr < bias_plain

    def test_heuristic_degrades_accuracy(self):
        exact = [simulate_aep(500, 0.35, rng=s) for s in range(20)]
        heur = [simulate_aep(500, 0.35, heuristic=True, rng=s) for s in range(20)]
        err_exact = abs(statistics.mean(r.deviation for r in exact))
        err_heur = abs(statistics.mean(r.deviation for r in heur))
        assert err_heur > err_exact

    def test_deterministic_given_seed(self):
        a = simulate_aep(200, 0.4, m=10, rng=42)
        b = simulate_aep(200, 0.4, m=10, rng=42)
        assert (a.n0, a.interactions) == (b.n0, b.interactions)

    def test_validation(self):
        with pytest.raises(DomainError):
            simulate_aep(1, 0.4)
        with pytest.raises(DomainError):
            simulate_aep(100, 0.0)
        with pytest.raises(DomainError):
            simulate_aep(100, 0.8)
        with pytest.raises(DomainError):
            simulate_aep(100, 0.4, m=0)


class TestAUTDiscrete:
    def test_cost_at_half_is_2ln2(self):
        runs = [simulate_aut(1000, 0.5, rng=s) for s in range(10)]
        mean_cost = statistics.mean(r.per_peer_cost for r in runs)
        assert mean_cost == pytest.approx(2 * LN2, rel=0.1)

    def test_aut_costlier_than_aep_at_half(self):
        aep = statistics.mean(
            simulate_aep(800, 0.5, rng=s).interactions for s in range(10)
        )
        aut = statistics.mean(
            simulate_aut(800, 0.5, rng=s).interactions for s in range(10)
        )
        assert aut > 1.5 * aep

    def test_aut_cheaper_than_aep_for_small_p(self):
        # The Fig. 5 crossover: below p ~ 0.15 AUT wins.
        aep = statistics.mean(
            simulate_aep(800, 0.05, rng=s).interactions for s in range(10)
        )
        aut = statistics.mean(
            simulate_aut(800, 0.05, rng=s).interactions for s in range(10)
        )
        assert aut < aep

    def test_referential_integrity(self):
        for seed in range(10):
            out = simulate_aut(300, 0.3, m=10, rng=seed)
            assert out.referential_integrity

    def test_achieves_fraction_unbiased(self):
        runs = [simulate_aut(1000, 0.3, m=10, rng=s) for s in range(25)]
        mean_frac = statistics.mean(r.achieved_fraction for r in runs)
        assert mean_frac == pytest.approx(0.3, abs=0.02)

    def test_aut_error_spread_larger_than_aep(self):
        # Sec. 3.3: AEP reduces the standard deviation of the partition
        # error by roughly a factor of 2 compared to AUT.
        aep = [simulate_aep(1000, 0.4, m=10, rng=s).deviation for s in range(30)]
        aut = [simulate_aut(1000, 0.4, m=10, rng=s).deviation for s in range(30)]
        assert statistics.pstdev(aut) > 1.3 * statistics.pstdev(aep)

    def test_degenerate_single_side_draw_recovers(self):
        # With extreme p and tiny population all peers may pre-decide the
        # same side; the simulator must still terminate with integrity.
        out = simulate_aut(4, 0.01, rng=0)
        assert out.referential_integrity

"""Smoke tests: every shipped example must run end to end.

Beyond the generic runpy sweep, the stress-relevant examples are also
exercised *directly* at tiny, seeded sizes through their ``run()``
entry points, so example rot (broken imports, drifted APIs, violated
assertions) is caught by tier-1 without paying full example runtimes.
"""

import importlib.util
import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    """Import an example script as a module (examples are not a package)."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} should print its results"


class TestChurnResilienceSmoke:
    def test_tiny_seeded_run(self):
        report = load_example("churn_resilience").run(
            n_peers=48, seed=7, duration_scale=0.15
        )
        assert report.scenario == "paper-sec51-churn"
        assert report.totals["queries"] > 0
        assert report.totals["success_rate"] > 0.8
        assert report.totals["churn_transitions"] > 0
        # The churn phase reports success and bandwidth over time.
        assert report.success_rate_series()
        assert report.bandwidth_series()

    def test_run_is_seed_deterministic(self):
        mod = load_example("churn_resilience")
        a = mod.run(n_peers=32, seed=5, duration_scale=0.1)
        b = mod.run(n_peers=32, seed=5, duration_scale=0.1)
        assert a.to_json() == b.to_json()


class TestReindexingSmoke:
    def test_tiny_seeded_run(self):
        changed, cmp = load_example("reindexing").run(
            peers=12, n_docs=30, vocabulary_size=200, terms_per_doc=20
        )
        assert changed > 0
        assert cmp.sequential_messages > 0
        assert cmp.parallel_interactions > 0
        assert cmp.latency_speedup > 1.0

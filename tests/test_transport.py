"""Tests for the message transport layer."""

import statistics

import pytest

from repro.exceptions import SimulationError
from repro.simnet.engine import Simulator
from repro.simnet.stats import StatsCollector
from repro.simnet.transport import (
    HEADER_BYTES,
    KEY_BYTES,
    ConstantLatency,
    LogNormalLatency,
    Network,
    PerLinkLatency,
    UniformLatency,
)


class Recorder:
    """Minimal node: records everything it receives."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.online = True
        self.inbox = []

    def receive(self, message):
        self.inbox.append(message)


def make_net(loss=0.0, latency=None, stats=None):
    sim = Simulator()
    net = Network(sim, latency=latency or ConstantLatency(0.1), loss_rate=loss,
                  rng=1, stats=stats)
    a, b = Recorder(0), Recorder(1)
    net.register(a)
    net.register(b)
    return sim, net, a, b


class TestDelivery:
    def test_basic_delivery_with_latency(self):
        sim, net, a, b = make_net()
        net.send(0, 1, "ping", {"x": 1})
        assert b.inbox == []
        sim.run_all()
        assert len(b.inbox) == 1
        assert b.inbox[0].payload == {"x": 1}
        assert sim.now == pytest.approx(0.1)

    def test_offline_receiver_drops(self):
        sim, net, a, b = make_net()
        b.online = False
        net.send(0, 1, "ping", {})
        sim.run_all()
        assert b.inbox == []
        assert net.messages_dropped == 1

    def test_offline_sender_drops(self):
        sim, net, a, b = make_net()
        a.online = False
        net.send(0, 1, "ping", {})
        sim.run_all()
        assert b.inbox == []
        assert net.messages_dropped == 1

    def test_loss_rate(self):
        sim, net, a, b = make_net(loss=0.5)
        for _ in range(400):
            net.send(0, 1, "ping", {})
        sim.run_all()
        assert 120 < len(b.inbox) < 280  # ~200 expected

    def test_unknown_destination_dropped(self):
        sim, net, a, b = make_net()
        net.send(0, 99, "ping", {})
        sim.run_all()
        assert net.messages_dropped == 1

    def test_duplicate_registration_rejected(self):
        sim, net, a, b = make_net()
        with pytest.raises(SimulationError):
            net.register(Recorder(0))

    def test_bad_loss_rate(self):
        with pytest.raises(SimulationError):
            Network(Simulator(), loss_rate=1.5)


class TestByteAccounting:
    def test_message_size(self):
        stats = StatsCollector()
        sim, net, a, b = make_net(stats=stats)
        net.send(0, 1, "store", {}, n_keys=10, category="maintenance")
        sim.run_all()
        recorded = stats.bytes_by_category["maintenance"][0]
        assert recorded == HEADER_BYTES + 10 * KEY_BYTES

    def test_categories_separated(self):
        stats = StatsCollector()
        sim, net, a, b = make_net(stats=stats)
        net.send(0, 1, "q", {}, category="queries")
        net.send(0, 1, "m", {}, category="maintenance")
        sim.run_all()
        assert stats.bytes_by_category["queries"][0] == HEADER_BYTES
        assert stats.bytes_by_category["maintenance"][0] == HEADER_BYTES

    def test_online_count(self):
        sim, net, a, b = make_net()
        assert net.online_count() == 2
        b.online = False
        assert net.online_count() == 1


class TestLatencyModels:
    def test_constant(self):
        import random

        assert ConstantLatency(0.25).sample(random.Random(1)) == 0.25

    def test_uniform_within_bounds(self):
        import random

        rng = random.Random(2)
        model = UniformLatency(0.1, 0.2)
        for _ in range(100):
            assert 0.1 <= model.sample(rng) <= 0.2

    def test_lognormal_heavy_tail_capped(self):
        import random

        rng = random.Random(3)
        model = LogNormalLatency(median=0.1, sigma=1.0, cap=2.0)
        xs = [model.sample(rng) for _ in range(2000)]
        assert all(x <= 2.0 for x in xs)
        assert statistics.median(xs) == pytest.approx(0.1, rel=0.3)
        assert max(xs) > 5 * statistics.median(xs)  # heavy tail


class TestPerLinkLatency:
    def test_link_delay_deterministic_and_bounded(self):
        model = PerLinkLatency(lo=0.01, hi=0.5, seed=7)
        delays = {(a, b): model.link_delay(a, b) for a in range(6) for b in range(6) if a != b}
        for value in delays.values():
            assert 0.01 <= value <= 0.5
        # Stable across instances with the same seed...
        again = PerLinkLatency(lo=0.01, hi=0.5, seed=7)
        assert all(again.link_delay(a, b) == v for (a, b), v in delays.items())
        # ...heterogeneous across links, symmetric per pair.
        assert len(set(delays.values())) > 10
        assert delays[(1, 2)] == delays[(2, 1)]

    def test_seed_changes_the_link_map(self):
        a = PerLinkLatency(seed=1)
        b = PerLinkLatency(seed=2)
        assert any(a.link_delay(i, i + 1) != b.link_delay(i, i + 1) for i in range(8))

    def test_overrides_pin_specific_links_symmetrically(self):
        model = PerLinkLatency(lo=0.01, hi=0.5, overrides={(1, 2): 3.0})
        assert model.link_delay(1, 2) == 3.0
        assert model.link_delay(2, 1) == 3.0
        # A descending-order override key pins the link just the same.
        reversed_key = PerLinkLatency(lo=0.01, hi=0.5, overrides={(2, 1): 3.0})
        assert reversed_key.link_delay(1, 2) == 3.0
        assert reversed_key.link_delay(2, 1) == 3.0
        import random

        rng = random.Random(4)
        assert model.sample_link(1, 2, rng) == 3.0  # no jitter configured

    def test_jitter_adds_on_top_of_base(self):
        import random

        model = PerLinkLatency(lo=0.1, hi=0.1, jitter=ConstantLatency(0.05))
        assert model.sample_link(0, 1, random.Random(1)) == pytest.approx(0.15)

    def test_sample_without_link_context_falls_back_to_uniform(self):
        import random

        model = PerLinkLatency(lo=0.2, hi=0.4)
        rng = random.Random(9)
        for _ in range(50):
            assert 0.2 <= model.sample(rng) <= 0.4


class TestDeliveryOrdering:
    def test_fast_links_overtake_slow_ones(self):
        # A slow 0->1 link and a fast 2->1 link: the later message wins.
        model = PerLinkLatency(overrides={(0, 1): 0.5, (1, 2): 0.05})
        sim = Simulator()
        net = Network(sim, latency=model, rng=1)
        receiver = Recorder(1)
        for node in (Recorder(0), receiver, Recorder(2)):
            net.register(node)
        net.send(0, 1, "slow", {})
        net.send(2, 1, "fast", {})
        sim.run_all()
        assert [m.kind for m in receiver.inbox] == ["fast", "slow"]

    def test_random_latency_delivers_in_delay_order(self):
        sim = Simulator()
        net = Network(sim, latency=UniformLatency(0.01, 1.0), rng=3)
        a, b = Recorder(0), Recorder(1)
        net.register(a)
        net.register(b)
        arrivals = []
        b.receive = lambda m: arrivals.append((sim.now, m.payload["i"]))
        for i in range(50):
            net.send(0, 1, "seq", {"i": i})
        sim.run_all()
        assert len(arrivals) == 50
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        # Random latency genuinely reorders the send sequence.
        assert [i for _, i in arrivals] != list(range(50))


class TestDropAccounting:
    def test_breakdown_sums_to_total(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), loss_rate=0.3, rng=5)
        a, b, c = Recorder(0), Recorder(1), Recorder(2)
        for node in (a, b, c):
            net.register(node)
        b.online = False
        for _ in range(100):
            # Dropped at delivery (offline dst) unless loss ate it first.
            net.send(0, 1, "to-offline", {})
            net.send(0, 2, "maybe", {})  # ~30% loss
        sim.run_all()
        assert b.inbox == []  # every to-offline message was dropped somehow
        assert 50 < net.drops_offline <= 100
        assert 30 < net.drops_loss < 100  # ~30% of 200 sends
        assert net.drops_partition == 0
        assert (
            net.drops_offline + net.drops_loss + net.drops_partition
            == net.messages_dropped
        )

    def test_inflight_peak_tracks_concurrent_messages(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(1.0), rng=1)
        a, b = Recorder(0), Recorder(1)
        net.register(a)
        net.register(b)
        for _ in range(7):
            net.send(0, 1, "burst", {})
        assert net.inflight == 7
        sim.run_all()
        assert net.inflight == 0
        assert net.inflight_peak == 7

    def test_link_bytes_and_delivered_accounting(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), rng=1)
        a, b = Recorder(0), Recorder(1)
        net.register(a)
        net.register(b)
        net.send(0, 1, "k", {}, n_keys=3)
        net.send(0, 1, "k", {})
        net.send(1, 0, "k", {})
        sim.run_all()
        assert net.link_bytes[(0, 1)] == 2 * HEADER_BYTES + 3 * KEY_BYTES
        assert net.link_bytes[(1, 0)] == HEADER_BYTES
        assert net.delivered == {1: 2, 0: 1}


class TestPartitions:
    def make_net(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), rng=1)
        nodes = [Recorder(i) for i in range(4)]
        for node in nodes:
            net.register(node)
        return sim, net, nodes

    def test_cross_partition_messages_dropped(self):
        sim, net, nodes = self.make_net()
        net.set_partitions([{0, 1}, {2, 3}])
        net.send(0, 1, "intra", {})
        net.send(0, 2, "inter", {})
        net.send(3, 2, "intra", {})
        sim.run_all()
        assert [m.kind for m in nodes[1].inbox] == ["intra"]
        assert nodes[2].inbox and nodes[2].inbox[0].src == 3
        assert net.drops_partition == 1

    def test_unlisted_nodes_are_isolated(self):
        sim, net, nodes = self.make_net()
        net.set_partitions([{0, 1}])
        net.send(2, 3, "both-unlisted", {})
        net.send(0, 2, "into-void", {})
        sim.run_all()
        assert nodes[3].inbox == []
        assert nodes[2].inbox == []
        assert net.drops_partition == 2

    def test_heal_restores_full_connectivity(self):
        sim, net, nodes = self.make_net()
        net.set_partitions([{0, 1}, {2, 3}])
        net.send(0, 2, "cut", {})
        net.heal_partitions()
        net.send(0, 2, "healed", {})
        sim.run_all()
        assert [m.kind for m in nodes[2].inbox] == ["healed"]

    def test_inflight_messages_survive_a_new_partition(self):
        sim, net, nodes = self.make_net()
        net.send(0, 2, "already-flying", {})
        net.set_partitions([{0, 1}, {2, 3}])
        sim.run_all()
        assert [m.kind for m in nodes[2].inbox] == ["already-flying"]

    def test_overlapping_groups_rejected(self):
        sim, net, nodes = self.make_net()
        with pytest.raises(SimulationError):
            net.set_partitions([{0, 1}, {1, 2}])

"""Tests for the message transport layer."""

import statistics

import pytest

from repro.exceptions import SimulationError
from repro.simnet.engine import Simulator
from repro.simnet.stats import StatsCollector
from repro.simnet.transport import (
    HEADER_BYTES,
    KEY_BYTES,
    ConstantLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)


class Recorder:
    """Minimal node: records everything it receives."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.online = True
        self.inbox = []

    def receive(self, message):
        self.inbox.append(message)


def make_net(loss=0.0, latency=None, stats=None):
    sim = Simulator()
    net = Network(sim, latency=latency or ConstantLatency(0.1), loss_rate=loss,
                  rng=1, stats=stats)
    a, b = Recorder(0), Recorder(1)
    net.register(a)
    net.register(b)
    return sim, net, a, b


class TestDelivery:
    def test_basic_delivery_with_latency(self):
        sim, net, a, b = make_net()
        net.send(0, 1, "ping", {"x": 1})
        assert b.inbox == []
        sim.run_all()
        assert len(b.inbox) == 1
        assert b.inbox[0].payload == {"x": 1}
        assert sim.now == pytest.approx(0.1)

    def test_offline_receiver_drops(self):
        sim, net, a, b = make_net()
        b.online = False
        net.send(0, 1, "ping", {})
        sim.run_all()
        assert b.inbox == []
        assert net.messages_dropped == 1

    def test_offline_sender_drops(self):
        sim, net, a, b = make_net()
        a.online = False
        net.send(0, 1, "ping", {})
        sim.run_all()
        assert b.inbox == []
        assert net.messages_dropped == 1

    def test_loss_rate(self):
        sim, net, a, b = make_net(loss=0.5)
        for _ in range(400):
            net.send(0, 1, "ping", {})
        sim.run_all()
        assert 120 < len(b.inbox) < 280  # ~200 expected

    def test_unknown_destination_dropped(self):
        sim, net, a, b = make_net()
        net.send(0, 99, "ping", {})
        sim.run_all()
        assert net.messages_dropped == 1

    def test_duplicate_registration_rejected(self):
        sim, net, a, b = make_net()
        with pytest.raises(SimulationError):
            net.register(Recorder(0))

    def test_bad_loss_rate(self):
        with pytest.raises(SimulationError):
            Network(Simulator(), loss_rate=1.5)


class TestByteAccounting:
    def test_message_size(self):
        stats = StatsCollector()
        sim, net, a, b = make_net(stats=stats)
        net.send(0, 1, "store", {}, n_keys=10, category="maintenance")
        sim.run_all()
        recorded = stats.bytes_by_category["maintenance"][0]
        assert recorded == HEADER_BYTES + 10 * KEY_BYTES

    def test_categories_separated(self):
        stats = StatsCollector()
        sim, net, a, b = make_net(stats=stats)
        net.send(0, 1, "q", {}, category="queries")
        net.send(0, 1, "m", {}, category="maintenance")
        sim.run_all()
        assert stats.bytes_by_category["queries"][0] == HEADER_BYTES
        assert stats.bytes_by_category["maintenance"][0] == HEADER_BYTES

    def test_online_count(self):
        sim, net, a, b = make_net()
        assert net.online_count() == 2
        b.online = False
        assert net.online_count() == 1


class TestLatencyModels:
    def test_constant(self):
        import random

        assert ConstantLatency(0.25).sample(random.Random(1)) == 0.25

    def test_uniform_within_bounds(self):
        import random

        rng = random.Random(2)
        model = UniformLatency(0.1, 0.2)
        for _ in range(100):
            assert 0.1 <= model.sample(rng) <= 0.2

    def test_lognormal_heavy_tail_capped(self):
        import random

        rng = random.Random(3)
        model = LogNormalLatency(median=0.1, sigma=1.0, cap=2.0)
        xs = [model.sample(rng) for _ in range(2000)]
        assert all(x <= 2.0 for x in xs)
        assert statistics.median(xs) == pytest.approx(0.1, rel=0.3)
        assert max(xs) > 5 * statistics.median(xs)  # heavy tail

"""The query-serving front end: caches, dedup, coherence, reporting.

Four layers, mirroring the subsystem's span (ROADMAP open item 2):

* **Primitives** (:mod:`repro.pgrid.serving`): ``CachePolicy``
  validation/scaling, ``ResultCache`` TTL + invalidation + eviction
  semantics (a TTL of 0 never serves), ``RouteCache`` round-robin
  rotation, and the ``gini`` load-spread statistic.
* **Protocol** (:mod:`repro.simnet.node`): cache hits answer locally at
  zero wire cost, identical in-flight lookups join as waiters and
  resolve exactly once -- including through ``abort_inflight`` (the
  waiter-leak regression), writes invalidate result caches on every
  hearer (origin, owner, replica-sync receivers) while route entries
  survive writes.
* **Scenario layer**: the report's ``serving`` section, the measured
  ``stale_read_rate`` (zero by construction at TTL=0), the
  ``CachePolicy(enabled=False)`` A/B contract (identical report modulo
  the serving section), and determinism on both backends.
* **Stats**: nearest-rank percentile correctness of the message
  backend's latency summaries (p50 of two samples is the *smaller*
  one; single-sample bins are their own mean; p999 exists).
"""

import dataclasses

import pytest

from repro.exceptions import DomainError, SimulationError
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.serving import CachePolicy, ResultCache, RouteCache, gini
from repro.scenarios import QueryMix, run_scenario, scenario
from repro.scenarios.message_runner import _latency_stats
from repro.simnet.engine import Simulator
from repro.simnet.node import NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network


class TestCachePolicy:
    def test_defaults_validate(self):
        CachePolicy().validate()
        CachePolicy(result_ttl_s=0.0).validate()  # trivially coherent

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"result_ttl_s": -1.0},
            {"route_ttl_s": -0.5},
            {"result_capacity": 0},
            {"route_capacity": 0},
            {"hot_threshold": 0},
            {"replica_boost": -1},
            {"decay_interval_s": 0.0},
            {"grant_ttl_s": 0.0},
            {"front_ends": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(DomainError):
            CachePolicy(**kwargs).validate()

    def test_scaled_dilates_time_knobs_only(self):
        policy = CachePolicy(
            result_ttl_s=30.0, route_ttl_s=240.0, decay_interval_s=60.0,
            grant_ttl_s=300.0, result_capacity=256, front_ends=16,
        )
        half = policy.scaled(0.5)
        assert half.result_ttl_s == pytest.approx(15.0)
        assert half.route_ttl_s == pytest.approx(120.0)
        assert half.decay_interval_s == pytest.approx(30.0)
        assert half.grant_ttl_s == pytest.approx(150.0)
        # Structural knobs are not time quantities.
        assert half.result_capacity == 256
        assert half.hot_threshold == policy.hot_threshold
        assert half.front_ends == 16

    def test_scaled_identity_returns_self(self):
        policy = CachePolicy()
        assert policy.scaled(1.0) is policy

    def test_batch_size_validation(self):
        with pytest.raises(SimulationError):
            QueryMix(batch_size=0).validate()
        with pytest.raises(SimulationError):
            QueryMix(zipf_keys=-1).validate()
        with pytest.raises(SimulationError):
            QueryMix(zipf_exponent=0.0).validate()


class TestResultCache:
    def test_round_trip_within_ttl(self):
        cache = ResultCache(10.0, 8)
        cache.put(5, True, now=0.0)
        assert cache.get(5, now=9.99) is True

    def test_ttl_zero_never_serves(self):
        cache = ResultCache(0.0, 8)
        cache.put(5, True, now=3.0)
        assert cache.get(5, now=3.0) is None

    def test_expiry_boundary_is_exclusive(self):
        cache = ResultCache(10.0, 8)
        cache.put(5, False, now=0.0)
        assert cache.get(5, now=10.0) is None  # age == ttl -> expired
        assert len(cache) == 0  # and the entry was dropped

    def test_invalidate_reports_presence(self):
        cache = ResultCache(10.0, 8)
        cache.put(5, True, now=0.0)
        assert cache.invalidate(5) is True
        assert cache.invalidate(5) is False
        assert cache.get(5, now=1.0) is None

    def test_capacity_evicts_oldest_inserted(self):
        cache = ResultCache(100.0, 2)
        cache.put(1, True, now=0.0)
        cache.put(2, True, now=1.0)
        cache.put(3, True, now=2.0)
        assert cache.get(1, now=3.0) is None
        assert cache.get(2, now=3.0) is True
        assert cache.get(3, now=3.0) is True

    def test_reput_refreshes_instead_of_evicting(self):
        cache = ResultCache(100.0, 2)
        cache.put(1, True, now=0.0)
        cache.put(2, True, now=1.0)
        cache.put(1, False, now=2.0)  # refresh, not a third entry
        assert cache.get(2, now=3.0) is True
        assert cache.get(1, now=3.0) is False


class TestRouteCache:
    def test_pick_rotates_round_robin(self):
        cache = RouteCache(100.0, 8)
        cache.put(5, [7, 9], now=0.0)
        picks = [cache.pick(5, now=1.0) for _ in range(4)]
        assert picks == [7, 9, 7, 9]

    def test_duplicate_targets_collapse(self):
        cache = RouteCache(100.0, 8)
        cache.put(5, [7, 7, 9, 7], now=0.0)
        assert [cache.pick(5, now=1.0) for _ in range(3)] == [7, 9, 7]

    def test_ttl_expiry(self):
        cache = RouteCache(10.0, 8)
        cache.put(5, [7], now=0.0)
        assert cache.pick(5, now=10.0) is None

    def test_empty_target_list_is_not_stored(self):
        cache = RouteCache(10.0, 8)
        cache.put(5, [], now=0.0)
        assert len(cache) == 0

    def test_invalidate(self):
        cache = RouteCache(10.0, 8)
        cache.put(5, [7], now=0.0)
        assert cache.invalidate(5) is True
        assert cache.pick(5, now=1.0) is None


class TestGini:
    def test_even_load_is_zero(self):
        assert gini([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_concentrated_load_is_high(self):
        assert gini([0, 0, 0, 10]) == pytest.approx(0.75)

    def test_degenerate_inputs(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_scale_invariant(self):
        assert gini([1, 2, 3, 4]) == pytest.approx(gini([10, 20, 30, 40]))


class TestLatencyStats:
    """Nearest-rank percentiles (the former int(q*n) index was biased
    one rank high on small samples)."""

    def test_p50_of_two_is_the_smaller(self):
        stats = _latency_stats([2.0, 1.0])
        assert stats["p50"] == 1.0

    def test_p50_of_three_is_the_middle(self):
        stats = _latency_stats([3.0, 1.0, 2.0])
        assert stats["p50"] == 2.0

    def test_percentiles_on_a_known_ladder(self):
        stats = _latency_stats([float(i) for i in range(1, 1001)])
        assert stats["p50"] == 500.0
        assert stats["p90"] == 900.0
        assert stats["p99"] == 990.0
        assert stats["p999"] == 999.0
        assert stats["max"] == 1000.0

    def test_single_sample_is_its_own_summary(self):
        stats = _latency_stats([0.37])
        assert stats["count"] == 1
        assert stats["mean"] == 0.37
        assert stats["p50"] == stats["p99"] == stats["p999"] == 0.37
        assert stats["max"] == 0.37

    def test_empty_bin_shape(self):
        assert _latency_stats([]) == {"count": 0}


def build_wire(*, policy=None, twin=True):
    """Quadrant overlay (optionally with a replica twin of "11"),
    mirroring the write-path tests' fixture but serving-enabled."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), loss_rate=0.0, rng=1)
    config = NodeConfig(query_retries=2, query_timeout=5.0, serving=policy)
    nodes = []
    quads = [
        ("00", [0.05, 0.2]), ("01", [0.3, 0.45]),
        ("10", [0.55, 0.7]), ("11", [0.8, 0.95]),
    ]
    for node_id, (path, floats) in enumerate(quads):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = {float_to_key(f) for f in floats}
        node.joined = True
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is not node:
                cpl = node.path.common_prefix_length(other.path)
                if cpl < node.path.length:
                    node.add_route(cpl, other.node_id)
    if twin:
        peer = PGridNode(4, sim, net, config=config, rng=9)
        peer.path = Path.from_string("11")
        peer.keys = set(nodes[3].keys)
        peer.joined = True
        nodes[3].replicas = {4}
        peer.replicas = {3}
        nodes.append(peer)
    return sim, net, nodes


POLICY = CachePolicy(result_ttl_s=30.0, route_ttl_s=60.0)


class TestNodeCacheHits:
    def test_repeat_query_served_locally_at_zero_wire_cost(self):
        sim, net, nodes = build_wire(policy=POLICY)
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        audits = []
        nodes[0].on_cache_hit = lambda nid, key, present: audits.append(
            (nid, key, present)
        )
        key = float_to_key(0.87)
        nodes[0].issue_query(key)
        sim.run_until(10.0)
        assert len(outcomes) == 1 and outcomes[0].success
        delivered_before = dict(net.delivered)
        nodes[0].issue_query(key)
        sim.run_until(20.0)
        assert len(outcomes) == 2 and outcomes[1].success
        assert outcomes[1].messages == 0 and outcomes[1].hops == 0
        assert net.delivered == delivered_before  # nothing touched the wire
        assert nodes[0].serving_stats["result_hits"] == 1
        assert audits == [(0, key, key in nodes[3].keys)]

    def test_ttl_zero_policy_never_hits(self):
        policy = dataclasses.replace(POLICY, result_ttl_s=0.0)
        sim, net, nodes = build_wire(policy=policy)
        key = float_to_key(0.87)
        nodes[0].issue_query(key)
        sim.run_until(10.0)
        nodes[0].issue_query(key)
        sim.run_until(20.0)
        assert nodes[0].serving_stats["result_hits"] == 0
        assert nodes[0].serving_stats["result_misses"] == 2

    def test_expired_entry_never_serves_on_the_node(self):
        policy = dataclasses.replace(POLICY, result_ttl_s=5.0)
        sim, net, nodes = build_wire(policy=policy)
        key = float_to_key(0.87)
        nodes[0].issue_query(key)
        sim.run_until(1.0)  # resolves well inside the TTL
        sim.run_until(30.0)  # ... which has long expired by now
        nodes[0].issue_query(key)
        sim.run_until(40.0)
        assert nodes[0].serving_stats["result_hits"] == 0
        assert nodes[0].serving_stats["result_misses"] == 2


class TestNodeDedup:
    def test_identical_inflight_lookup_joins_as_waiter(self):
        sim, net, nodes = build_wire(policy=POLICY)
        outcomes = {}
        nodes[0].on_query_done = (
            lambda nid, qid, out: outcomes.setdefault(qid, []).append(out)
        )
        key = float_to_key(0.87)
        qid_a = nodes[0].issue_query(key)
        qid_b = nodes[0].issue_query(key)
        sim.run_until(10.0)
        assert nodes[0].serving_stats["dedup_joined"] == 1
        assert sorted(outcomes) == sorted([qid_a, qid_b])
        for qid, fired in outcomes.items():
            assert len(fired) == 1, f"qid {qid} resolved {len(fired)} times"
            assert fired[0].success
        # The waiter shares the primary's wire traffic.
        assert outcomes[qid_b][0].messages == 0
        assert outcomes[qid_a][0].messages > 0

    def test_abort_inflight_resolves_waiters_exactly_once(self):
        # The waiter-leak regression: abort while a primary+waiter pair
        # is in flight must fire each observer exactly once (moot), not
        # twice (once via the primary's waiter fan-out, once via the
        # abort loop's own iteration).
        sim, net, nodes = build_wire(policy=POLICY)
        outcomes = {}
        nodes[0].on_query_done = (
            lambda nid, qid, out: outcomes.setdefault(qid, []).append(out)
        )
        key = float_to_key(0.87)
        qid_a = nodes[0].issue_query(key)
        qid_b = nodes[0].issue_query(key)
        nodes[0].abort_inflight()
        assert sorted(outcomes) == sorted([qid_a, qid_b])
        for qid, fired in outcomes.items():
            assert len(fired) == 1, f"qid {qid} resolved {len(fired)} times"
            assert fired[0].moot and not fired[0].success
        # No pending state leaks, and the already-scheduled zero-delay
        # attempt finds nothing to resume.
        assert not nodes[0]._queries
        assert not nodes[0]._inflight_by_key and not nodes[0]._waiters
        sim.run_until(30.0)
        assert all(len(fired) == 1 for fired in outcomes.values())

    def test_abort_after_armed_lazy_timer_never_double_resolves(self):
        # Lazy-timer twin of the waiter-leak test: abort *after* the
        # attempt went out, so the primary's DeadlineTimer is armed and
        # its one heap event is outstanding.  The abort disarms it (no
        # cancel: pending_cancelled stays 0); when the stale deadline
        # passes, the fire must no-op -- each observer resolves exactly
        # once, and no timeout is ever charged to the aborted attempt.
        sim, net, nodes = build_wire(policy=POLICY)
        outcomes = {}
        nodes[0].on_query_done = (
            lambda nid, qid, out: outcomes.setdefault(qid, []).append(out)
        )
        key = float_to_key(0.87)
        qid_a = nodes[0].issue_query(key)
        qid_b = nodes[0].issue_query(key)
        sim.run_until(0.001)  # zero-delay attempt sent, timer armed
        assert nodes[0]._queries[qid_a].timer.armed
        nodes[0].abort_inflight()
        assert sorted(outcomes) == sorted([qid_a, qid_b])
        sim.run_until(30.0)  # the stale 5s deadline fires into a no-op
        for qid, fired in outcomes.items():
            assert len(fired) == 1, f"qid {qid} resolved {len(fired)} times"
            assert fired[0].moot and not fired[0].success
            assert fired[0].timeouts == 0
        assert sim.pending_cancelled == 0


class TestWriteInvalidation:
    def test_write_at_origin_drops_its_cached_result(self):
        sim, net, nodes = build_wire(policy=POLICY)
        key = float_to_key(0.87)
        nodes[0].issue_query(key)
        sim.run_until(10.0)
        assert nodes[0].result_cache.get(key, sim.now) is not None
        nodes[0].issue_insert(key)
        sim.run_until(20.0)
        assert nodes[0].result_cache.get(key, sim.now) is None
        assert nodes[0].serving_stats["invalidations"] >= 1

    def test_replica_sync_invalidates_the_hearer(self):
        sim, net, nodes = build_wire(policy=POLICY, twin=True)
        key = float_to_key(0.87)
        # The replica twin holds a (manually planted) cached result for
        # a key in its own range; the owner's replica_sync fan-out for
        # the write must kill it.
        nodes[4].result_cache.put(key, False, sim.now)
        nodes[0].issue_insert(key)
        sim.run_until(30.0)
        assert key in nodes[4].keys  # the sync arrived
        assert nodes[4].result_cache.get(key, sim.now) is None

    def test_route_entries_survive_writes(self):
        # The partition owner did not move because a key changed: only
        # routing evidence or TTL kills a route entry.
        sim, net, nodes = build_wire(policy=POLICY)
        key = float_to_key(0.87)
        nodes[0].issue_query(key)
        sim.run_until(10.0)
        assert nodes[0].route_cache.pick(key, sim.now) is not None
        nodes[0].issue_insert(key)
        sim.run_until(20.0)
        assert nodes[0].route_cache.pick(key, sim.now) is not None


def serving_spec(name="zipf-serving", n_peers=64, seed=9, scale=0.1, **cache_kw):
    spec = scenario(name, n_peers=n_peers, seed=seed, duration_scale=scale)
    if cache_kw:
        spec = dataclasses.replace(
            spec, cache=dataclasses.replace(spec.cache, **cache_kw)
        )
    return spec


class TestServingScenarios:
    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_ttl_zero_reports_zero_stale_reads(self, backend):
        report = run_scenario(serving_spec(result_ttl_s=0.0), backend=backend)
        srv = report.serving
        assert srv is not None and srv["enabled"]
        assert srv["cache_hits"] == 0  # TTL=0 never serves
        assert srv["stale_reads"] == 0
        assert srv["stale_read_rate"] == 0.0

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_caches_actually_hit_under_zipf(self, backend):
        report = run_scenario(serving_spec(), backend=backend)
        srv = report.serving
        assert srv["cache_hits"] > 0
        assert 0.0 < srv["cache_hit_rate"] <= 1.0
        assert srv["audited_hits"] == srv["cache_hits"]
        assert 0.0 <= srv["stale_read_rate"] <= 1.0

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_disabled_policy_changes_nothing_but_the_section(self, backend):
        # The A/B contract: CachePolicy(enabled=False, front_ends=0) is
        # the measured-but-inert configuration -- byte-identical report
        # modulo the serving section itself.
        base = scenario("read-write-balanced", n_peers=48, seed=7,
                        duration_scale=0.1)
        off = dataclasses.replace(
            base, cache=CachePolicy(enabled=False, front_ends=0)
        )
        plain = run_scenario(base, backend=backend).to_dict()
        with_off = run_scenario(off, backend=backend).to_dict()
        section = with_off.pop("serving")
        assert section["enabled"] is False
        assert section["cache_hits"] == 0 and section["cache_misses"] == 0
        assert with_off == plain

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_serving_runs_are_deterministic(self, backend):
        first = run_scenario(serving_spec(), backend=backend)
        second = run_scenario(serving_spec(), backend=backend)
        assert first.to_json() == second.to_json()

    def test_serving_section_shape_and_summary_rows(self):
        report = run_scenario(serving_spec(n_peers=128))
        srv = report.serving
        assert srv["policy"]["front_ends"] == 16
        for counter in (
            "dedup_joined", "invalidations", "route_uses",
            "route_invalidations", "grants", "revokes", "grant_hits",
            "helpers_final",
        ):
            assert srv[counter] >= 0
        assert 0.0 <= srv["load_gini"] <= 1.0
        labels = [label for label, _ in report.summary_rows()]
        assert "cache hit rate" in labels
        assert "stale read rate" in labels
        assert "per-peer load Gini" in labels

    def test_cacheless_spec_has_no_serving_section(self):
        base = scenario("uniform-baseline", n_peers=48, seed=5,
                        duration_scale=0.1)
        report = run_scenario(base)
        assert report.serving is None
        assert "serving" not in report.to_dict()

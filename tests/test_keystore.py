"""Property tests: the sorted KeyStore must behave exactly like the old
set-backed storage under arbitrary operation sequences.

The data-plane overhaul swapped ``PGridPeer.keys`` from ``Set[int]`` to
the sorted-array :class:`~repro.pgrid.keystore.KeyStore`.  These tests
drive randomized operation sequences (add/discard/update/membership/
range extraction/reconcile) against a shadow ``set`` model and require
bit-identical observable behavior, so the swap can never silently change
overlay semantics.
"""

import random

import pytest

from repro.pgrid.bits import Path
from repro.pgrid.keystore import KeyStore
from repro.pgrid.peer import PGridPeer

KEY_SPACE = 1 << 16  # small space so collisions/duplicates are common


def shadow_matching(model: set, lo: int, hi: int) -> set:
    return {k for k in model if lo <= k < hi}


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_operation_sequences(self, seed):
        rand = random.Random(seed)
        store = KeyStore()
        model: set = set()
        for _ in range(600):
            op = rand.randrange(7)
            key = rand.randrange(KEY_SPACE)
            if op == 0:
                store.add(key)
                model.add(key)
            elif op == 1:
                store.discard(key)
                model.discard(key)
            elif op == 2:
                batch = {rand.randrange(KEY_SPACE) for _ in range(rand.randrange(20))}
                added = store.update(batch)
                assert added == len(batch - model)
                model |= batch
            elif op == 3:
                assert (key in store) == (key in model)
            elif op == 4:
                lo = rand.randrange(KEY_SPACE)
                hi = rand.randrange(lo, KEY_SPACE)
                got = store.matching_keys(lo, hi)
                assert got == sorted(shadow_matching(model, lo, hi))
                assert store.count_range(lo, hi) == len(got)
            elif op == 5 and model:
                victim = rand.choice(sorted(model))
                store.remove(victim)
                model.remove(victim)
            else:
                assert len(store) == len(model)
                assert store == model
        assert list(store) == sorted(model)
        assert store == KeyStore(model)

    @pytest.mark.parametrize("seed", range(4))
    def test_union_reconcile_matches_set_union(self, seed):
        rand = random.Random(100 + seed)
        for _ in range(50):
            a_model = {rand.randrange(KEY_SPACE) for _ in range(rand.randrange(60))}
            b_model = {rand.randrange(KEY_SPACE) for _ in range(rand.randrange(60))}
            a = KeyStore(a_model)
            b = KeyStore(b_model)
            a_received, b_received = a.reconcile_with(b)
            union = a_model | b_model
            assert a_received == len(union - a_model)
            assert b_received == len(union - b_model)
            assert list(a) == sorted(union)
            assert list(b) == sorted(union)
            # Reconciling again must be a no-op (the fast path).
            assert a.reconcile_with(b) == (0, 0)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            KeyStore([1, 2]).remove(3)

    def test_difference_and_intersection_against_sets(self):
        rand = random.Random(7)
        a_model = {rand.randrange(200) for _ in range(80)}
        b_model = {rand.randrange(200) for _ in range(80)}
        a, b = KeyStore(a_model), KeyStore(b_model)
        assert a - b == a_model - b_model
        assert a - b_model == a_model - b_model
        assert a_model - b == a_model - b_model
        assert a & b == a_model & b_model
        assert a & b_model == a_model & b_model
        assert a | b == a_model | b_model
        assert a.intersection_size(b) == len(a_model & b_model)

    def test_min_max_copy_clear(self):
        store = KeyStore([5, 1, 9, 1])
        assert store.min() == 1 and store.max() == 9
        dup = store.copy()
        dup.add(7)
        assert 7 not in store  # copies are independent
        store.clear()
        assert len(store) == 0 and len(dup) == 4


class TestPeerCoercion:
    """PGridPeer must coerce any assigned iterable into a KeyStore."""

    def test_assignment_coerces_sets(self):
        peer = PGridPeer(peer_id=0, path=Path.from_string("0"))
        lo, _ = peer.path.key_range(53)
        peer.keys = {lo + 3, lo + 1}
        assert isinstance(peer.keys, KeyStore)
        assert list(peer.keys) == [lo + 1, lo + 3]

    def test_store_keeps_sorted_order(self):
        peer = PGridPeer(peer_id=0, path=Path.from_string("1"))
        lo, _ = peer.path.key_range(53)
        for offset in (5, 2, 9):
            peer.store(lo + offset)
        assert list(peer.keys) == [lo + 2, lo + 5, lo + 9]
        assert peer.matching_keys(lo + 2, lo + 6) == [lo + 2, lo + 5]

"""Integration tests: the full five-phase experiment (compressed)."""

import math

import pytest

from repro.exceptions import SimulationError
from repro.simnet.experiment import ExperimentConfig, run_experiment
from repro.simnet import protocol as P


@pytest.fixture(scope="module")
def small_report():
    config = ExperimentConfig(
        peers=60,
        join_end=10,
        replicate_start=10,
        construct_start=20,
        query_start=60,
        churn_start=90,
        end=110,
        seed=17,
    )
    return run_experiment(config)


class TestPopulationCurve:
    def test_ramp_up_then_plateau(self, small_report):
        pop = dict(small_report.population)
        early = pop.get(2.0, 0)
        plateau = pop.get(50.0, 0)
        assert plateau == 60
        assert early < plateau

    def test_churn_reduces_population(self, small_report):
        pop = dict(small_report.population)
        during_churn = [c for m, c in pop.items() if 95 <= m <= 109]
        assert min(during_churn) < 60

    def test_all_peers_join(self, small_report):
        pop = dict(small_report.population)
        assert max(pop.values()) == 60


class TestBandwidthCurve:
    def test_construction_peak_then_decay(self, small_report):
        maint = dict(small_report.maintenance_bandwidth)
        construction_window = [
            bps for m, bps in maint.items() if 21 <= m <= 40
        ]
        late_window = [bps for m, bps in maint.items() if 70 <= m <= 85]
        assert max(construction_window) > 5 * (
            max(late_window) if late_window else 1.0
        )

    def test_query_traffic_appears_in_query_phase(self, small_report):
        q = dict(small_report.query_bandwidth)
        before = sum(bps for m, bps in q.items() if m < 55)
        after = sum(bps for m, bps in q.items() if m >= 60)
        assert before == 0.0 or after > before
        assert after > 0.0


class TestQueryBehaviour:
    def test_static_success_near_perfect(self, small_report):
        assert small_report.success_rate_static >= 0.97

    def test_churn_success_in_paper_band(self, small_report):
        # Paper: 95-100% even during churn.
        assert small_report.success_rate_churn >= 0.85

    def test_hops_about_half_path_length(self, small_report):
        # Sec. 5.2: average hops ~ half the mean path length.
        assert small_report.mean_query_hops <= small_report.mean_path_length
        assert small_report.mean_query_hops >= 0.2 * small_report.mean_path_length

    def test_latency_series_has_data(self, small_report):
        assert len(small_report.latency) > 5
        for _, avg, sd in small_report.latency:
            assert avg >= 0.0 and sd >= 0.0


class TestStructure:
    def test_deviation_in_paper_band(self, small_report):
        # Paper: 0.39 on PlanetLab / 0.38 in simulation.
        assert small_report.deviation < 0.9

    def test_replication_factor_at_least_n_min_ish(self, small_report):
        assert small_report.replication_factor >= 2.0

    def test_paths_formed(self, small_report):
        assert small_report.mean_path_length > 1.5

    def test_messages_flowed(self, small_report):
        assert small_report.messages_sent > 1000
        assert small_report.messages_dropped < small_report.messages_sent


class TestConfigValidation:
    def test_phase_order_enforced(self):
        config = ExperimentConfig(construct_start=50.0, query_start=40.0)
        with pytest.raises(SimulationError):
            config.validate()

    def test_minimum_population(self):
        with pytest.raises(SimulationError):
            ExperimentConfig(peers=5).validate()

    def test_d_max_default(self):
        assert ExperimentConfig(n_min=7).resolved_d_max() == 70.0
        assert ExperimentConfig(d_max=33.0).resolved_d_max() == 33.0

    def test_summary_rows_complete(self, small_report):
        names = [name for name, _ in small_report.summary_rows()]
        assert "load-balance deviation" in names
        assert "query success (churn)" in names

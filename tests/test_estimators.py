"""Tests for the local estimators of Secs. 3.2 / 4.2."""

import math
import random
import statistics

import pytest

from repro.core.estimators import (
    estimate_partition_keys,
    estimate_replica_count,
    estimate_split_fraction,
    sample_keys,
)
from repro.exceptions import DomainError
from repro.pgrid.keyspace import KEY_BITS, float_to_key
from repro.pgrid.keystore import KeyStore


class TestSplitFraction:
    def test_exact_on_known_keys(self):
        keys = [float_to_key(x) for x in (0.1, 0.2, 0.3, 0.6, 0.9)]
        assert estimate_split_fraction(keys, 0) == pytest.approx(3 / 5)

    def test_deeper_level(self):
        # At level 1, the bisection is at 0.25 within [0, 0.5).
        keys = [float_to_key(x) for x in (0.1, 0.2, 0.3, 0.4)]
        assert estimate_split_fraction(keys, 1) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            estimate_split_fraction([], 0)

    def test_keystore_binary_search_path_matches_set_path(self):
        # A peer's sorted KeyStore takes the single-binary-search fast
        # path; it must agree exactly with the comparison sweep over the
        # same keys as a plain set, at every level the keys share.
        rand = random.Random(3)
        for level in (0, 1, 3):
            width = 1 << (KEY_BITS - level)
            base = 1 * width  # all keys share the first `level` bits
            keys = {base + rand.randrange(width) for _ in range(200)}
            assert estimate_split_fraction(KeyStore(keys), level) == pytest.approx(
                estimate_split_fraction(keys, level)
            )

    def test_keystore_rejects_empty_and_bad_level(self):
        with pytest.raises(DomainError):
            estimate_split_fraction(KeyStore(), 0)
        with pytest.raises(DomainError):
            estimate_split_fraction(KeyStore([1]), KEY_BITS)

    def test_unbiased_under_sampling(self):
        rand = random.Random(0)
        keys = [float_to_key(rand.random() * 0.5 + (0.5 if rand.random() < 0.7 else 0)) for _ in range(5000)]
        p_true = estimate_split_fraction(keys, 0)
        estimates = [
            estimate_split_fraction(sample_keys(keys, 20, rng=s), 0)
            for s in range(200)
        ]
        assert statistics.mean(estimates) == pytest.approx(p_true, abs=0.02)


class TestReplicaCount:
    def test_identical_sets_give_n_min(self):
        # The paper's calibration anchor.
        keys = set(range(50))
        assert estimate_replica_count(keys, keys, n_min=5) == pytest.approx(5.0)

    def test_half_overlap(self):
        # Overlap fraction 1/2 = (n_min - 1)/(R - 1)  =>  R = 2 n_min - 1.
        a = set(range(0, 40))
        b = set(range(20, 60))
        assert estimate_replica_count(a, b, n_min=5) == pytest.approx(9.0)

    def test_disjoint_sets_unbounded(self):
        assert math.isinf(estimate_replica_count({1, 2}, {3, 4}, n_min=5))

    def test_empty_sets_unbounded(self):
        assert math.isinf(estimate_replica_count(set(), {1}, n_min=5))

    def test_statistically_calibrated(self):
        # Ground truth: R peers, each key on exactly n_min of them.
        rand = random.Random(42)
        n_min, r_true, n_keys = 5, 20, 400
        holders = {k: rand.sample(range(r_true), n_min) for k in range(n_keys)}
        peer_sets = [set() for _ in range(r_true)]
        for k, hs in holders.items():
            for h in hs:
                peer_sets[h].add(k)
        estimates = []
        for _ in range(100):
            i, j = rand.sample(range(r_true), 2)
            est = estimate_replica_count(peer_sets[i], peer_sets[j], n_min)
            if math.isfinite(est):
                estimates.append(est)
        assert statistics.mean(estimates) == pytest.approx(r_true, rel=0.2)

    def test_rejects_bad_n_min(self):
        with pytest.raises(DomainError):
            estimate_replica_count({1}, {1}, n_min=0)

    def test_keystore_inputs_match_set_inputs(self):
        # The estimators accept peers' sorted KeyStores directly; the
        # overlap-driven estimates must match the set-based results.
        a = set(range(0, 40))
        b = set(range(20, 60))
        for ka, kb in ((KeyStore(a), KeyStore(b)), (KeyStore(a), b), (a, KeyStore(b))):
            assert estimate_replica_count(ka, kb, n_min=5) == pytest.approx(9.0)
            assert estimate_partition_keys(ka, kb) == pytest.approx(80.0)
        assert math.isinf(estimate_replica_count(KeyStore({1, 2}), KeyStore({3}), n_min=5))


class TestPartitionKeys:
    def test_full_overlap(self):
        keys = set(range(30))
        assert estimate_partition_keys(keys, keys) == pytest.approx(30)

    def test_lincoln_petersen(self):
        a = set(range(0, 40))
        b = set(range(20, 60))
        # |A||B|/|A∩B| = 40*40/20 = 80 >= |A ∪ B| = 60: capture-recapture
        # sees beyond the union.
        assert estimate_partition_keys(a, b) == pytest.approx(80.0)

    def test_disjoint_unbounded(self):
        assert math.isinf(estimate_partition_keys({1}, {2}))

    def test_empty_gives_union_size(self):
        assert estimate_partition_keys(set(), {1, 2}) == pytest.approx(2.0)


class TestSampleKeys:
    def test_returns_all_when_m_none(self):
        assert sorted(sample_keys([3, 1, 2], None)) == [1, 2, 3]

    def test_returns_all_when_m_large(self):
        assert sorted(sample_keys([3, 1], 10)) == [1, 3]

    def test_subsample_size(self):
        out = sample_keys(list(range(100)), 7, rng=1)
        assert len(out) == 7
        assert len(set(out)) == 7

    def test_rejects_bad_m(self):
        with pytest.raises(DomainError):
            sample_keys([1, 2, 3], 0)

"""Tests for binary paths over the bisected key space."""

import pytest

from repro.pgrid.bits import Path, ROOT


class TestConstruction:
    def test_root_is_empty(self):
        assert len(ROOT) == 0
        assert ROOT.interval() == (0.0, 1.0)

    def test_from_string_round_trip(self):
        for text in ["0", "1", "0110", "111000111"]:
            assert str(Path.from_string(text)) == text

    def test_from_bits(self):
        assert Path.from_bits([0, 1, 1]) == Path.from_string("011")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Path.from_string("01x")
        with pytest.raises(ValueError):
            Path.from_bits([0, 2])
        with pytest.raises(ValueError):
            Path(bits=4, length=2)  # 100 does not fit in 2 bits
        with pytest.raises(ValueError):
            Path(bits=0, length=-1)

    def test_immutable(self):
        p = Path.from_string("01")
        with pytest.raises(AttributeError):
            p.length = 3


class TestStructure:
    def test_extend_and_parent(self):
        p = Path.from_string("01")
        assert str(p.extend(1)) == "011"
        assert str(p.extend(1).parent()) == "01"
        with pytest.raises(ValueError):
            ROOT.parent()

    def test_sibling(self):
        assert str(Path.from_string("010").sibling()) == "011"
        with pytest.raises(ValueError):
            ROOT.sibling()

    def test_prefix(self):
        p = Path.from_string("0110")
        assert str(p.prefix(2)) == "01"
        assert p.prefix(0) == ROOT
        with pytest.raises(ValueError):
            p.prefix(5)

    def test_bit_indexing(self):
        p = Path.from_string("0110")
        assert [p.bit(i) for i in range(4)] == [0, 1, 1, 0]
        assert list(p) == [0, 1, 1, 0]
        with pytest.raises(IndexError):
            p.bit(4)

    def test_is_prefix_of(self):
        a = Path.from_string("01")
        b = Path.from_string("0110")
        assert a.is_prefix_of(b)
        assert not b.is_prefix_of(a)
        assert ROOT.is_prefix_of(a)
        assert a.is_prefix_of(a)

    def test_common_prefix_length(self):
        a = Path.from_string("0110")
        b = Path.from_string("0101")
        assert a.common_prefix_length(b) == 2
        assert a.common_prefix_length(a) == 4
        assert ROOT.common_prefix_length(a) == 0

    def test_diverges_from(self):
        assert Path.from_string("01").diverges_from(Path.from_string("10"))
        assert not Path.from_string("01").diverges_from(Path.from_string("011"))


class TestGeometry:
    def test_interval_tiling(self):
        # All depth-3 paths tile [0, 1) exactly.
        paths = sorted(Path(bits, 3) for bits in range(8))
        edges = [p.interval() for p in paths]
        assert edges[0][0] == 0.0
        assert edges[-1][1] == 1.0
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert hi == lo

    def test_overlap_fraction(self):
        parent = Path.from_string("0")
        child = Path.from_string("01")
        assert parent.overlap_fraction(child) == pytest.approx(0.5)
        assert child.overlap_fraction(parent) == pytest.approx(1.0)
        assert parent.overlap_fraction(Path.from_string("1")) == 0.0

    def test_key_range_and_contains(self):
        p = Path.from_string("10")
        lo, hi = p.key_range(4)
        assert (lo, hi) == (8, 12)
        assert p.contains_key(9, 4)
        assert not p.contains_key(12, 4)
        with pytest.raises(ValueError):
            Path.from_string("10101").key_range(4)

    def test_ordering_matches_interval_order(self):
        paths = [Path.from_string(s) for s in ["0", "00", "01", "1", "10", "11"]]
        ordered = sorted(paths, key=lambda p: (p.interval()[0], p.length))
        assert sorted(paths) == ordered

    def test_hashable_and_equal(self):
        assert Path.from_string("01") == Path.from_string("01")
        assert len({Path.from_string("01"), Path.from_string("01")}) == 1
        assert Path.from_string("01") != Path.from_string("010")

"""The unified liveness & route-repair subsystem (pgrid.liveness).

Four layers:

* **Tracker unit tests** -- the suspect -> probe -> evict state machine
  in isolation (no simulator).
* **Wire protocol tests** -- hand-built overlays driving the evidence
  paths: refused connects, partition refusals (set_partitions drops are
  *visible* to the sender's routing state), ping/pong probing,
  confirm-on-use staleness probing, and gossip replenishment on
  exchanges and pongs.
* **Scenario-level tests** -- the repaired-vs-unrepaired success gap on
  the message backend, repair counters in ``message_level.repair``, and
  structural invariants surviving gossip-carried references.
* **Oracle-policy tests** -- the data plane's ``repair_routes`` as a
  policy instance (disabled policy = no-op degradation baseline).
"""

import pytest

from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.liveness import LivenessTracker, RouteRepairPolicy, repair_routes
from repro.scenarios import (
    MessageNetConfig,
    MessageScenarioRunner,
    ScenarioRunner,
    run_scenario,
    scenario,
)
from repro.scenarios.invariants import (
    check_partition_tiling,
    check_routing_complementarity,
)
from repro.simnet.engine import Simulator
from repro.simnet.node import NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network


# -- tracker state machine ---------------------------------------------------


class TestLivenessTracker:
    def test_failure_marks_suspect_and_requests_probe(self):
        t = LivenessTracker(RouteRepairPolicy())
        assert not t.suspected(7)
        assert t.note_failure(7) is True  # caller should probe
        assert t.suspected(7)
        assert t.suspects == 1

    def test_second_failure_does_not_request_concurrent_probe(self):
        t = LivenessTracker(RouteRepairPolicy())
        t.note_failure(7)
        t.begin_probe(7)
        assert t.note_failure(7) is False  # probe already in flight
        assert t.suspects == 1  # one suspect, however many strikes

    def test_probe_chain_evicts_after_threshold(self):
        t = LivenessTracker(RouteRepairPolicy(evict_after=2))
        t.note_failure(7)  # strike 1
        nonce = t.begin_probe(7)
        assert t.probe_expired(7, nonce) == "evict"  # strike 2

    def test_fresh_probe_chain_takes_two_silences(self):
        # A confirm-on-use probe starts with no failure evidence.
        t = LivenessTracker(RouteRepairPolicy(evict_after=2))
        nonce = t.begin_probe(7)
        assert t.probe_expired(7, nonce) == "probe"
        nonce = t.begin_probe(7)
        assert t.probe_expired(7, nonce) == "evict"

    def test_alive_clears_suspicion_and_pending_probe(self):
        t = LivenessTracker(RouteRepairPolicy())
        t.note_failure(7)
        nonce = t.begin_probe(7)
        t.note_alive(7, now=12.0)
        assert not t.suspected(7)
        assert t.probe_expired(7, nonce) == ""  # answered: timer is stale
        assert t.last_confirmed[7] == 12.0

    def test_stale_nonce_is_ignored(self):
        t = LivenessTracker(RouteRepairPolicy())
        old = t.begin_probe(7)
        t.note_alive(7, now=1.0)
        new = t.begin_probe(7)
        assert t.probe_expired(7, old) == ""
        assert t.probe_expired(7, new) == "probe"

    def test_cancel_probe_voids_without_striking(self):
        t = LivenessTracker(RouteRepairPolicy())
        nonce = t.begin_probe(7)
        t.cancel_probe(7, nonce)
        assert t.probe_expired(7, nonce) == ""
        assert not t.suspected(7)

    def test_needs_confirmation_tracks_staleness(self):
        t = LivenessTracker(RouteRepairPolicy(confirm_interval_s=60.0))
        assert t.needs_confirmation(7, now=60.0)  # never heard from
        t.note_alive(7, now=100.0)
        assert not t.needs_confirmation(7, now=130.0)
        assert t.needs_confirmation(7, now=160.0)
        t.begin_probe(7)
        assert not t.needs_confirmation(7, now=500.0)  # probe in flight

    def test_eviction_resets_state_for_gossip_readd(self):
        t = LivenessTracker(RouteRepairPolicy())
        t.note_failure(7)
        t.begin_probe(7)
        t.note_evicted(7)
        assert t.evictions == 1
        assert not t.suspected(7)
        assert 7 not in t.probe_nonce


# -- wire-level evidence paths ----------------------------------------------


def build_wire(paths_and_keys, *, latency=0.01, loss=0.0, config=None):
    """Hand-built message-level overlay: one node per path string."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), loss_rate=loss, rng=1)
    config = config or NodeConfig(query_retries=2, query_timeout=5.0)
    nodes = []
    for node_id, (path, keys) in enumerate(paths_and_keys):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = set(keys)
        node.joined = True
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is node:
                continue
            cpl = node.path.common_prefix_length(other.path)
            if cpl < node.path.length:
                node.add_route(cpl, other.node_id)
    return sim, net, nodes


QUADRANTS = [
    ("00", [float_to_key(0.05), float_to_key(0.2)]),
    ("01", [float_to_key(0.3), float_to_key(0.45)]),
    ("10", [float_to_key(0.55), float_to_key(0.7)]),
    ("11", [float_to_key(0.8), float_to_key(0.95)]),
]


class TestWireEvidence:
    def test_refused_connect_evicts_and_query_routes_around(self):
        # Node 2 ("10") is offline; the refused connects evict it and the
        # query still succeeds through the redundancy that remains.
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[2].online = False
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))  # quadrant 11, node 3
        sim.run_until(60.0)
        assert outcomes and outcomes[0].success
        assert outcomes[0].timeouts == 0  # refused, never waited out
        # The dead node is out of node 0's table everywhere.
        assert all(2 not in refs for refs in nodes[0].routing.values())
        assert nodes[0].liveness.evictions >= 1

    def test_partition_refusal_is_visible_to_the_senders_routing_state(self):
        # Satellite fix: set_partitions drops used to be invisible to
        # the sender; now they are failure evidence like any refused
        # connect -- suspect, probe (also refused), evict.
        sim, net, nodes = build_wire(QUADRANTS)
        net.set_partitions([[0, 1], [2, 3]])
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(60.0)
        assert net.drops_partition > 0
        assert nodes[0].liveness.suspects >= 1
        assert nodes[0].liveness.evictions >= 2  # both cross-cut refs
        assert not nodes[0].routing.get(0)  # level 0 emptied by the cut
        # The failure was locally observed end to end: the origin's own
        # dead end retries/fails immediately, no timeout window burned.
        assert outcomes and not outcomes[0].success
        assert outcomes[0].timeouts == 0
        assert outcomes[0].latency < 1.0
        assert outcomes[0].attempts == 3

    def test_heal_then_exchange_gossip_replenishes_the_level(self):
        # The full repair loop: partition evicts node 0's level-0 refs;
        # after healing, one anti-entropy exchange from node 1 gossips
        # candidates back in, and queries succeed again.
        sim, net, nodes = build_wire(QUADRANTS)
        net.set_partitions([[0, 1], [2, 3]])
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(60.0)
        assert not nodes[0].routing.get(0)
        net.heal_partitions()
        nodes[1].initiate_exchange(0)
        sim.run_until(120.0)
        refilled = nodes[0].routing.get(0, [])
        assert set(refilled) & {2, 3}
        assert nodes[0].liveness.replacements >= 1
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(180.0)
        assert outcomes and outcomes[0].success

    def test_pong_gossip_replenishes_depleted_levels(self):
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[0].routing[0] = []  # depleted level
        nodes[0]._send_probe(1)  # ping a live neighbor
        sim.run_until(10.0)
        # The pong carried node 1's live references; level 0 refilled.
        assert set(nodes[0].routing[0]) & {2, 3}
        assert nodes[0].liveness.replacements >= 1

    def test_gossip_only_fills_complementary_levels(self):
        # Whatever gossip installs must keep the structural invariant:
        # a reference at level l lives under path[:l] + ~path[l].
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[0].routing = {0: [], 1: []}
        nodes[1].initiate_exchange(0)
        nodes[0]._send_probe(2)
        sim.run_until(30.0)
        for level, refs in nodes[0].routing.items():
            comp = nodes[0].path.prefix(level).extend(1 - nodes[0].path.bit(level))
            for ref in refs:
                assert comp.is_prefix_of(nodes[ref].path), (level, ref)

    def test_refresh_routes_probes_stale_refs_and_evicts_the_dead(self):
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[3].online = False
        sim.run_until(70.0)  # everything is stale (> confirm_interval_s)
        launched = nodes[0].refresh_routes()
        assert launched >= 3  # refs 1, 2, 3 all unconfirmed
        sim.run_until(80.0)  # pongs are back, the refused ref is out
        assert all(3 not in refs for refs in nodes[0].routing.values())
        assert nodes[0].liveness.evictions == 1
        # The live ones answered and are confirmed now.
        assert nodes[0].liveness.last_confirmed[1] > 0
        assert nodes[0].liveness.last_confirmed[2] > 0
        assert nodes[0].refresh_routes() == 0  # nothing stale anymore

    def test_repair_disabled_reproduces_blind_routing(self):
        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(QUADRANTS, config=config)
        nodes[3].online = False
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(120.0)
        assert outcomes and not outcomes[0].success
        assert outcomes[0].timeouts >= 1  # nobody observed the refusals
        tracker = nodes[0].liveness
        assert tracker.suspects == tracker.probes == tracker.evictions == 0
        # The dead reference is still in the table: blind forever.
        assert any(3 in refs for refs in nodes[0].routing.values())

    def test_returning_node_restarts_stalled_probe_chains(self):
        # A node that churns offline mid-probe must not leave suspects
        # stranded (suspect but unprobed = routed around forever).
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[0].liveness.note_failure(3)  # suspect, probe not started
        nodes[0].online = False
        nodes[0].set_online(True)
        assert 3 in nodes[0].liveness.probe_nonce  # chain restarted
        sim.run_until(30.0)
        assert not nodes[0].liveness.suspected(3)  # node 3 answered


# -- scenario level ----------------------------------------------------------


class TestScenarioRepair:
    def test_repair_closes_the_mass_leave_gap(self):
        spec = scenario("mass-leave", n_peers=256, seed=23, duration_scale=0.25)
        on = run_scenario(spec, backend="message")
        off = run_scenario(
            spec,
            backend="message",
            net_config=MessageNetConfig(repair=RouteRepairPolicy(enabled=False)),
        )
        assert on.totals["success_rate"] > off.totals["success_rate"]
        repair = on.message_level["repair"]
        assert repair["enabled"]
        assert repair["probes"] > 0
        assert repair["evictions"] > 0
        assert repair["replacements"] > 0
        assert repair["repair_bytes"] > 0

    def test_repair_off_zeroes_the_counters(self):
        spec = scenario("mass-leave", n_peers=64, seed=5, duration_scale=0.1)
        off = run_scenario(
            spec,
            backend="message",
            net_config=MessageNetConfig(repair=RouteRepairPolicy(enabled=False)),
        )
        repair = off.message_level["repair"]
        assert repair == {
            "enabled": False, "suspects": 0, "probes": 0,
            "evictions": 0, "replacements": 0, "repair_bytes": 0,
        }
        assert off.message_level["config"]["repair_enabled"] is False

    def test_repair_traffic_lands_in_maintenance_bandwidth(self):
        spec = scenario("mass-leave", n_peers=64, seed=5, duration_scale=0.1)
        on = run_scenario(spec, backend="message")
        off = run_scenario(
            spec,
            backend="message",
            net_config=MessageNetConfig(repair=RouteRepairPolicy(enabled=False)),
        )
        # Ping/pong/gossip are maintenance-category wire bytes (the
        # Fig. 8 split), so the repaired run pays visibly more there.
        assert on.totals["bytes_maintenance"] > off.totals["bytes_maintenance"]
        assert on.message_level["repair"]["repair_bytes"] > 0

    @pytest.mark.parametrize("name", ["paper-sec51-churn", "mass-leave"])
    def test_gossip_carried_refs_survive_structural_invariants(self, name):
        # Gossip installs references it has never seen full paths for
        # (only a divergence prefix) -- the complementarity invariant
        # must still hold on every table of the end state.  Partition
        # tiling is asserted in refinement-tolerant mode: maintenance
        # exchanges can legitimately catch an overloaded partition
        # mid-refinement at snapshot time (parent path coexisting with
        # its children), but gaps or non-nested overlap are still bugs.
        spec = scenario(name, n_peers=48, seed=9, duration_scale=0.15)
        runner = MessageScenarioRunner(spec)
        report = runner.run()
        assert report.message_level["repair"]["probes"] > 0
        net = runner.as_network()
        check_routing_complementarity(net)
        check_partition_tiling(net, allow_refinement=True)

    def test_no_maintenance_scenario_keeps_full_invariants(self):
        # Without exchanges the ideal structure must survive a repair-
        # active churn scenario untouched (probes/evictions never move
        # paths or keys).
        from repro.scenarios import ChurnSpec, Phase, ScenarioSpec

        spec = ScenarioSpec(
            name="liveness-invariant-probe",
            phases=(
                Phase(
                    name="churny",
                    duration_s=120.0,
                    query_rate=2.0,
                    churn=ChurnSpec(
                        min_offline_s=10.0, max_offline_s=20.0,
                        min_online_s=20.0, max_online_s=40.0,
                    ),
                ),
            ),
            n_peers=32,
            seed=13,
            report_bin_s=30.0,
        )
        runner = MessageScenarioRunner(spec)
        runner.run()
        net = runner.as_network()
        check_partition_tiling(net)
        check_routing_complementarity(net)
        assert net.is_consistent()


# -- the oracle policy instance (data plane) ---------------------------------


class TestOraclePolicy:
    def test_disabled_policy_is_a_noop(self):
        import random

        from repro.pgrid.network import PGridNetwork
        from repro.workloads.datasets import workload_keys

        rand = random.Random(3)
        keys = [k for ks in workload_keys("U", 32, 8, seed=rand) for k in ks]
        net = PGridNetwork.ideal(keys, 32, d_max=40, n_min=3, rng=rand)
        victim = next(iter(net.peers.values()))
        victim.online = False
        before = {
            pid: {lvl: list(refs) for lvl, refs in p.routing.levels.items()}
            for pid, p in net.peers.items()
        }
        assert repair_routes(
            net, policy=RouteRepairPolicy(enabled=False), rng=1
        ) == 0
        after = {
            pid: {lvl: list(refs) for lvl, refs in p.routing.levels.items()}
            for pid, p in net.peers.items()
        }
        assert before == after
        assert repair_routes(net, policy=RouteRepairPolicy(), rng=1) > 0

    def test_dataplane_runner_routes_maintenance_through_the_policy(self):
        spec = scenario("mass-leave", n_peers=64, seed=5, duration_scale=0.1)
        repaired = ScenarioRunner(spec).run()
        blind = ScenarioRunner(
            spec, repair_policy=RouteRepairPolicy(enabled=False)
        ).run()
        assert repaired.totals["repairs"] > 0
        assert blind.totals["repairs"] == 0
        assert (
            repaired.totals["success_rate"] >= blind.totals["success_rate"]
        )

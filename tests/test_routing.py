"""Tests for routing tables."""

import random

from repro.pgrid.keyspace import float_to_key
from repro.pgrid.network import PGridNetwork
from repro.pgrid.routing import RoutingTable


class TestRoutingTable:
    def test_add_and_refs(self):
        table = RoutingTable()
        assert table.add(0, 7)
        assert not table.add(0, 7)  # duplicate
        assert table.refs(0) == [7]
        assert table.refs(3) == []

    def test_bounded_per_level(self):
        table = RoutingTable(max_refs_per_level=2)
        for peer in (1, 2, 3):
            table.add(0, peer)
        assert len(table.refs(0)) == 2
        assert table.refs(0) == [2, 3]  # oldest evicted

    def test_remove_everywhere(self):
        table = RoutingTable()
        table.add(0, 5)
        table.add(1, 5)
        table.add(1, 6)
        table.remove(5)
        assert table.refs(0) == []
        assert table.refs(1) == [6]

    def test_choose_prefers_non_excluded(self):
        table = RoutingTable()
        table.add(0, 1)
        table.add(0, 2)
        rand = random.Random(0)
        picks = {table.choose(0, rng=rand, exclude=[1]) for _ in range(10)}
        assert picks == {2}

    def test_choose_falls_back_when_all_excluded(self):
        table = RoutingTable()
        table.add(0, 1)
        assert table.choose(0, rng=1, exclude=[1]) == 1

    def test_choose_empty_level(self):
        assert RoutingTable().choose(0, rng=1) is None

    def test_all_refs_and_contains(self):
        table = RoutingTable()
        table.add(0, 1)
        table.add(2, 9)
        assert sorted(table.all_refs()) == [1, 9]
        assert 9 in table
        assert 4 not in table

    def test_depth_counts_populated_levels(self):
        table = RoutingTable()
        table.add(0, 1)
        table.add(5, 2)
        assert table.depth() == 2

    def test_refs_returns_a_copy(self):
        # Regression guard: query code shuffles/filters the result of
        # refs(); if it ever aliased the internal list, a query would
        # silently reorder the routing table of the peer it traversed.
        table = RoutingTable()
        for peer in (1, 2, 3):
            table.add(0, peer)
        out = table.refs(0)
        out.reverse()
        out.append(99)
        assert table.refs(0) == [1, 2, 3]

    def test_refs_view_is_zero_copy_and_safe_when_empty(self):
        table = RoutingTable()
        table.add(2, 7)
        assert list(table.refs_view(2)) == [7]
        assert table.refs_view(2) is table.levels[2]  # no per-probe copy
        assert len(table.refs_view(0)) == 0


class TestRebuildRouting:
    def test_rebuild_never_emits_levels_beyond_path_length(self):
        rand = random.Random(3)
        keys = [float_to_key(rand.random()) for _ in range(600)]
        net = PGridNetwork.ideal(keys, 64, d_max=40, n_min=3, rng=1)
        net.rebuild_routing(rng=5)
        for peer in net.peers.values():
            for level, refs in peer.routing.levels.items():
                assert level < peer.path.length, (
                    f"peer {peer.peer_id} (path length {peer.path.length}) "
                    f"has references at level {level}"
                )
                assert refs, "rebuild_routing must not leave empty levels behind"
        assert net.is_consistent()

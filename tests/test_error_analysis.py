"""Tests for the Sec. 3.2 error-propagation analysis."""

import statistics

import pytest

from repro.analysis.error import (
    phi_factor,
    predict_bias,
    predict_error_std,
    psi_factor,
)
from repro.core import mva
from repro.core.probabilities import P_STAR
from repro.exceptions import DomainError


class TestFactors:
    def test_phi_is_negative_and_bounded(self):
        # Paper bound: -1/2 < Phi < -1/(2e) (a systematic *negative*
        # shift of the side-1 count).
        for p in (0.32, 0.4, 0.5):
            phi = phi_factor(p, 1000)
            assert -0.75 < phi < 0.0

    def test_psi_is_positive_and_bounded(self):
        for p in (0.32, 0.4, 0.5):
            psi = psi_factor(p, 1000)
            assert 0.0 < psi <= 1.0

    def test_domain_guard(self):
        with pytest.raises(DomainError):
            phi_factor(0.1, 1000)
        with pytest.raises(DomainError):
            predict_bias(0.2, 1000, 10)


class TestPredictions:
    def test_bias_sign_matches_simulation(self):
        # Plug-in estimation shifts side-1 down (side-0 up): both the
        # prediction and the SAM measurement must agree on the sign.
        p, n, m = 0.35, 1000, 10
        pred = predict_bias(p, n, m)
        runs = [mva.run_sam(n, p, m=m, rng=s) for s in range(25)]
        measured = statistics.mean(r.y - n * (1 - p) for r in runs)
        assert pred < 0
        assert measured < 0

    def test_bias_order_of_magnitude(self):
        p, n, m = 0.35, 1000, 10
        pred = abs(predict_bias(p, n, m))
        runs = [mva.run_sam(n, p, m=m, rng=s) for s in range(25)]
        measured = abs(statistics.mean(r.y - n * (1 - p) for r in runs))
        assert measured / 4 < pred < measured * 4

    def test_bias_shrinks_with_sample_size(self):
        assert abs(predict_bias(0.35, 1000, 100)) < abs(predict_bias(0.35, 1000, 5))

    def test_std_positive_and_scales_with_n(self):
        small = predict_error_std(0.4, 500, 10)
        large = predict_error_std(0.4, 2000, 10)
        assert 0 < small < large

    def test_std_order_of_magnitude(self):
        p, n, m = 0.4, 1000, 10
        pred = predict_error_std(p, n, m)
        runs = [mva.run_sam(n, p, m=m, rng=s) for s in range(30)]
        measured = statistics.pstdev([r.y - n * (1 - p) for r in runs])
        assert measured / 5 < pred < measured * 5

    def test_validation(self):
        with pytest.raises(DomainError):
            predict_bias(0.4, 1000, 0)
        with pytest.raises(DomainError):
            predict_error_std(0.4, 1000, -1)

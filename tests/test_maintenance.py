"""Tests for sequential maintenance (joins, failure, repair)."""

import random

import pytest

from repro.pgrid.maintenance import (
    fail_peer,
    repair_routes,
    sequential_build,
    sequential_join,
)
from repro.pgrid.network import PGridNetwork
from repro.pgrid.keyspace import float_to_key
from repro.workloads.datasets import flatten, uniform_keys


@pytest.fixture(scope="module")
def seq_net():
    pk = uniform_keys(peers=60, keys_per_peer=10, seed=9)
    result = sequential_build(pk, d_max=50, n_min=3, rng=2)
    return pk, result


class TestSequentialBuild:
    def test_all_peers_joined(self, seq_net):
        pk, result = seq_net
        assert len(result.network.peers) == len(pk)

    def test_network_consistent(self, seq_net):
        _, result = seq_net
        assert result.network.is_consistent()

    def test_keys_searchable(self, seq_net):
        pk, result = seq_net
        net = result.network
        rand = random.Random(1)
        keys = list(set(flatten(pk)))
        found = 0
        sample = rand.sample(keys, 80)
        for key in sample:
            res = net.lookup(key, rng=rand)
            if res.found and res.value_present:
                found += 1
        assert found / len(sample) >= 0.95

    def test_latency_equals_messages(self, seq_net):
        _, result = seq_net
        # Sequential joins serialize: wall-clock latency == total messages.
        assert result.latency == result.total_messages
        assert result.total_messages == sum(result.join_messages)

    def test_join_cost_grows_with_network(self, seq_net):
        _, result = seq_net
        early = sum(result.join_messages[:10])
        late = sum(result.join_messages[-10:])
        assert late > early  # routing walks lengthen as the trie deepens


class TestSingleJoin:
    def test_first_join_is_free(self):
        net = PGridNetwork()
        stats = sequential_join(net, 0, [1, 2, 3], d_max=50, n_min=2, rng=1)
        assert stats.messages == 0
        assert len(net.peers) == 1

    def test_join_becomes_replica_when_underloaded(self):
        net = PGridNetwork()
        sequential_join(net, 0, [float_to_key(0.1)], d_max=50, n_min=2, rng=1)
        stats = sequential_join(net, 1, [float_to_key(0.2)], d_max=50, n_min=2, rng=1)
        assert not stats.split
        assert net.peers[1].replicas == {0}
        assert net.peers[0].replicas == {1}

    def test_join_splits_when_overloaded(self):
        net = PGridNetwork()
        keys = [float_to_key(i / 40) for i in range(40)]
        rand = random.Random(3)
        sequential_join(net, 0, keys[:20], d_max=8, n_min=1, rng=rand)
        sequential_join(net, 1, keys[20:], d_max=8, n_min=1, rng=rand)
        stats = sequential_join(net, 2, [float_to_key(0.99)], d_max=8, n_min=1, rng=rand)
        assert any(p.path.length > 0 for p in net.peers.values())
        assert net.is_consistent()


class TestFailureAndRepair:
    def test_fail_peer_marks_offline(self, seq_net):
        _, result = seq_net
        net = result.network
        fail_peer(net, 0)
        assert not net.peers[0].online
        net.peers[0].online = True

    def test_repair_replaces_dead_references(self):
        pk = uniform_keys(peers=40, keys_per_peer=10, seed=4)
        result = sequential_build(pk, d_max=40, n_min=2, rng=5)
        net = result.network
        rand = random.Random(6)
        victims = rand.sample(sorted(net.peers), 8)
        for v in victims:
            fail_peer(net, v)
        repaired = repair_routes(net, rng=7)
        assert repaired >= 0
        # After repair no live peer should route through a known-dead ref.
        for peer in net.peers.values():
            for refs in peer.routing.levels.values():
                for ref in refs:
                    assert net.peers[ref].online

"""Tests for anti-entropy replica reconciliation."""

import pytest

from repro.exceptions import DomainError
from repro.pgrid.bits import Path
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.replication import (
    anti_entropy_sweep,
    reconcile,
    replica_divergence,
)


def make_pair():
    a = PGridPeer(peer_id=0, path=Path.from_string("01"))
    b = PGridPeer(peer_id=1, path=Path.from_string("01"))
    lo, _ = a.path.key_range(53)
    a.keys = {lo + 1, lo + 2}
    b.keys = {lo + 2, lo + 3}
    return a, b


class TestReconcile:
    def test_union_after_reconcile(self):
        a, b = make_pair()
        stats = reconcile(a, b)
        assert a.keys == b.keys
        assert len(a.keys) == 3
        assert stats.keys_moved == 2
        assert stats.a_received == 1 and stats.b_received == 1

    def test_replica_discovery(self):
        a, b = make_pair()
        reconcile(a, b)
        assert b.peer_id in a.replicas
        assert a.peer_id in b.replicas

    def test_idempotent(self):
        a, b = make_pair()
        reconcile(a, b)
        stats = reconcile(a, b)
        assert stats.keys_moved == 0

    def test_rejects_cross_partition(self):
        a, b = make_pair()
        b.path = Path.from_string("10")
        b.keys = set()
        with pytest.raises(DomainError):
            reconcile(a, b)


class TestSweep:
    def _network(self):
        net = PGridNetwork()
        lo, _ = Path.from_string("0").key_range(53)
        for i in range(4):
            peer = PGridPeer(peer_id=i, path=Path.from_string("0"))
            peer.keys = {lo + i}
            net.peers[i] = peer
        return net

    def test_sweep_converges(self):
        net = self._network()
        anti_entropy_sweep(net, rounds=6, rng=1)
        assert replica_divergence(net) == pytest.approx(0.0)
        for peer in net.peers.values():
            assert len(peer.keys) == 4

    def test_divergence_positive_before_convergence(self):
        net = self._network()
        assert replica_divergence(net) > 0.4

    def test_sweep_skips_offline(self):
        net = self._network()
        for i in (1, 2, 3):
            net.peers[i].online = False
        moved = anti_entropy_sweep(net, rounds=3, rng=2)
        assert moved == 0

    def test_rejects_bad_rounds(self):
        with pytest.raises(DomainError):
            anti_entropy_sweep(PGridNetwork(), rounds=0)

"""Determinism regression: same spec + seed => byte-identical report.

Two layers of protection:

* **Run-to-run**: executing the same :class:`ScenarioSpec` twice in one
  process yields byte-identical ``to_json()`` output (catches hidden
  shared state, hash-order dependence, unseeded randomness).
* **Golden trace**: one small scenario's report is pinned as a fixture
  (``tests/data/scenario_golden.json``); any change to RNG stream
  derivation, event ordering or report assembly shows up as a diff of
  that file.  Regenerate deliberately with::

      PYTHONPATH=src python -c "
      from repro.scenarios import ScenarioRunner, scenario
      spec = scenario('uniform-baseline', n_peers=24, seed=11, duration_scale=0.2)
      print(ScenarioRunner(spec).run().to_json())" > tests/data/scenario_golden.json
"""

import json
import pathlib

import pytest

from repro.scenarios import run_scenario, scenario

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "scenario_golden.json"

#: The pinned configuration of the golden trace.
GOLDEN_SPEC = dict(n_peers=24, seed=11, duration_scale=0.2)


def run_json(name, backend="dataplane", **kwargs):
    return run_scenario(scenario(name, **kwargs), backend=backend).to_json()


@pytest.mark.parametrize("backend", ["dataplane", "message"])
@pytest.mark.parametrize(
    "name, kwargs",
    [
        ("uniform-baseline", dict(n_peers=24, seed=11, duration_scale=0.1)),
        ("paper-sec51-churn", dict(n_peers=32, seed=3, duration_scale=0.1)),
        ("mass-join", dict(n_peers=32, seed=3, duration_scale=0.1)),
    ],
)
def test_same_seed_reproduces_byte_identical_reports(name, kwargs, backend):
    assert run_json(name, backend, **kwargs) == run_json(name, backend, **kwargs)


def test_different_seeds_differ():
    a = run_json("uniform-baseline", n_peers=24, seed=1, duration_scale=0.1)
    b = run_json("uniform-baseline", n_peers=24, seed=2, duration_scale=0.1)
    assert a != b


def test_golden_trace_matches_fixture():
    produced = run_json("uniform-baseline", **GOLDEN_SPEC)
    pinned = GOLDEN_PATH.read_text().strip()
    if produced != pinned:
        # Fail with a structural diff hint before the byte comparison.
        got, want = json.loads(produced), json.loads(pinned)
        for key in want:
            assert got[key] == want[key], f"golden mismatch in section {key!r}"
    assert produced == pinned


def test_golden_fixture_is_valid_json_with_expected_shape():
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["scenario"] == "uniform-baseline"
    assert payload["seed"] == GOLDEN_SPEC["seed"]
    assert payload["n_peers_start"] == GOLDEN_SPEC["n_peers"]
    assert payload["totals"]["queries"] > 0
    assert payload["series"], "golden report must carry a time series"

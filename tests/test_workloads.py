"""Tests for the evaluation workloads."""

import statistics

import pytest

from repro.exceptions import DomainError
from repro.pgrid.keyspace import MAX_KEY, string_to_key
from repro.workloads.corpus import Document, SyntheticCorpus, extract_keywords
from repro.workloads.datasets import flatten, uniform_keys, workload_keys
from repro.workloads.distributions import (
    DISTRIBUTIONS,
    NormalDistribution,
    ParetoDistribution,
    UniformDistribution,
    distribution,
)


class TestDistributions:
    def test_registry_has_paper_labels(self):
        assert set(DISTRIBUTIONS) == {"U", "P0.5", "P1.0", "P1.5", "N", "A"}

    def test_lookup_unknown_label(self):
        with pytest.raises(DomainError):
            distribution("Zipf99")

    @pytest.mark.parametrize("label", sorted(DISTRIBUTIONS))
    def test_samples_in_unit_interval(self, label):
        xs = DISTRIBUTIONS[label].sample_floats(500, rng=1)
        assert len(xs) == 500
        assert all(0.0 <= x < 1.0 for x in xs)

    @pytest.mark.parametrize("label", sorted(DISTRIBUTIONS))
    def test_keys_in_range(self, label):
        keys = DISTRIBUTIONS[label].sample_keys(200, rng=2)
        assert all(0 <= k < MAX_KEY for k in keys)

    def test_uniform_mean(self):
        xs = UniformDistribution().sample_floats(5000, rng=3)
        assert statistics.mean(xs) == pytest.approx(0.5, abs=0.03)

    def test_pareto_skew_ordering(self):
        # Smaller shape => heavier concentration near the scale point.
        medians = {}
        for shape in (0.5, 1.0, 1.5):
            xs = ParetoDistribution(shape=shape).sample_floats(4000, rng=4)
            medians[shape] = statistics.median(xs)
        assert medians[1.5] < medians[0.5]  # heavier tail pushes mass up

    def test_pareto_more_skewed_than_uniform(self):
        xs = ParetoDistribution(shape=1.0).sample_floats(4000, rng=5)
        assert statistics.median(xs) < 0.05  # mass concentrated near scale

    def test_normal_concentration(self):
        xs = NormalDistribution().sample_floats(4000, rng=6)
        inside = sum(1 for x in xs if 0.35 < x < 0.65)
        assert inside / len(xs) > 0.98

    def test_pareto_validation(self):
        with pytest.raises(DomainError):
            ParetoDistribution(shape=0.0)
        with pytest.raises(DomainError):
            ParetoDistribution(scale=1.5)
        with pytest.raises(DomainError):
            NormalDistribution(sigma=0.0)

    def test_reproducible_given_seed(self):
        a = DISTRIBUTIONS["P1.0"].sample_keys(50, rng=42)
        b = DISTRIBUTIONS["P1.0"].sample_keys(50, rng=42)
        assert a == b


class TestCorpus:
    def test_vocabulary_size_and_shape(self):
        corpus = SyntheticCorpus(vocabulary_size=500, rng=1)
        assert len(corpus.vocabulary) == 500
        assert all(3 <= len(w) <= 10 for w in corpus.vocabulary)

    def test_zipf_head_dominates(self):
        corpus = SyntheticCorpus(vocabulary_size=500, rng=2)
        draws = [corpus.sample_term(rng_seed) for rng_seed in range(2000)]
        counts = {}
        for term in draws:
            counts[term] = counts.get(term, 0) + 1
        top = corpus.vocabulary[0]
        assert counts.get(top, 0) > 2000 / 500 * 5  # way above uniform share

    def test_documents_and_postings(self):
        corpus = SyntheticCorpus(vocabulary_size=300, rng=3)
        docs = corpus.generate_documents(20, terms_per_doc=30, rng=4)
        assert len(docs) == 20
        index = corpus.postings(docs)
        for term, doc_ids in index.items():
            for did in doc_ids:
                assert term in docs[did].term_set()

    def test_term_keys_order_preserving(self):
        corpus = SyntheticCorpus(vocabulary_size=200, rng=5)
        words = sorted(corpus.vocabulary)[:20]
        keys = [string_to_key(w) for w in words]
        assert keys == sorted(keys)

    def test_keyword_extraction_filters_stopwords(self):
        corpus = SyntheticCorpus(vocabulary_size=300, rng=6)
        stop = corpus.vocabulary[0]
        doc = Document(doc_id=0, terms=[stop] * 20 + ["uniqueword"] * 3)
        kws = extract_keywords(doc, corpus=corpus, max_keywords=5)
        assert stop not in kws
        assert "uniqueword" in kws

    def test_keyword_extraction_ranked_by_frequency(self):
        doc = Document(doc_id=0, terms=["aa"] * 5 + ["bb"] * 3 + ["cc"])
        kws = extract_keywords(doc, max_keywords=2)
        assert kws == ["aa", "bb"]

    def test_validation(self):
        with pytest.raises(DomainError):
            SyntheticCorpus(vocabulary_size=3)
        with pytest.raises(DomainError):
            extract_keywords(Document(0, ["x"]), max_keywords=0)


class TestDatasets:
    def test_shapes(self):
        pk = workload_keys("U", peers=12, keys_per_peer=7, seed=1)
        assert len(pk) == 12
        assert all(len(keys) == 7 for keys in pk)
        assert len(flatten(pk)) == 84

    def test_uniform_alias(self):
        assert len(uniform_keys(5, 3, seed=2)) == 5

    def test_validation(self):
        with pytest.raises(DomainError):
            workload_keys("U", peers=0)
        with pytest.raises(DomainError):
            workload_keys("U", peers=3, keys_per_peer=0)

    def test_deterministic(self):
        assert workload_keys("N", 6, 4, seed=9) == workload_keys("N", 6, 4, seed=9)

"""Copy-free forwarding must not alias: the four forward sites.

The wire-kernel fast path replaced the per-hop ``dict(payload)`` copies
in ``simnet/node.py`` with minimal fresh forward dicts whose *values*
are shared by reference.  The invariant these tests pin is the one that
makes that safe: every forward owns its own **container**, so a handler
mutating the payload dict it received -- or a later hop mutating the
forward it was handed -- can never corrupt a sibling message that is
already on the wire.  The four audited sites are ``_route_query``,
``_route_write``, and both ``_route_range`` forwards (the
not-responsible relay and the responsible-split remainder, whose
sibling is the RANGE_PART slice built from the same incoming payload).
"""

from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key
from repro.simnet import protocol as P
from repro.simnet.engine import Simulator
from repro.simnet.node import KEY_BITS, NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network


def build_wire(paths_and_keys, *, latency=0.01, config=None):
    """Hand-built message-level overlay: one node per path string."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), loss_rate=0.0, rng=1)
    config = config or NodeConfig(query_retries=2, query_timeout=5.0)
    nodes = []
    for node_id, (path, keys) in enumerate(paths_and_keys):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = set(keys)
        node.joined = True
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is node:
                continue
            cpl = node.path.common_prefix_length(other.path)
            if cpl < node.path.length:
                node.add_route(cpl, other.node_id)
    return sim, net, nodes


QUADRANTS = [
    ("00", [float_to_key(0.05), float_to_key(0.2)]),
    ("01", [float_to_key(0.3), float_to_key(0.45)]),
    ("10", [float_to_key(0.55), float_to_key(0.7)]),
    ("11", [float_to_key(0.8), float_to_key(0.95)]),
]


def capture_sends(node):
    """Record every (kind, payload) the node puts on the wire."""
    sent = []
    original = node.send

    def recording(dst, kind, payload, **kwargs):
        sent.append((kind, payload))
        return original(dst, kind, payload, **kwargs)

    node.send = recording
    return sent


def clobber(payload):
    """Mutate a payload dict the way a buggy handler could: in place."""
    for key in list(payload):
        payload[key] = "clobbered"


class TestForwardOwnsItsContainer:
    """Unit audit of each forward site: fresh dict, no shared container."""

    def test_query_forward(self):
        sim, net, nodes = build_wire(QUADRANTS)
        sent = capture_sends(nodes[0])
        key = float_to_key(0.85)  # quadrant 11: node 0 must relay
        incoming = {"key": key, "origin": 3, "qid": 99, "attempt": 1, "hops": 2}
        nodes[0]._route_query(incoming)
        kinds = [kind for kind, _ in sent]
        assert kinds == [P.QUERY]
        forward = sent[0][1]
        assert forward is not incoming
        clobber(incoming)
        assert forward == {
            "key": key, "origin": 3, "qid": 99, "attempt": 1, "hops": 3,
        }

    def test_write_forward(self):
        sim, net, nodes = build_wire(QUADRANTS)
        sent = capture_sends(nodes[0])
        key = float_to_key(0.3)  # quadrant 01: node 0 must relay
        incoming = {
            "key": key, "op": "insert", "origin": 3, "qid": 7,
            "attempt": 1, "hops": 1,
        }
        nodes[0]._route_write(incoming)
        kinds = [kind for kind, _ in sent]
        assert kinds == [P.INSERT]
        forward = sent[0][1]
        assert forward is not incoming
        clobber(incoming)
        assert forward == {
            "key": key, "op": "insert", "origin": 3, "qid": 7,
            "attempt": 1, "hops": 2,
        }

    def test_range_relay_forward(self):
        sim, net, nodes = build_wire(QUADRANTS)
        sent = capture_sends(nodes[0])
        lo, hi = float_to_key(0.55), float_to_key(0.7)
        incoming = {
            "lo": lo, "hi": hi, "cursor": lo, "origin": 3, "qid": 42,
            "attempt": 1, "hops": 0,
        }
        nodes[0]._route_range(incoming)  # cursor in quadrant 10: relay
        kinds = [kind for kind, _ in sent]
        assert kinds == [P.RANGE_QUERY]
        forward = sent[0][1]
        assert forward is not incoming
        clobber(incoming)
        assert forward == {
            "lo": lo, "hi": hi, "cursor": lo, "origin": 3, "qid": 42,
            "attempt": 1, "hops": 1,
        }

    def test_range_split_siblings(self):
        # The responsible-split site: one incoming payload fans out into
        # a RANGE_PART slice home AND a remainder forward.  Mutating
        # either sibling -- or the incoming payload -- must not reach
        # the other two dicts.
        sim, net, nodes = build_wire(QUADRANTS)
        sent = capture_sends(nodes[0])
        lo = float_to_key(0.05)
        hi = float_to_key(0.45)  # spans quadrants 00 and 01
        incoming = {
            "lo": lo, "hi": hi, "cursor": lo, "origin": 3, "qid": 11,
            "attempt": 2, "hops": 1,
        }
        nodes[0]._route_range(incoming)
        by_kind = dict(sent)
        assert set(by_kind) == {P.RANGE_PART, P.RANGE_QUERY}
        part, forward = by_kind[P.RANGE_PART], by_kind[P.RANGE_QUERY]
        assert part is not incoming and forward is not incoming
        part_hi = nodes[0].path.key_range(KEY_BITS)[1]
        expected_forward = {
            "lo": lo, "hi": hi, "cursor": part_hi, "origin": 3, "qid": 11,
            "attempt": 2, "hops": 2,
        }
        expected_part_keys = part["keys"]
        clobber(incoming)
        clobber(part)
        assert forward == expected_forward
        clobber(forward)
        # part was clobbered above on purpose; what matters is that its
        # keys list was never shared with anything clobbered since.
        assert expected_part_keys == [float_to_key(0.05), float_to_key(0.2)]


class TestHandlerMutationCannotCorruptSibling:
    """End to end: a relay that trashes its received payload *after*
    forwarding must not affect the hop already on the wire."""

    def test_query_survives_a_payload_trashing_relay(self):
        sim, net, nodes = build_wire(QUADRANTS)
        # Pin node 0's level-0 routing to the relay (node 2) so the
        # query must pass through the mutating handler.
        nodes[0].routing[0] = [2]
        original = nodes[2]._route_query

        def trashing(payload):
            original(payload)
            clobber(payload)

        nodes[2]._route_query = trashing
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))  # quadrant 11, via node 2
        sim.run_until(60.0)
        assert outcomes and outcomes[0].success
        assert outcomes[0].timeouts == 0

    def test_range_survives_a_payload_trashing_splitter(self):
        sim, net, nodes = build_wire(QUADRANTS)
        # Node 2 splits the range: slice home + remainder forward, then
        # trashes the payload both siblings were built from.
        original = nodes[2]._route_range

        def trashing(payload):
            original(payload)
            clobber(payload)

        nodes[2]._route_range = trashing
        results = []
        nodes[0].on_range_done = lambda nid, qid, out: results.append(out)
        nodes[0].issue_range_query(float_to_key(0.55), float_to_key(0.95))
        sim.run_until(60.0)
        assert results and results[0].success
        # 0.55 and 0.7 from quadrant 10, 0.8 from quadrant 11.
        assert results[0].keys_found == 3

#!/usr/bin/env python
"""Regenerate or verify ``scenario_message_digests.json``.

The digests pin message-backend determinism; any change to RNG stream
derivation, transport accounting, the node protocol or report assembly
shifts them.  Two tiers live in one file:

* ``digests`` -- every library scenario at N=1024 (the acceptance-level
  full-population pin, checked by ``tests/test_message_scenarios.py``);
* ``smoke`` -- the same scenarios at a small population, cheap enough
  for the CI digest-staleness step to recompute on every PR.  Its
  ``shard_digests`` sub-block pins one scenario re-run on the sharded
  barrier kernel (``MessageNetConfig(shards=4)``): because shard count
  must be invisible, the sharded digest equals the single-process one,
  and ``--check`` recomputes it so a drift in the shard streams, the
  barrier kernel or cross-shard staging fails CI like any other
  determinism break.

Regenerate only when a protocol/report change is intentional, and say so
in the commit message::

    PYTHONPATH=src python tests/data/regen_message_digests.py

``--check`` recomputes the *smoke* tier plus both golden traces
(``scenario_golden.json`` / ``scenario_message_golden.json``) and exits
non-zero on any drift from the committed files -- the CI step that
catches "changed the protocol, forgot to regenerate" PRs before the
nightly full run does::

    PYTHONPATH=src python tests/data/regen_message_digests.py --check
"""

import argparse
import hashlib
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.scenarios import (  # noqa: E402
    SCENARIOS,
    MessageNetConfig,
    run_scenario,
    scenario,
)

PARAMS = dict(n_peers=1024, seed=5, duration_scale=0.1)
SMOKE_PARAMS = dict(n_peers=96, seed=5, duration_scale=0.05)

#: The sharded-kernel smoke pin: one scenario recomputed on the
#: in-process barrier kernel; its digest must equal the single-process
#: smoke digest of the same scenario.
SHARD_SMOKE_SCENARIO = "uniform-baseline"
SHARD_SMOKE_SHARDS = 4
DATA = pathlib.Path(__file__).parent
OUT = DATA / "scenario_message_digests.json"

#: The pinned golden traces and the spec/backend that regenerates each.
GOLDENS = (
    ("scenario_golden.json", "dataplane"),
    ("scenario_message_golden.json", "message"),
)
GOLDEN_SPEC = dict(n_peers=24, seed=11, duration_scale=0.2)


def compute_digests(params: dict) -> dict:
    digests = {}
    for name in sorted(SCENARIOS):
        spec = scenario(name, **params)
        report = run_scenario(spec, backend="message")
        digests[name] = hashlib.sha256(report.to_json().encode()).hexdigest()
    return digests


def compute_shard_digest(params: dict) -> str:
    """The shard-smoke scenario's digest on the sharded barrier kernel."""
    spec = scenario(SHARD_SMOKE_SCENARIO, **params)
    report = run_scenario(
        spec,
        backend="message",
        net_config=MessageNetConfig(shards=SHARD_SMOKE_SHARDS),
    )
    return hashlib.sha256(report.to_json().encode()).hexdigest()


def golden_json(backend: str) -> str:
    spec = scenario("uniform-baseline", **GOLDEN_SPEC)
    return run_scenario(spec, backend=backend).to_json()


def regenerate() -> None:
    payload = {
        "_comment": [
            "SHA-256 digests of ScenarioReport.to_json() for every library scenario",
            "run under MessageScenarioRunner.  'digests' pins full-population",
            f"determinism at n_peers={PARAMS['n_peers']}; 'smoke' pins a small run the CI",
            "digest-staleness step recomputes on every PR (--check).  Regenerate",
            "deliberately with:",
            "  PYTHONPATH=src python tests/data/regen_message_digests.py",
        ],
        **PARAMS,
        "digests": compute_digests(PARAMS),
        "smoke": {
            **SMOKE_PARAMS,
            "digests": compute_digests(SMOKE_PARAMS),
            "shard_digests": {
                "scenario": SHARD_SMOKE_SCENARIO,
                "shards": SHARD_SMOKE_SHARDS,
                "digest": compute_shard_digest(SMOKE_PARAMS),
            },
        },
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")


def check() -> int:
    """Verify the smoke digests and golden traces match the code."""
    drift = []
    pinned = json.loads(OUT.read_text())
    smoke = pinned.get("smoke")
    if not smoke:
        drift.append(f"{OUT.name} has no smoke tier -- regenerate it")
    else:
        params = {k: smoke[k] for k in ("n_peers", "seed", "duration_scale")}
        fresh = compute_digests(params)
        for name in sorted(set(fresh) | set(smoke["digests"])):
            if fresh.get(name) != smoke["digests"].get(name):
                drift.append(
                    f"smoke digest of {name!r}: committed "
                    f"{smoke['digests'].get(name, '<missing>')[:12]}... vs "
                    f"code {fresh.get(name, '<missing>')[:12]}..."
                )
        shard_pin = smoke.get("shard_digests")
        if not shard_pin:
            drift.append(f"{OUT.name} has no shard_digests pin -- regenerate it")
        else:
            fresh_shard = compute_shard_digest(params)
            if fresh_shard != shard_pin.get("digest"):
                drift.append(
                    f"sharded smoke digest ({shard_pin.get('scenario')!r} @ "
                    f"shards={shard_pin.get('shards')}): committed "
                    f"{shard_pin.get('digest', '<missing>')[:12]}... vs "
                    f"code {fresh_shard[:12]}..."
                )
            if fresh_shard != fresh.get(SHARD_SMOKE_SCENARIO):
                drift.append(
                    f"sharded smoke digest of {SHARD_SMOKE_SCENARIO!r} differs "
                    f"from its single-process digest -- shard count leaked "
                    f"into the report"
                )
    for filename, backend in GOLDENS:
        committed = (DATA / filename).read_text().strip()
        if golden_json(backend) != committed:
            drift.append(f"golden trace {filename} drifts from the code")
    if drift:
        print("committed digests/goldens are stale:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf the change is intentional, regenerate with:\n"
            "  PYTHONPATH=src python tests/data/regen_message_digests.py\n"
            "  PYTHONPATH=src python -c \"from repro.scenarios import run_scenario, scenario;"
            " print(run_scenario(scenario('uniform-baseline', n_peers=24, seed=11,"
            " duration_scale=0.2), backend='dataplane').to_json())\""
            " > tests/data/scenario_golden.json   (and backend='message' likewise)",
            file=sys.stderr,
        )
        return 1
    print("smoke digests and golden traces match the code")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed smoke digests + goldens instead of rewriting",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    regenerate()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

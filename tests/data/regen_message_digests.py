#!/usr/bin/env python
"""Regenerate ``scenario_message_digests.json`` (deliberate only!).

The digests pin message-backend determinism at full population; any
change to RNG stream derivation, transport accounting, the node
protocol or report assembly shifts them.  Regenerate only when such a
change is intentional, and say so in the commit message::

    PYTHONPATH=src python tests/data/regen_message_digests.py
"""

import hashlib
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.scenarios import SCENARIOS, run_scenario, scenario  # noqa: E402

PARAMS = dict(n_peers=1024, seed=5, duration_scale=0.1)
OUT = pathlib.Path(__file__).parent / "scenario_message_digests.json"


def main() -> None:
    digests = {}
    for name in sorted(SCENARIOS):
        spec = scenario(name, **PARAMS)
        report = run_scenario(spec, backend="message")
        digests[name] = hashlib.sha256(report.to_json().encode()).hexdigest()
    payload = {
        "_comment": [
            "SHA-256 digests of ScenarioReport.to_json() for every library scenario",
            "run under MessageScenarioRunner at n_peers=1024, seed=5, duration_scale=0.1.",
            "Pins full-population message-level determinism without storing megabyte",
            "reports. Regenerate deliberately with:",
            "  PYTHONPATH=src python tests/data/regen_message_digests.py",
        ],
        **PARAMS,
        "digests": digests,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()

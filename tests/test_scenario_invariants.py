"""Randomized invariant suite: structure survives churn and maintenance.

For generated churn/maintenance/membership event sequences, the overlay
must keep the three structural invariants of
:mod:`repro.scenarios.invariants`:

* the peers' paths remain a prefix-complete partition of the key space;
* every routing level references a peer on the complementary subtree;
* the union of live key stores covers all keys owned by partitions with
  online members (checked after anti-entropy has had a chance to run).
"""

import random

import pytest

from repro.pgrid.keyspace import MAX_KEY
from repro.pgrid.maintenance import (
    fail_peer,
    repair_routes,
    revive_peer,
    sequential_join,
)
from repro.pgrid.network import PGridNetwork
from repro.pgrid.replication import anti_entropy_sweep
from repro.scenarios import ScenarioRunner, scenario
from repro.scenarios.invariants import (
    check_invariants,
    check_partition_tiling,
    check_routing_complementarity,
    live_key_coverage,
)
from repro.workloads.datasets import workload_keys


def build_network(seed, n_peers=48, distribution="U"):
    rand = random.Random(seed)
    keys = [
        k
        for ks in workload_keys(distribution, n_peers, 8, seed=rand)
        for k in ks
    ]
    return PGridNetwork.ideal(keys, n_peers, d_max=40, n_min=3, rng=rand)


def random_event(net, rand, next_id):
    """Apply one randomly chosen churn/maintenance/membership event."""
    op = rand.choice(
        ["offline", "offline", "online", "repair", "sweep", "join", "mass-offline"]
    )
    pids = sorted(net.peers)
    if op == "offline":
        fail_peer(net, pids[rand.randrange(len(pids))])
    elif op == "online":
        revive_peer(net, pids[rand.randrange(len(pids))])
    elif op == "repair":
        repair_routes(net, rng=rand)
    elif op == "sweep":
        if net.online_count() >= 2:
            anti_entropy_sweep(net, rounds=1, rng=rand)
    elif op == "join":
        if net.online_count() >= 2:
            keys = [rand.randrange(MAX_KEY) for _ in range(8)]
            try:
                sequential_join(net, next_id(), keys, d_max=40, n_min=3, rng=rand)
            except Exception:
                pass  # join may fail under heavy churn; structure must hold
    elif op == "mass-offline":
        for pid in rand.sample(pids, len(pids) // 3):
            fail_peer(net, pid)
    return op


@pytest.mark.parametrize("seed", range(5))
def test_invariants_hold_through_generated_sequences(seed):
    net = build_network(seed)
    rand = random.Random(1000 + seed)
    counter = [max(net.peers) + 1]

    def next_id():
        counter[0] += 1
        return counter[0] - 1

    for _ in range(40):
        random_event(net, rand, next_id)
        # Structural invariants hold after *every* event.
        check_partition_tiling(net)
        check_routing_complementarity(net)

    # Coverage invariant: once everyone is back online and anti-entropy
    # converges, every key owned by a partition is live-covered and all
    # replicas agree.
    for pid in list(net.peers):
        revive_peer(net, pid)
    while anti_entropy_sweep(net, rounds=1, rng=rand) > 0:
        pass
    covered, total = live_key_coverage(net)
    assert covered == total
    check_invariants(net, require_full_coverage=True)


@pytest.mark.parametrize("seed", range(3))
def test_coverage_never_lost_while_any_replica_lives(seed):
    """Keys owned by partitions with online members stay live-covered
    through pure churn (no inserts), because every replica holds its
    partition's keys from construction onward."""
    net = build_network(seed, n_peers=36)
    rand = random.Random(2000 + seed)
    for _ in range(30):
        pid = sorted(net.peers)[rand.randrange(len(net.peers))]
        if rand.random() < 0.6:
            fail_peer(net, pid)
        else:
            revive_peer(net, pid)
        covered, total = live_key_coverage(net)
        assert covered == total


@pytest.mark.parametrize(
    "name", ["mass-join", "mass-leave", "paper-sec51-churn"]
)
def test_invariants_hold_after_library_scenarios(name):
    runner = ScenarioRunner(scenario(name, n_peers=48, seed=9, duration_scale=0.1))
    runner.run()
    net = runner.network
    check_partition_tiling(net)
    check_routing_complementarity(net)
    # The overlay's own structural self-check agrees.
    assert net.is_consistent()


def test_skewed_ideal_overlay_tiles_completely():
    """Empty-side leaves of Algorithm 1 must still be owned by a peer
    (the operational overlay leaves no key range unowned)."""
    net = build_network(7, n_peers=64, distribution="P0.5")
    check_partition_tiling(net)
    # Every possible key routes somewhere.
    rand = random.Random(3)
    for _ in range(50):
        res = net.lookup(rand.randrange(MAX_KEY), rng=rand)
        assert res.found


def test_tiling_check_detects_gaps():
    from repro.exceptions import PartitionError

    net = build_network(1, n_peers=24)
    # Manufacture a gap: remove every peer of one partition.
    groups = net.partitions()
    victim = sorted(groups)[0]
    for pid in groups[victim]:
        del net.peers[pid]
    with pytest.raises(PartitionError):
        check_partition_tiling(net)


def test_routing_check_detects_wrong_subtree():
    from repro.exceptions import RoutingError

    net = build_network(2, n_peers=24)
    peer = next(p for p in net.peers.values() if p.path.length >= 1)
    # Reference a peer from the *same* subtree at level 0 (violation).
    same_side = next(
        q.peer_id
        for q in net.peers.values()
        if q.peer_id != peer.peer_id and q.path.length >= 1
        and q.path.bit(0) == peer.path.bit(0)
    )
    peer.routing.levels[0] = [same_side]
    with pytest.raises(RoutingError):
        check_routing_complementarity(net)

"""Tests for the mean-value models (MVA / SAM)."""

import math

import pytest

from repro.core import mva
from repro.core.probabilities import t_star_interactions
from repro.exceptions import DomainError

LN2 = math.log(2.0)


class TestMVA:
    @pytest.mark.parametrize("p", [0.05, 0.15, 0.25, 0.35, 0.45, 0.5])
    def test_achieves_target_fraction(self, p):
        traj = mva.run_mva(1000, p)
        assert traj.achieved_fraction == pytest.approx(p, abs=0.01)

    def test_beta_regime_cost_is_n_ln2(self):
        for p in [0.35, 0.45, 0.5]:
            traj = mva.run_mva(1000, p)
            assert traj.interactions == pytest.approx(1000 * LN2, rel=0.01)

    def test_alpha_regime_cost_matches_closed_form(self):
        for p in [0.05, 0.15, 0.25]:
            traj = mva.run_mva(2000, p)
            assert traj.interactions == pytest.approx(
                t_star_interactions(p, 2000), rel=0.02
            )

    def test_all_peers_decided(self):
        traj = mva.run_mva(500, 0.4)
        assert traj.x + traj.y == pytest.approx(500, abs=1e-6)

    def test_undecided_follows_closed_form(self):
        traj = mva.run_mva(1000, 0.5, keep_history=True)
        for i in (10, 100, 400):
            expected = mva.closed_form_undecided(1000, i + 1)
            assert traj.history_u[i] == pytest.approx(expected, rel=1e-9)

    def test_heuristic_misses_target(self):
        exact = mva.run_mva(1000, 0.35)
        heur = mva.run_mva(1000, 0.35, heuristic=True)
        assert abs(heur.achieved_fraction - 0.35) > 5 * abs(
            exact.achieved_fraction - 0.35
        )

    def test_rejects_bad_p(self):
        with pytest.raises(DomainError):
            mva.run_mva(100, 0.0)
        with pytest.raises(DomainError):
            mva.run_mva(100, 0.7)


class TestSAM:
    def test_sampling_induces_systematic_bias(self):
        # The Fig. 4 phenomenon: plug-in estimation shifts the balance.
        runs = [mva.run_sam(1000, 0.35, m=5, rng=seed) for seed in range(30)]
        mean_dev = sum(t.deviation for t in runs) / len(runs)
        assert abs(mean_dev) > 1.0  # systematic, not noise

    def test_correction_reduces_bias(self):
        plain = [mva.run_sam(1000, 0.35, m=5, rng=seed) for seed in range(30)]
        corr = [
            mva.run_sam(1000, 0.35, m=5, corrected=True, rng=seed)
            for seed in range(30)
        ]
        bias_plain = abs(sum(t.deviation for t in plain) / len(plain))
        bias_corr = abs(sum(t.deviation for t in corr) / len(corr))
        assert bias_corr < bias_plain

    def test_large_samples_converge_to_mva(self):
        sam = mva.run_sam(1000, 0.4, m=5000, rng=1)
        exact = mva.run_mva(1000, 0.4)
        assert sam.achieved_fraction == pytest.approx(
            exact.achieved_fraction, abs=0.01
        )

    def test_rejects_bad_sample_size(self):
        with pytest.raises(DomainError):
            mva.run_sam(100, 0.4, m=0)

    def test_deterministic_given_seed(self):
        a = mva.run_sam(500, 0.4, m=10, rng=7)
        b = mva.run_sam(500, 0.4, m=10, rng=7)
        assert a.x == b.x and a.interactions == b.interactions

"""Tests for the assembled overlay: lookups, range queries, consistency."""

import random

import pytest

from repro.core.construction import ConstructionConfig
from repro.exceptions import DomainError, PartitionError, RoutingError
from repro.pgrid.keyspace import KEY_BITS, float_to_key
from repro.pgrid.network import PGridNetwork, build_overlay
from repro.workloads.datasets import flatten, workload_keys


@pytest.fixture(scope="module")
def ideal_net():
    rand = random.Random(7)
    keys = [float_to_key(rand.random()) for _ in range(800)]
    net = PGridNetwork.ideal(keys, 80, d_max=50, n_min=5, rng=1)
    return keys, net


@pytest.fixture(scope="module")
def built_net():
    pk = workload_keys("U", peers=96, keys_per_peer=10, seed=3)
    net = build_overlay(pk, config=ConstructionConfig(n_min=5, d_max=50), rng=4)
    return pk, net


class TestIdealOverlay:
    def test_consistency(self, ideal_net):
        _, net = ideal_net
        assert net.is_consistent()

    def test_every_key_lookupable(self, ideal_net):
        keys, net = ideal_net
        rand = random.Random(0)
        for key in rand.sample(keys, 100):
            res = net.lookup(key, rng=rand)
            assert res.found
            assert res.value_present

    def test_lookup_hops_logarithmic(self, ideal_net):
        keys, net = ideal_net
        rand = random.Random(1)
        partitions = len(net.partitions())
        import math

        bound = 2 * math.log2(partitions) + 2
        hops = [net.lookup(k, rng=rand).hops for k in rand.sample(keys, 50)]
        assert max(hops) <= bound

    def test_range_query_exact(self, ideal_net):
        keys, net = ideal_net
        lo, hi = float_to_key(0.2), float_to_key(0.6)
        expected = {k for k in keys if lo <= k < hi}
        res = net.range_query(lo, hi, rng=2)
        assert res.keys == expected
        assert res.complete

    def test_range_query_narrow(self, ideal_net):
        keys, net = ideal_net
        sorted_keys = sorted(set(keys))
        target = sorted_keys[len(sorted_keys) // 2]
        res = net.range_query(target, target + 1, rng=3)
        assert res.keys == {target}

    def test_range_query_empty_range(self, ideal_net):
        _, net = ideal_net
        res = net.range_query(0.123, 0.123, rng=1)
        assert res.keys == set()

    def test_range_query_whole_space(self, ideal_net):
        keys, net = ideal_net
        res = net.range_query(0, 1 << KEY_BITS, rng=4)
        assert res.keys == set(keys)

    def test_range_result_partitions_are_paths(self, ideal_net):
        from repro.pgrid.bits import Path

        _, net = ideal_net
        res = net.range_query(float_to_key(0.3), float_to_key(0.7), rng=5)
        assert res.partitions
        assert all(isinstance(p, Path) for p in res.partitions)
        # The contributing partitions must be actual peer partitions and
        # must intersect the queried range.
        peer_paths = set(net.paths())
        for path in res.partitions:
            assert path in peer_paths
            lo, hi = path.key_range(KEY_BITS)
            assert lo < res.hi and res.lo < hi
        # str() still renders the bit-string form used in reports.
        rendered = sorted(str(p) for p in res.partitions)
        assert all(set(s) <= {"0", "1"} for s in rendered)

    def test_float_and_string_coercion(self, ideal_net):
        _, net = ideal_net
        res = net.lookup(0.5, rng=1)
        assert res.found
        res2 = net.lookup("hello", rng=1)
        assert res2.found  # responsible partition exists even if key absent

    def test_insert_places_key_on_responsible_replicas(self, ideal_net):
        _, net = ideal_net
        new_key = float_to_key(0.4242424242)
        res = net.insert(new_key, rng=5)
        assert res.found
        owner = net.peers[res.responsible]
        assert new_key in owner.keys
        for rid in owner.replicas:
            assert new_key in net.peers[rid].keys

    def test_ideal_drops_out_of_range_keys(self):
        # Keys outside [0, 2^KEY_BITS) are covered by no leaf; they must
        # be dropped, never dealt to a wrong partition (regression: the
        # binary-search dealer once wrapped them into the last leaf).
        rand = random.Random(11)
        keys = [float_to_key(rand.random()) for _ in range(300)]
        out_of_range = [-1, -(1 << KEY_BITS), 1 << KEY_BITS, (1 << KEY_BITS) + 7]
        net = PGridNetwork.ideal(
            keys + out_of_range, 32, d_max=40, n_min=3, rng=1
        )
        assert net.is_consistent()
        stored = net.all_keys()
        assert stored == set(keys)
        assert stored.isdisjoint(out_of_range)
        # Every surviving key sits inside its holder's partition.
        for peer in net.peers.values():
            for key in peer.keys:
                assert peer.responsible_for(key)

    def test_ideal_covers_empty_leaves_of_skewed_workloads(self):
        # Algorithm 1 emits peer-less leaves for empty key regions; the
        # operational overlay must still own them (a gap would make every
        # lookup into the region fail structurally).
        keys = workload_keys("P0.5", peers=64, keys_per_peer=8, seed=5)
        net = PGridNetwork.ideal(flatten(keys), 64, d_max=40, n_min=3, rng=2)
        assert len(net.peers) == 64  # reassignment conserves the population
        covered = 0
        for path in set(net.paths()):
            lo, hi = path.key_range(KEY_BITS)
            covered += hi - lo
        assert covered == 1 << KEY_BITS
        rand = random.Random(6)
        for _ in range(50):
            assert net.lookup(rand.randrange(1 << KEY_BITS), rng=rand).found

    def test_rejects_bool_and_garbage_keys(self, ideal_net):
        _, net = ideal_net
        with pytest.raises(PartitionError):
            net.lookup(True)
        with pytest.raises(PartitionError):
            net.lookup([1, 2])  # type: ignore[arg-type]


class TestConstructedOverlay:
    def test_consistency(self, built_net):
        _, net = built_net
        assert net.is_consistent()

    def test_lookup_success_on_all_keys(self, built_net):
        pk, net = built_net
        rand = random.Random(2)
        keys = list(set(flatten(pk)))
        failures = 0
        for key in rand.sample(keys, 150):
            res = net.lookup(key, rng=rand)
            if not (res.found and res.value_present):
                failures += 1
        # The decentralized construction must index every key it was fed.
        assert failures == 0

    def test_range_queries_complete(self, built_net):
        pk, net = built_net
        keys = set(flatten(pk))
        lo, hi = float_to_key(0.25), float_to_key(0.75)
        res = net.range_query(lo, hi, rng=1)
        assert res.keys == {k for k in keys if lo <= k < hi}

    def test_replication_groups_nonempty(self, built_net):
        _, net = built_net
        assert net.replication_factor() >= 1.0
        assert net.mean_path_length() > 1.0


class TestFailureHandling:
    def test_lookup_survives_minority_failures(self, ideal_net):
        keys, net = ideal_net
        rand = random.Random(3)
        # Knock out 20% of peers.
        victims = rand.sample(sorted(net.peers), k=len(net.peers) // 5)
        for v in victims:
            net.peers[v].online = False
        successes = 0
        sample = rand.sample(keys, 60)
        for key in sample:
            if net.lookup(key, rng=rand).found:
                successes += 1
        assert successes / len(sample) >= 0.9
        for v in victims:
            net.peers[v].online = True

    def test_all_offline_raises(self, ideal_net):
        _, net = ideal_net
        for peer in net.peers.values():
            peer.online = False
        with pytest.raises(RoutingError):
            net.lookup(0.5)
        for peer in net.peers.values():
            peer.online = True

    def test_unknown_peer_id(self, ideal_net):
        _, net = ideal_net
        with pytest.raises(RoutingError):
            net.peer(10_000_000)

"""Tests for the AEP decision probabilities (Eqs. 1-4, 9, 10)."""

import math

import pytest

from repro.core import probabilities as pr
from repro.exceptions import DomainError

LN2 = math.log(2.0)


class TestForwardMaps:
    def test_p_of_beta_endpoints(self):
        assert pr.p_of_beta(1.0) == pytest.approx(0.5)
        assert pr.p_of_beta(0.0) == pytest.approx(1.0 - LN2, abs=1e-9)

    def test_p_of_beta_is_monotone(self):
        grid = [i / 100 for i in range(101)]
        values = [pr.p_of_beta(b) for b in grid]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_p_of_beta_taylor_matches_exact_near_zero(self):
        # The series branch and the exact branch must agree at the switch.
        exact = 1.0 - (1.0 - 2.0 ** (-2e-9)) / 2e-9
        assert pr.p_of_beta(2e-9) == pytest.approx(exact, abs=1e-12)

    def test_p_of_alpha_endpoints(self):
        assert pr.p_of_alpha(1.0) == pytest.approx(1.0 - LN2)
        assert pr.p_of_alpha(1e-9) == pytest.approx(0.0, abs=1e-6)

    def test_p_of_alpha_half_is_quarter(self):
        # Removable singularity at alpha = 1/2.
        assert pr.p_of_alpha(0.5) == pytest.approx(0.25, abs=1e-9)
        assert pr.p_of_alpha(0.5 + 1e-6) == pytest.approx(0.25, abs=1e-5)
        assert pr.p_of_alpha(0.5 - 1e-6) == pytest.approx(0.25, abs=1e-5)

    def test_p_of_alpha_is_monotone(self):
        grid = [i / 200 for i in range(1, 201)]
        values = [pr.p_of_alpha(a) for a in grid]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_p_of_alpha_rejects_out_of_domain(self):
        with pytest.raises(DomainError):
            pr.p_of_alpha(0.0)
        with pytest.raises(DomainError):
            pr.p_of_alpha(1.5)


class TestInverseMaps:
    @pytest.mark.parametrize("p", [0.31, 0.35, 0.4, 0.45, 0.49, 0.5])
    def test_beta_round_trip(self, p):
        assert pr.p_of_beta(pr.beta_of_p(p)) == pytest.approx(p, abs=1e-9)

    @pytest.mark.parametrize("p", [0.01, 0.05, 0.1, 0.2, 0.25, 0.30, 1.0 - LN2])
    def test_alpha_round_trip(self, p):
        assert pr.p_of_alpha(pr.alpha_of_p(p)) == pytest.approx(p, abs=1e-9)

    def test_regime_boundary_is_continuous(self):
        # alpha(p*) = 1 and beta(p*) = 0: the two regimes join.
        assert pr.alpha_of_p(pr.P_STAR) == pytest.approx(1.0)
        assert pr.beta_of_p(pr.P_STAR) == pytest.approx(0.0, abs=1e-6)

    def test_beta_of_p_rejects_alpha_regime(self):
        with pytest.raises(DomainError):
            pr.beta_of_p(0.2)

    def test_alpha_of_p_rejects_beta_regime(self):
        with pytest.raises(DomainError):
            pr.alpha_of_p(0.4)

    def test_rejects_majority_fraction(self):
        with pytest.raises(DomainError):
            pr.beta_of_p(0.7)
        with pytest.raises(DomainError):
            pr.decision_probabilities(0.7)


class TestTableDrivenInversions:
    """The memoized table-seeded inverters must agree with the exact
    full-bracket bisections they replaced on the hot path."""

    def test_beta_table_matches_bisection(self):
        lo = pr.P_STAR
        grid = [lo + i * (0.5 - lo) / 400 for i in range(401)]
        for p in grid:
            assert pr.beta_of_p(p) == pytest.approx(
                pr.beta_of_p_exact(p), abs=1e-9
            ), f"beta mismatch at p={p}"

    def test_alpha_table_matches_bisection(self):
        grid = [1e-6 * 10**k for k in range(4)]  # heavy-skew tail
        grid += [0.001 + i * (pr.P_STAR - 0.001) / 400 for i in range(401)]
        for p in grid:
            assert pr.alpha_of_p(p) == pytest.approx(
                pr.alpha_of_p_exact(p), abs=1e-9
            ), f"alpha mismatch at p={p}"

    def test_randomized_round_trips(self):
        import random

        rand = random.Random(0)
        for _ in range(200):
            p = rand.uniform(1e-6, 0.5)
            if p >= pr.P_STAR:
                assert pr.p_of_beta(pr.beta_of_p(p)) == pytest.approx(p, abs=1e-9)
            else:
                assert pr.p_of_alpha(pr.alpha_of_p(p)) == pytest.approx(p, abs=1e-9)

    def test_exact_variants_share_domain_errors(self):
        for bad in (0.7, -0.1):
            with pytest.raises(DomainError):
                pr.beta_of_p_exact(bad)
            with pytest.raises(DomainError):
                pr.alpha_of_p_exact(bad)
        with pytest.raises(DomainError):
            pr.alpha_of_p_exact(0.4)
        with pytest.raises(DomainError):
            pr.beta_of_p_exact(0.2)


class TestDerivativesAndCorrections:
    def test_alpha_curvature_grows_across_regime(self):
        # Fig. 3: alpha''(p) spans roughly one order of magnitude over the
        # alpha-regime, growing steeply toward the regime boundary p*
        # (p'(alpha) -> 0.079 as alpha -> 1, so the inverse's curvature
        # explodes there).
        low = pr.alpha_second_derivative(0.05)
        mid = pr.alpha_second_derivative(0.15)
        high = pr.alpha_second_derivative(0.28)
        assert 0.0 < low < mid < high
        assert high / low > 3.0

    def test_alpha_curvature_positive_in_range(self):
        for p in [0.05, 0.1, 0.15, 0.2, 0.25, 0.3]:
            assert pr.alpha_second_derivative(p) > 0.0

    def test_corrections_shrink_probabilities(self):
        # Positive curvature means plug-in estimates are biased upward,
        # so the corrected values must be smaller.
        assert pr.alpha_corrected(0.2, m=10) < pr.alpha_of_p(0.2)
        assert pr.beta_corrected(0.45, m=10) <= pr.beta_of_p(0.45) + 1e-12

    def test_correction_vanishes_with_large_samples(self):
        assert pr.alpha_corrected(0.2, m=10**9) == pytest.approx(
            pr.alpha_of_p(0.2), abs=1e-6
        )

    def test_corrections_clamped_to_unit_interval(self):
        assert 0.0 <= pr.alpha_corrected(0.02, m=1) <= 1.0
        assert 0.0 <= pr.beta_corrected(0.49, m=1) <= 1.0

    def test_correction_rejects_bad_sample_size(self):
        with pytest.raises(DomainError):
            pr.alpha_corrected(0.2, m=0)


class TestDecisionProbabilities:
    def test_beta_regime_has_alpha_one(self):
        probs = pr.decision_probabilities(0.4)
        assert probs.alpha == 1.0
        assert 0.0 < probs.beta < 1.0

    def test_alpha_regime_has_beta_zero(self):
        probs = pr.decision_probabilities(0.2)
        assert probs.beta == 0.0
        assert 0.0 < probs.alpha < 1.0

    def test_balanced_case(self):
        probs = pr.decision_probabilities(0.5)
        assert probs.alpha == 1.0
        assert probs.beta == pytest.approx(1.0)

    def test_heuristic_matches_theory_at_half(self):
        h = pr.heuristic_probabilities(0.5)
        assert h.alpha == pytest.approx(1.0)
        assert h.beta == pytest.approx(1.0)

    def test_heuristic_diverges_from_theory_away_from_half(self):
        h = pr.heuristic_probabilities(0.35)
        t = pr.decision_probabilities(0.35)
        assert abs(h.beta - t.beta) > 0.05


class TestInteractionCounts:
    def test_t_star_constant_in_beta_regime(self):
        # Eq. (1): t* does not depend on p in the beta-regime.
        values = {pr.t_star(p) for p in [0.31, 0.4, 0.45, 0.5]}
        assert all(v == pytest.approx(LN2) for v in values)

    def test_t_star_grows_as_p_shrinks(self):
        assert pr.t_star(0.05) > pr.t_star(0.15) > pr.t_star(0.3) > 0

    def test_t_star_continuous_at_boundary(self):
        below = pr.t_star(pr.P_STAR - 1e-6)
        assert below == pytest.approx(LN2, rel=1e-3)

    def test_discrete_interactions_converge_to_n_ln2(self):
        assert pr.t_star_interactions(0.5, 10_000) == pytest.approx(
            10_000 * LN2, rel=1e-3
        )

    def test_discrete_interactions_alpha_regime(self):
        # Must agree with N * t_star(p) for large N.
        n = 100_000
        assert pr.t_star_interactions(0.1, n) == pytest.approx(
            n * pr.t_star(0.1), rel=1e-3
        )

    def test_rejects_tiny_population(self):
        with pytest.raises(DomainError):
            pr.t_star_interactions(0.5, 1)

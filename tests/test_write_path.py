"""The write path: mutations, tombstones, replica sync, write scenarios.

Four layers, mirroring the subsystem's span:

* **Data plane**: ``PGridPeer.store/erase`` mutation properties
  (idempotence, tombstone lifecycle), ``PGridNetwork.insert/delete``
  routing + eager replica application, and delete-wins reconciliation
  (a deleted key must not resurrect from a stale replica).
* **Message level**: the ``insert``/``delete``/``replica_sync``
  protocol -- retry on timeout and dead end, moot writes, replica
  fan-out, tombstones riding anti-entropy exchanges, and the dedicated
  ``updates`` wire category.
* **Scenario layer**: ``WriteMix`` validation and compilation, write
  reports (``update_Bps`` series, ``writes`` section, divergence) on
  both backends, and read-only reports staying write-free.
* **Invariants**: ``check_replica_divergence`` and the divergence
  aggregates both backends share.
"""

import pytest

from repro.exceptions import DomainError, PartitionError, SimulationError
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.replication import (
    anti_entropy_sweep,
    divergence_stats,
    reconcile,
)
from repro.scenarios import (
    Hotspot,
    Phase,
    ScenarioSpec,
    WriteMix,
    check_replica_divergence,
    run_scenario,
    scenario,
)
from repro.simnet import protocol as P
from repro.simnet.engine import Simulator
from repro.simnet.node import NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network


def ideal_net(n_peers=48, n_keys=400, seed=3):
    import random

    rand = random.Random(seed)
    keys = [float_to_key(rand.random()) for _ in range(n_keys)]
    return PGridNetwork.ideal(keys, n_peers, d_max=40, n_min=3, rng=1)


class TestPeerMutations:
    def peer(self):
        return PGridPeer(0, Path.from_string("0"), keys=[1, 2, 3])

    def test_store_is_idempotent(self):
        peer = self.peer()
        key = 5
        peer.store(key)
        peer.store(key)
        assert sorted(peer.keys) == [1, 2, 3, 5]

    def test_erase_is_idempotent_and_tombstones(self):
        peer = self.peer()
        peer.erase(2)
        peer.erase(2)
        assert sorted(peer.keys) == [1, 3]
        assert 2 in peer.tombstones

    def test_erase_of_absent_key_still_tombstones(self):
        # An offline replica may hold the key; the tombstone is what
        # kills it at the next reconciliation.
        peer = self.peer()
        peer.erase(7)
        assert 7 in peer.tombstones

    def test_store_clears_tombstone(self):
        peer = self.peer()
        peer.erase(2)
        peer.store(2)
        assert 2 in peer.keys
        assert 2 not in peer.tombstones

    def test_mutations_outside_partition_rejected(self):
        peer = self.peer()  # path "0" covers the lower half
        foreign = (1 << 52) + 17  # top bit set -> partition "1"
        with pytest.raises(DomainError):
            peer.store(foreign)
        with pytest.raises(DomainError):
            peer.erase(foreign)


class TestReconcileWithTombstones:
    def pair(self):
        a = PGridPeer(0, Path.from_string("0"), keys=[1, 2, 3])
        b = PGridPeer(1, Path.from_string("0"), keys=[2, 3, 4])
        return a, b

    def test_delete_wins_over_stale_presence(self):
        a, b = self.pair()
        a.erase(2)
        reconcile(a, b)
        assert 2 not in a.keys and 2 not in b.keys
        assert 2 in a.tombstones and 2 in b.tombstones
        # The rest is the plain union.
        assert sorted(a.keys) == sorted(b.keys) == [1, 3, 4]

    def test_reconcile_is_idempotent(self):
        a, b = self.pair()
        a.erase(2)
        reconcile(a, b)
        snapshot = (sorted(a.keys), sorted(a.tombstones))
        stats = reconcile(a, b)
        assert (sorted(a.keys), sorted(a.tombstones)) == snapshot
        assert stats.keys_moved == 0

    def test_insert_after_propagated_delete_resurrects_via_clear(self):
        a, b = self.pair()
        a.erase(2)
        reconcile(a, b)  # tombstone everywhere
        a.store(2)  # re-insert clears a's tombstone...
        reconcile(a, b)  # ...but b's certificate still wins (delete-wins)
        assert 2 not in a.keys and 2 not in b.keys
        b.store(2)  # once the insert reaches every replica...
        a.store(2)
        reconcile(a, b)  # ...the key is durable again
        assert 2 in a.keys and 2 in b.keys

    def test_tombstones_move_through_sweep(self):
        net = ideal_net()
        key = float_to_key(0.321)
        res = net.insert(key, rng=2)
        owner = net.peers[res.responsible]
        # Take one replica offline, delete, bring it back: the sweep
        # must deliver the tombstone, not resurrect the key.
        rid = sorted(owner.replicas)[0]
        net.peers[rid].online = False
        net.delete(key, rng=2)
        assert key in net.peers[rid].keys  # missed the delete
        net.peers[rid].online = True
        anti_entropy_sweep(net, rounds=3, rng=4)
        assert key not in net.peers[rid].keys
        assert key in net.peers[rid].tombstones


class TestNetworkWrites:
    def test_insert_reaches_owner_and_online_replicas(self):
        net = ideal_net()
        key = float_to_key(0.4242)
        res = net.insert(key, rng=5)
        assert res.success and res.op == "insert"
        owner = net.peers[res.responsible]
        assert key in owner.keys
        assert res.replicas_written == len(owner.replicas)
        for rid in owner.replicas:
            assert key in net.peers[rid].keys

    def test_offline_replica_misses_write_and_diverges(self):
        net = ideal_net()
        key = float_to_key(0.777)
        probe = net.lookup(key, rng=1)
        rid = sorted(net.peers[probe.responsible].replicas)[0]
        net.peers[rid].online = False
        res = net.insert(key, rng=5)
        assert res.success
        assert key not in net.peers[rid].keys
        with pytest.raises(PartitionError):
            check_replica_divergence(net)
        # Anti-entropy heals the divergence once the replica returns.
        net.peers[rid].online = True
        anti_entropy_sweep(net, rounds=3, rng=4)
        check_replica_divergence(net)

    def test_delete_then_lookup_routes_but_key_is_gone(self):
        net = ideal_net()
        key = float_to_key(0.55)
        net.insert(key, rng=5)
        res = net.delete(key, rng=6)
        assert res.success and res.op == "delete"
        assert key not in net.all_keys()


class TestDivergenceStats:
    def test_synchronized_groups_report_zero(self):
        stats = divergence_stats([[{1, 2}, {1, 2}], [{3}, {3}]])
        assert stats == {
            "replicas": 4, "stale_replicas": 0, "mean": 0.0, "max": 0.0
        }

    def test_missing_keys_raise_mean_and_max(self):
        stats = divergence_stats([[{1, 2, 3, 4}, {1, 2}]])
        assert stats["replicas"] == 2
        assert stats["stale_replicas"] == 1
        assert stats["max"] == pytest.approx(0.5)
        assert stats["mean"] == pytest.approx(0.25)

    def test_empty_groups_are_skipped(self):
        assert divergence_stats([[set(), set()]])["replicas"] == 0

    def test_invariant_accepts_slack(self):
        net = ideal_net(n_peers=16, n_keys=100)
        key = float_to_key(0.5)
        probe = net.lookup(key, rng=1)
        rid = sorted(net.peers[probe.responsible].replicas)[0]
        net.peers[rid].online = False
        net.insert(key, rng=2)
        with pytest.raises(PartitionError):
            check_replica_divergence(net)
        check_replica_divergence(net, max_mean=0.5)


def build_wire(*, latency=0.01, loss=0.0, config=None, twin=True):
    """Quadrant overlay with an optional replica twin of quadrant 11."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), loss_rate=loss, rng=1)
    config = config or NodeConfig(query_retries=2, query_timeout=5.0)
    nodes = []
    quads = [
        ("00", [0.05, 0.2]), ("01", [0.3, 0.45]),
        ("10", [0.55, 0.7]), ("11", [0.8, 0.95]),
    ]
    for node_id, (path, floats) in enumerate(quads):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = {float_to_key(f) for f in floats}
        node.joined = True
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is not node:
                cpl = node.path.common_prefix_length(other.path)
                if cpl < node.path.length:
                    node.add_route(cpl, other.node_id)
    if twin:
        peer = PGridNode(4, sim, net, config=config, rng=9)
        peer.path = Path.from_string("11")
        peer.keys = set(nodes[3].keys)
        peer.joined = True
        nodes[3].replicas = {4}
        peer.replicas = {3}
        nodes.append(peer)
    return sim, net, nodes


class TestMessageWriteProtocol:
    def test_insert_routes_applies_and_syncs_replicas(self):
        sim, net, nodes = build_wire()
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        key = float_to_key(0.87)
        nodes[0].issue_insert(key)
        sim.run_until(30.0)
        assert len(outcomes) == 1 and outcomes[0].success
        # One bit resolved per hop: 1 hop if level 0 routed straight to
        # quadrant 11, 2 if it went through quadrant 10 first.
        assert 1 <= outcomes[0].hops <= 2
        assert key in nodes[3].keys
        assert key in nodes[4].keys  # replica_sync delivered it

    def test_delete_tombstones_owner_and_replicas(self):
        sim, net, nodes = build_wire()
        key = float_to_key(0.8)
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        nodes[0].issue_delete(key)
        sim.run_until(30.0)
        assert outcomes[0].success
        for node in (nodes[3], nodes[4]):
            assert key not in node.keys
            assert key in node.tombstones

    def test_local_write_completes_via_event_not_reentrantly(self):
        sim, net, nodes = build_wire()
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        wid = nodes[0].issue_insert(float_to_key(0.01))
        assert not outcomes  # resolution is an event, never re-entrant
        sim.run_until(10.0)
        assert outcomes and outcomes[0].success and outcomes[0].hops == 0
        assert wid > 0

    def test_write_traffic_lands_in_update_category(self):
        from repro.simnet.stats import StatsCollector

        sim = Simulator()
        stats = StatsCollector(bin_seconds=60.0)
        net = Network(sim, latency=ConstantLatency(0.01), rng=1, stats=stats)
        config = NodeConfig(query_retries=2, query_timeout=5.0)
        a = PGridNode(0, sim, net, config=config, rng=1)
        b = PGridNode(1, sim, net, config=config, rng=2)
        a.path, b.path = Path.from_string("0"), Path.from_string("1")
        a.joined = b.joined = True
        a.add_route(0, 1)
        b.add_route(0, 0)
        a.issue_insert(float_to_key(0.9))  # routed to b, acked back
        sim.run_until(10.0)
        update_bytes = sum(
            stats.bytes_by_category.get(P.UPDATE_TRAFFIC, {}).values()
        )
        assert update_bytes > 0
        assert not stats.bytes_by_category.get(P.QUERY_TRAFFIC)

    def test_dead_owner_times_out_then_fails_without_repair(self):
        from repro.pgrid.liveness import RouteRepairPolicy

        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(config=config, twin=False)
        nodes[3].online = False  # the only holder of quadrant 11
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        nodes[0].issue_insert(float_to_key(0.85))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.attempts == 3  # 1 + query_retries
        assert out.timeouts >= 1

    def test_dead_owner_fails_fast_with_repair(self):
        sim, net, nodes = build_wire(twin=False)
        nodes[3].online = False
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        nodes[0].issue_insert(float_to_key(0.85))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.timeouts == 0  # refused connects, locally observed
        assert out.latency < 1.0

    def test_transient_outage_recovers_on_retry(self):
        from repro.pgrid.liveness import RouteRepairPolicy

        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(config=config, twin=False)
        key = float_to_key(0.85)
        nodes[3].online = False
        sim.schedule(6.0, lambda: nodes[3].set_online(True))
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        nodes[0].issue_insert(key)
        sim.run_until(120.0)
        assert outcomes[0].success
        assert outcomes[0].attempts >= 2
        assert key in nodes[3].keys

    def test_origin_offline_marks_write_moot(self):
        from repro.pgrid.liveness import RouteRepairPolicy

        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(config=config, twin=False)
        nodes[3].online = False
        outcomes = []
        nodes[0].on_write_done = lambda nid, wid, out: outcomes.append(out)
        nodes[0].issue_insert(float_to_key(0.85))
        sim.schedule(2.0, lambda: nodes[0].set_online(False))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        assert outcomes[0].moot and not outcomes[0].success
        assert nodes[0].write_results == []  # moot stays out of stats

    def test_exchange_propagates_tombstone_delete_wins(self):
        sim, net, nodes = build_wire()
        key = float_to_key(0.8)
        # Node 4 deletes locally; node 3 still holds the key.  The
        # anti-entropy exchange must kill it on both, not resurrect it.
        nodes[4].apply_mutation("delete", key)
        assert key in nodes[3].keys
        nodes[4].initiate_exchange(3)
        sim.run_until(30.0)
        assert key not in nodes[3].keys
        assert key in nodes[3].tombstones

    def test_tombstones_expire_after_ttl(self):
        # Certificates must not ride every exchange forever: past the
        # TTL they are pruned where they would ship.
        sim, net, nodes = build_wire()
        key = float_to_key(0.8)
        nodes[4].apply_mutation("delete", key)
        assert key in nodes[4].tombstones
        ttl = nodes[4].config.tombstone_ttl_s
        sim.run_until(ttl + 1.0)
        nodes[4].initiate_exchange(3)
        sim.run_until(ttl + 30.0)
        assert key not in nodes[4].tombstones
        assert key not in nodes[3].tombstones  # never shipped

    def test_regossip_does_not_refresh_tombstone_ttl(self):
        # A certificate ping-ponging between replicas must not live
        # forever: the born timestamp is stamped once per node.
        sim, net, nodes = build_wire()
        key = float_to_key(0.8)
        nodes[4].apply_mutation("delete", key)
        born = dict(nodes[4]._tombstone_born)
        nodes[4].initiate_exchange(3)
        sim.run_until(30.0)
        nodes[3].initiate_exchange(4)  # gossips the certificate back
        sim.run_until(60.0)
        assert nodes[4]._tombstone_born == born


def write_spec(n_peers=48, *, phase_kwargs=None, **mix_kwargs):
    mix_kwargs.setdefault("write_rate", 2.0)
    return ScenarioSpec(
        name="write-probe",
        phases=(
            Phase(
                name="mixed",
                duration_s=240.0,
                query_rate=2.0,
                writes=WriteMix(**mix_kwargs),
                maintenance_interval_s=60.0,
                **(phase_kwargs or {}),
            ),
        ),
        n_peers=n_peers,
        seed=13,
        report_bin_s=60.0,
    )


class TestWriteMixValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            write_spec(write_rate=-1.0).validate()

    def test_zero_total_weight_rejected(self):
        with pytest.raises(SimulationError):
            write_spec(
                insert_weight=0.0, delete_weight=0.0, update_weight=0.0
            ).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(SimulationError):
            write_spec(insert_weight=-0.5).validate()

    def test_bad_hotspot_rejected(self):
        with pytest.raises(SimulationError):
            write_spec(hotspot=Hotspot(lo=0.9, hi=0.1)).validate()

    def test_valid_mix_passes(self):
        write_spec(hotspot=Hotspot(lo=0.1, hi=0.2)).validate()


class TestWriteScenarios:
    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_write_reports_deterministic(self, backend):
        spec = write_spec()
        a = run_scenario(spec, backend=backend)
        b = run_scenario(spec, backend=backend)
        assert a.to_json() == b.to_json()
        assert a.writes["writes"] > 0

    def test_report_carries_write_sections(self):
        report = run_scenario(write_spec())
        writes = report.writes
        assert writes["writes"] == (
            writes["inserts"] + writes["deletes"] + writes["updates"]
        )
        assert writes["success_rate"] > 0.9
        assert set(writes["divergence"]) == {
            "replicas", "stale_replicas", "mean", "max", "tombstones"
        }
        assert report.totals["bytes_update"] == writes["bytes_update"] > 0
        assert report.totals["bytes_total"] >= writes["bytes_update"]
        assert all("update_Bps" in row for row in report.series)
        assert any(row["update_Bps"] > 0 for row in report.series)
        phase = report.phases[0]
        assert phase["writes"] == writes["writes"]
        assert phase["update_bytes"] > 0

    def test_read_only_reports_stay_write_free(self):
        report = run_scenario(
            scenario("uniform-baseline", n_peers=24, seed=11, duration_scale=0.1)
        )
        assert report.writes is None
        assert "update_Bps" not in report.series[0]
        assert "writes" not in report.totals
        assert "writes" not in report.phases[0]
        assert "writes" not in report.to_dict()

    def test_message_backend_accounts_wire_update_bytes(self):
        report = run_scenario(write_spec(), backend="message")
        assert report.writes["bytes_update"] > 0
        assert report.message_level["write_path"]["timeouts"] >= 0
        assert any(row["update_Bps"] > 0 for row in report.series)

    def test_hotspot_writes_concentrate(self):
        hot = Hotspot(lo=0.25, hi=0.27, weight=1.0)
        spec = write_spec(
            insert_weight=1.0, delete_weight=0.0, update_weight=0.0,
            write_rate=4.0, hotspot=hot,
        )
        from repro.scenarios.runner import ScenarioRunner

        runner = ScenarioRunner(spec)
        runner.run()
        lo, hi = float_to_key(0.25), float_to_key(0.27)
        fresh = [
            k for k in runner.network.all_keys()
            if lo <= k < hi
        ]
        assert len(fresh) > 0  # inserts landed inside the hot window

    def test_library_write_scenarios_run_on_both_backends(self):
        for name in ("read-write-balanced", "write-hotspot-adversarial",
                     "asymmetric-partition-writes"):
            spec = scenario(name, n_peers=48, seed=7, duration_scale=0.1)
            for backend in ("dataplane", "message"):
                report = run_scenario(spec, backend=backend)
                assert report.writes is not None
                assert report.writes["writes"] > 0

    def test_settle_phase_reconverges_replicas(self):
        # read-write-balanced ends with a write-free settle phase: the
        # measured divergence must be (near) zero on the data plane.
        spec = scenario("read-write-balanced", n_peers=48, seed=7,
                        duration_scale=0.2)
        report = run_scenario(spec)
        assert report.writes["divergence"]["mean"] < 0.02

    def test_partition_cut_diverges_then_heals(self):
        spec = scenario("asymmetric-partition-writes", n_peers=64, seed=7,
                        duration_scale=0.15)
        report = run_scenario(spec, backend="message")
        # Writes kept flowing under the cut...
        assert report.writes["writes"] > 0
        # ...and the healed overlay is not pathologically divergent.
        assert report.writes["divergence"]["mean"] < 0.2

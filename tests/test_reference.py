"""Tests for Algorithm 1 (the global reference partitioner)."""

import random

import pytest

from repro.core.reference import reference_partition
from repro.exceptions import PartitionError
from repro.pgrid.keyspace import KEY_BITS, float_to_key


def uniform_keys(n, seed=0):
    rand = random.Random(seed)
    return [float_to_key(rand.random()) for _ in range(n)]


class TestBasicProperties:
    def test_total_peers_conserved(self):
        ref = reference_partition(uniform_keys(500), 64, d_max=50, n_min=5)
        assert ref.total_peers == pytest.approx(64.0)

    def test_total_keys_conserved(self):
        keys = uniform_keys(500)
        ref = reference_partition(keys, 64, d_max=50, n_min=5)
        assert ref.total_keys == len(set(keys))

    def test_leaves_tile_key_space(self):
        ref = reference_partition(uniform_keys(500), 64, d_max=50, n_min=5)
        intervals = sorted(leaf.path.interval() for leaf in ref.leaves)
        assert intervals[0][0] == 0.0
        assert intervals[-1][1] == 1.0
        for (_, hi), (lo, _) in zip(intervals, intervals[1:]):
            assert hi == pytest.approx(lo)

    def test_no_split_when_underloaded(self):
        ref = reference_partition(uniform_keys(30), 64, d_max=50, n_min=5)
        assert len(ref.leaves) == 1
        assert ref.leaves[0].n_peers == 64

    def test_no_split_when_too_few_peers(self):
        # n < 2 n_min forbids splitting regardless of load.
        ref = reference_partition(uniform_keys(1000), 8, d_max=10, n_min=5)
        assert len(ref.leaves) == 1

    def test_leaf_load_bounds(self):
        ref = reference_partition(uniform_keys(2000), 400, d_max=50, n_min=5)
        for leaf in ref.leaves:
            # A leaf is either within the load bound or was stopped by the
            # peer floor.
            assert leaf.n_keys <= 50 or leaf.n_peers < 2 * 5

    def test_n_min_floor(self):
        ref = reference_partition(uniform_keys(2000), 400, d_max=50, n_min=5)
        for leaf in ref.leaves:
            assert leaf.n_peers >= 5 - 1e-9

    def test_proportionality_for_balanced_data(self):
        # Uniform keys => peer counts should be roughly equal across leaves.
        ref = reference_partition(uniform_keys(4000), 512, d_max=100, n_min=5)
        counts = [leaf.n_peers for leaf in ref.leaves]
        assert max(counts) / min(counts) < 3.0


class TestSkewedData:
    def test_skewed_keys_make_deep_trees(self):
        rand = random.Random(1)
        skewed = [float_to_key(min(rand.random() ** 8, 0.999999)) for _ in range(2000)]
        uniform_ref = reference_partition(uniform_keys(2000), 256, d_max=50, n_min=5)
        skewed_ref = reference_partition(skewed, 256, d_max=50, n_min=5)
        assert skewed_ref.depth > uniform_ref.depth

    def test_empty_side_descends_without_peer_split(self):
        # All keys in the left half: the right half becomes a peer-less
        # leaf (so the leaves still tile the space) and every peer stays
        # on the populated side.
        keys = [float_to_key(0.1 + i * 1e-6) for i in range(200)]
        ref = reference_partition(keys, 64, d_max=50, n_min=5)
        assert ref.total_peers == pytest.approx(64.0)
        for leaf in ref.leaves:
            assert leaf.n_keys > 0 or leaf.n_peers == 0.0
        populated = [leaf for leaf in ref.leaves if leaf.n_keys > 0]
        assert sum(leaf.n_peers for leaf in populated) == pytest.approx(64.0)

    def test_leaf_for_key(self):
        keys = uniform_keys(500, seed=3)
        ref = reference_partition(keys, 64, d_max=50, n_min=5)
        for key in keys[:50]:
            leaf = ref.leaf_for_key(key)
            assert leaf.path.contains_key(key, KEY_BITS)


class TestIntegerPeers:
    def test_integer_counts_sum(self):
        ref = reference_partition(
            uniform_keys(2000), 100, d_max=50, n_min=5, integer_peers=True
        )
        assert sum(leaf.n_peers for leaf in ref.leaves) == pytest.approx(100)
        for leaf in ref.leaves:
            assert leaf.n_peers == int(leaf.n_peers)

    def test_integer_counts_respect_floor(self):
        ref = reference_partition(
            uniform_keys(2000), 100, d_max=50, n_min=5, integer_peers=True
        )
        for leaf in ref.leaves:
            assert leaf.n_peers >= 5


class TestValidation:
    def test_rejects_zero_peers(self):
        with pytest.raises(PartitionError):
            reference_partition([1, 2, 3], 0, d_max=10, n_min=1)

    def test_rejects_bad_n_min(self):
        with pytest.raises(PartitionError):
            reference_partition([1, 2, 3], 10, d_max=10, n_min=0)

    def test_rejects_bad_d_max(self):
        with pytest.raises(PartitionError):
            reference_partition([1, 2, 3], 10, d_max=0, n_min=1)

    def test_duplicate_keys_counted_once(self):
        keys = [42] * 100 + [100]
        ref = reference_partition(keys, 10, d_max=50, n_min=2)
        assert ref.total_keys == 2

    def test_mean_replication(self):
        ref = reference_partition(uniform_keys(500), 60, d_max=50, n_min=5)
        assert ref.mean_replication() == pytest.approx(60 / len(ref.leaves))
